//! Line lexer for the DRAM description language.
//!
//! The language is line-oriented, matching the paper's §III.B excerpts:
//!
//! ```text
//! FloorplanPhysical
//! CellArray BL=v BitsPerBL=512 BLtype=open
//! Vertical blocks = A1 P1 P2 P1 A1
//! SizeVertical A1=3396um P1=200um P2=530um
//! ```
//!
//! Each non-empty, non-comment line lexes into a head word and a list of
//! arguments, where an argument is either `key=value` or a bare word.
//! Values may be double-quoted to contain spaces. `#` and `//` start
//! comments. A free-standing `=` after a bare word attaches the remaining
//! words to that key as a list (the paper's `Vertical blocks = A1 P1 ...`
//! and `Pattern loop= act nop ...` forms).

use crate::error::DslError;

/// One argument of a lexed line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// A `key=value` pair.
    KeyValue {
        /// The key, verbatim.
        key: String,
        /// The value, with quotes stripped.
        value: String,
    },
    /// A `key = w1 w2 w3 …` list assignment (everything after the `=`).
    KeyList {
        /// The key, verbatim.
        key: String,
        /// The listed words.
        values: Vec<String>,
    },
    /// A bare word.
    Bare(String),
}

/// One lexed line of input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// 1-based source line number, for diagnostics.
    pub number: usize,
    /// The first word of the line.
    pub head: String,
    /// The remaining arguments.
    pub args: Vec<Arg>,
}

impl Line {
    /// Looks up the value of a `key=value` argument.
    #[must_use]
    pub fn value(&self, key: &str) -> Option<&str> {
        self.args.iter().find_map(|a| match a {
            Arg::KeyValue { key: k, value } if k.eq_ignore_ascii_case(key) => Some(value.as_str()),
            _ => None,
        })
    }

    /// Looks up the words of a `key = list` argument.
    #[must_use]
    pub fn list(&self, key: &str) -> Option<&[String]> {
        self.args.iter().find_map(|a| match a {
            Arg::KeyList { key: k, values } if k.eq_ignore_ascii_case(key) => {
                Some(values.as_slice())
            }
            _ => None,
        })
    }

    /// All `key=value` pairs of the line, in order.
    pub fn pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.args.iter().filter_map(|a| match a {
            Arg::KeyValue { key, value } => Some((key.as_str(), value.as_str())),
            _ => None,
        })
    }
}

/// Splits one raw line into whitespace-separated words, honoring double
/// quotes and stripping comments.
fn split_words(raw: &str, number: usize) -> Result<Vec<String>, DslError> {
    let mut words = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = raw.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                in_quotes = false;
                words.push(std::mem::take(&mut current));
                // Mark that this word existed even if empty: push sentinel
                // handled below by checking emptiness — an empty quoted
                // string is a valid (empty) word.
                if words.last().map(String::is_empty) == Some(true) {
                    // keep it; nothing to do
                }
            } else {
                current.push(c);
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                // `key="..."`: splice the quoted text onto the pending word.
                if !current.is_empty() && !current.ends_with('=') {
                    return Err(DslError::syntax(
                        number,
                        "quote may only start a word or follow `=`",
                    ));
                }
                if current.ends_with('=') {
                    // Consume the quoted part into the same word.
                    let mut quoted = String::new();
                    let mut closed = false;
                    for qc in chars.by_ref() {
                        if qc == '"' {
                            closed = true;
                            break;
                        }
                        quoted.push(qc);
                    }
                    if !closed {
                        return Err(DslError::syntax(number, "unterminated string literal"));
                    }
                    current.push_str(&quoted);
                    words.push(std::mem::take(&mut current));
                    in_quotes = false;
                }
            }
            '#' => break,
            '/' if chars.peek() == Some(&'/') => break,
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                }
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return Err(DslError::syntax(number, "unterminated string literal"));
    }
    if !current.is_empty() {
        words.push(current);
    }
    Ok(words)
}

/// Lexes the full input into lines.
///
/// # Errors
///
/// Returns a [`DslError`] with the offending line number for malformed
/// quoting.
pub fn lex(input: &str) -> Result<Vec<Line>, DslError> {
    let mut out = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let number = idx + 1;
        let words = split_words(raw, number)?;
        if words.is_empty() {
            continue;
        }
        let head = words[0].clone();
        let mut args = Vec::new();
        let mut i = 1;
        while i < words.len() {
            let w = &words[i];
            if w == "=" {
                // `blocks = A1 P1 …`: previous bare word is the key, the
                // rest of the line is the list.
                let key = match args.pop() {
                    Some(Arg::Bare(k)) => k,
                    _ => return Err(DslError::syntax(number, "`=` must follow a bare key word")),
                };
                let values = words[i + 1..].to_vec();
                args.push(Arg::KeyList { key, values });
                break;
            }
            if let Some(eq) = w.find('=') {
                let (key, value) = w.split_at(eq);
                let value = &value[1..];
                if value.is_empty() {
                    // `loop= act nop …`: list form with the `=` glued to
                    // the key.
                    let values = words[i + 1..].to_vec();
                    args.push(Arg::KeyList {
                        key: key.to_string(),
                        values,
                    });
                    break;
                }
                args.push(Arg::KeyValue {
                    key: key.to_string(),
                    value: value.to_string(),
                });
            } else {
                args.push(Arg::Bare(w.clone()));
            }
            i += 1;
        }
        out.push(Line { number, head, args });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_key_values() {
        let lines = lex("CellArray BL=v BitsPerBL=512 BLtype=open").expect("lexes");
        assert_eq!(lines.len(), 1);
        let l = &lines[0];
        assert_eq!(l.head, "CellArray");
        assert_eq!(l.value("BL"), Some("v"));
        assert_eq!(l.value("BitsPerBL"), Some("512"));
        assert_eq!(l.value("bltype"), Some("open"), "keys are case-insensitive");
        assert_eq!(l.value("missing"), None);
    }

    #[test]
    fn lexes_list_assignment_with_spaced_equals() {
        let lines = lex("Vertical blocks = A1 P1 P2 P1 A1").expect("lexes");
        let l = &lines[0];
        assert_eq!(l.head, "Vertical");
        assert_eq!(
            l.list("blocks").expect("list"),
            &["A1", "P1", "P2", "P1", "A1"]
        );
    }

    #[test]
    fn lexes_glued_list_assignment() {
        // The paper writes `Pattern loop= act nop wrt nop rd nop pre nop`.
        let lines = lex("Pattern loop= act nop wrt nop rd nop pre nop").expect("lexes");
        let l = &lines[0];
        assert_eq!(l.head, "Pattern");
        assert_eq!(l.list("loop").expect("list").len(), 8);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let input = "\n# full comment\nA x=1 # trailing\n// slashes too\nB y=2 // end\n";
        let lines = lex(input).expect("lexes");
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].value("x"), Some("1"));
        assert_eq!(lines[1].value("y"), Some("2"));
        assert_eq!(lines[1].number, 5);
    }

    #[test]
    fn quoted_values_keep_spaces() {
        let lines = lex("LogicBlock name=\"clock tree and DLL\" gates=4000").expect("lexes");
        assert_eq!(lines[0].value("name"), Some("clock tree and DLL"));
        assert_eq!(lines[0].value("gates"), Some("4000"));
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = lex("A name=\"oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let lines = lex("first\nsecond").expect("lexes");
        assert_eq!(lines[0].number, 1);
        assert_eq!(lines[1].number, 2);
    }

    #[test]
    fn pairs_iterates_in_order() {
        let lines = lex("T a=1 b=2 c=3").expect("lexes");
        let pairs: Vec<_> = lines[0].pairs().collect();
        assert_eq!(pairs, vec![("a", "1"), ("b", "2"), ("c", "3")]);
    }
}
