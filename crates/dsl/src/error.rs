//! Error type for the description-language parser.

/// Error lexing or parsing a DRAM description file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    line: usize,
    message: String,
}

impl DslError {
    /// Creates an error anchored at a 1-based source line.
    #[must_use]
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// Creates a syntax error.
    #[must_use]
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        Self::new(line, message)
    }

    /// The 1-based source line the error refers to (0 for file-level
    /// errors such as missing sections).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl core::fmt::Display for DslError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.line == 0 {
            write!(f, "description error: {}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for DslError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = DslError::new(12, "unknown key `foo`");
        assert_eq!(e.to_string(), "line 12: unknown key `foo`");
        assert_eq!(e.line(), 12);
        assert_eq!(e.message(), "unknown key `foo`");
    }

    #[test]
    fn file_level_errors_have_no_line() {
        let e = DslError::new(0, "missing section `Technology`");
        assert_eq!(
            e.to_string(),
            "description error: missing section `Technology`"
        );
    }
}
