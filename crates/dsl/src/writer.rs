//! Pretty-printer: renders a [`DramDescription`] back into description-
//! language text that [`crate::parse`] accepts (round-trip property).

use std::fmt::Write as _;

use dram_core::params::{
    ActiveDuring, Axis, BitlineArchitecture, DeviceGeometry, DramDescription, SegmentSpec,
    SignalClass, WireCount,
};
use dram_core::Pattern;
use dram_units::Meters;

fn um(m: Meters) -> String {
    format!("{}um", m.micrometers())
}

fn dev(d: DeviceGeometry) -> String {
    format!("{}x{}um", d.width.micrometers(), d.length.micrometers())
}

fn class_name(c: SignalClass) -> &'static str {
    match c {
        SignalClass::WriteData => "wdata",
        SignalClass::ReadData => "rdata",
        SignalClass::RowAddress => "rowaddr",
        SignalClass::ColumnAddress => "coladdr",
        SignalClass::BankAddress => "bankaddr",
        SignalClass::Control => "control",
        SignalClass::Clock => "clock",
    }
}

fn wires_name(w: WireCount) -> String {
    match w {
        WireCount::Explicit(n) => n.to_string(),
        WireCount::PerIo => "io".into(),
        WireCount::RowAddressBits => "rowadd".into(),
        WireCount::ColumnAddressBits => "coladd".into(),
        WireCount::BankAddressBits => "bankadd".into(),
        WireCount::ControlSignals => "control".into(),
        WireCount::ClockWires => "clock".into(),
    }
}

fn active_name(a: ActiveDuring) -> String {
    let mut parts = Vec::new();
    if a.always {
        parts.push("always");
    }
    if a.activate {
        parts.push("act");
    }
    if a.precharge {
        parts.push("pre");
    }
    if a.read {
        parts.push("rd");
    }
    if a.write {
        parts.push("wrt");
    }
    parts.join(",")
}

/// Renders a description (and optional pattern) as description-language
/// text.
///
/// # Examples
///
/// ```
/// use dram_core::reference::ddr3_1g_x16_55nm;
/// let text = dram_dsl::write(&ddr3_1g_x16_55nm(), None);
/// let parsed = dram_dsl::parse(&text)?;
/// assert_eq!(parsed.description.spec.io_width, 16);
/// # Ok::<(), dram_dsl::DslError>(())
/// ```
#[must_use]
pub fn write(desc: &DramDescription, pattern: Option<&Pattern>) -> String {
    let mut out = String::new();
    let fp = &desc.floorplan;
    let t = &desc.technology;
    let e = &desc.electrical;
    let s = &desc.spec;
    let tm = &desc.timing;

    let _ = writeln!(out, "# {}", desc.name);
    let _ = writeln!(out, "Device name=\"{}\"", desc.name);
    let _ = writeln!(out);

    // --- physical floorplan ------------------------------------------
    let _ = writeln!(out, "FloorplanPhysical");
    let bl = match fp.bitline_direction {
        Axis::Vertical => "v",
        Axis::Horizontal => "h",
    };
    let bltype = match fp.bitline_architecture {
        BitlineArchitecture::Open => "open",
        BitlineArchitecture::Folded => "folded",
        BitlineArchitecture::Vertical4F2 => "4f2",
    };
    let _ = writeln!(
        out,
        "CellArray BL={bl} BitsPerBL={} BitsPerLWL={} BLtype={bltype}",
        fp.bits_per_bitline, fp.bits_per_local_wordline
    );
    let _ = writeln!(
        out,
        "CellArray WLpitch={} BLpitch={}",
        um(fp.wordline_pitch),
        um(fp.bitline_pitch)
    );
    let _ = writeln!(
        out,
        "CellArray SAStripe={} LWDStripe={} BlocksPerCSL={}",
        um(fp.sa_stripe_width),
        um(fp.lwd_stripe_width),
        fp.blocks_per_csl
    );
    let _ = writeln!(
        out,
        "Horizontal blocks = {}",
        fp.horizontal_blocks.join(" ")
    );
    let _ = writeln!(out, "Vertical blocks = {}", fp.vertical_blocks.join(" "));
    if !fp.horizontal_sizes.is_empty() {
        let sizes: Vec<String> = fp
            .horizontal_sizes
            .iter()
            .map(|(k, v)| format!("{k}={}", um(*v)))
            .collect();
        let _ = writeln!(out, "SizeHorizontal {}", sizes.join(" "));
    }
    if !fp.vertical_sizes.is_empty() {
        let sizes: Vec<String> = fp
            .vertical_sizes
            .iter()
            .map(|(k, v)| format!("{k}={}", um(*v)))
            .collect();
        let _ = writeln!(out, "SizeVertical {}", sizes.join(" "));
    }
    let _ = writeln!(out);

    // --- signaling ----------------------------------------------------
    let _ = writeln!(out, "FloorplanSignaling");
    for sig in &desc.signaling.signals {
        let _ = writeln!(
            out,
            "Signal {} class={} wires={} toggle={}",
            sig.name,
            class_name(sig.class),
            wires_name(sig.wires),
            sig.toggle_rate
        );
        for (i, seg) in sig.segments.iter().enumerate() {
            let _ = write!(out, "{}{i} ", sig.name);
            match seg {
                SegmentSpec::Inside {
                    at,
                    fraction,
                    dir,
                    buffer,
                    mux,
                } => {
                    let dir = match dir {
                        Axis::Horizontal => "h",
                        Axis::Vertical => "v",
                    };
                    let _ = write!(out, "inside={at} fraction={fraction} dir={dir}");
                    if let Some(m) = mux {
                        let _ = write!(out, " mux=1:{m}");
                    }
                    if let Some(b) = buffer {
                        let _ = write!(
                            out,
                            " NchW={} PchW={}",
                            b.nmos_width.micrometers(),
                            b.pmos_width.micrometers()
                        );
                    }
                }
                SegmentSpec::Between { from, to, buffer } => {
                    let _ = write!(out, "start={from} end={to}");
                    if let Some(b) = buffer {
                        let _ = write!(
                            out,
                            " NchW={} PchW={}",
                            b.nmos_width.micrometers(),
                            b.pmos_width.micrometers()
                        );
                    }
                }
            }
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(out);

    // --- technology ----------------------------------------------------
    let _ = writeln!(out, "Technology");
    let cpl = |c: dram_units::FaradsPerMeter| format!("{}fF/um", c.ff_per_um());
    let cap = |c: dram_units::Farads| format!("{}fF", c.femtofarads());
    let _ = writeln!(
        out,
        "Oxides ToxLogic={} ToxHV={} ToxCell={}",
        um(t.tox_logic),
        um(t.tox_high_voltage),
        um(t.tox_cell)
    );
    let _ = writeln!(
        out,
        "Devices LminLogic={} CjLogic={} LminHV={} CjHV={}",
        um(t.lmin_logic),
        cpl(t.junction_cap_logic),
        um(t.lmin_high_voltage),
        cpl(t.junction_cap_high_voltage)
    );
    let _ = writeln!(
        out,
        "Cell CellL={} CellW={} CBitline={} CCell={} BLtoWLShare={}",
        um(t.cell_access_length),
        um(t.cell_access_width),
        cap(t.bitline_cap),
        cap(t.cell_cap),
        t.bl_to_wl_cap_share
    );
    let _ = writeln!(
        out,
        "RowPath CWireMWL={} PredecodeRatio={} MWLDecN={} MWLDecP={} MWLDecSwitch={}",
        cpl(t.c_wire_mwl),
        t.mwl_predecode_ratio,
        um(t.mwl_decoder_nmos_width),
        um(t.mwl_decoder_pmos_width),
        t.mwl_decoder_switching
    );
    let _ = writeln!(
        out,
        "RowPath WLCtrlN={} WLCtrlP={} SWDN={} SWDP={} SWDRestore={} CWireLWL={}",
        um(t.wl_controller_nmos_width),
        um(t.wl_controller_pmos_width),
        um(t.swd_nmos_width),
        um(t.swd_pmos_width),
        um(t.swd_restore_nmos_width),
        cpl(t.c_wire_lwl)
    );
    let _ = writeln!(
        out,
        "SenseAmp SANSense={} SAPSense={} SAEq={} SABitSwitch={} SABLMux={}",
        dev(t.sa_nmos_sense),
        dev(t.sa_pmos_sense),
        dev(t.sa_equalize),
        dev(t.sa_bit_switch),
        dev(t.sa_bitline_mux)
    );
    let _ = writeln!(
        out,
        "SenseAmp SANSet={} SAPSet={} BitsPerCSL={}",
        dev(t.sa_nset),
        dev(t.sa_pset),
        t.bits_per_csl_per_subarray
    );
    let _ = writeln!(out, "Wiring CWireSignal={}", cpl(t.c_wire_signal));
    let _ = writeln!(out);

    // --- electrical ------------------------------------------------------
    let _ = writeln!(out, "Electrical");
    let _ = writeln!(
        out,
        "Supply Vdd={}V Vint={}V Vbl={}V Vpp={}V",
        e.vdd.volts(),
        e.vint.volts(),
        e.vbl.volts(),
        e.vpp.volts()
    );
    let _ = writeln!(
        out,
        "Generator EffVint={} EffVbl={} EffVpp={} ConstCurrent={}mA",
        e.eff_vint,
        e.eff_vbl,
        e.eff_vpp,
        e.constant_current.milliamperes()
    );
    let _ = writeln!(out);

    // --- specification ----------------------------------------------------
    let _ = writeln!(out, "Specification");
    let _ = writeln!(
        out,
        "IO width={} datarate={}Gbps",
        s.io_width,
        s.datarate_per_pin.gbps()
    );
    let _ = writeln!(
        out,
        "Clock number={} frequency={}MHz",
        s.clock_wires,
        s.data_clock.megahertz()
    );
    let _ = writeln!(
        out,
        "Control frequency={}MHz bankadd={} rowadd={} coladd={} misc={}",
        s.control_clock.megahertz(),
        s.bank_address_bits,
        s.row_address_bits,
        s.column_address_bits,
        s.control_signals
    );
    let _ = writeln!(
        out,
        "Access prefetch={} burst={}",
        s.prefetch, s.burst_length
    );
    let _ = writeln!(out);

    // --- timing --------------------------------------------------------
    let ns = |x: dram_units::Seconds| format!("{}ns", x.nanoseconds());
    let _ = writeln!(out, "Timing");
    let _ = writeln!(
        out,
        "Row tRC={} tRAS={} tRP={} tRCD={} tRRD={} tFAW={}",
        ns(tm.trc),
        ns(tm.tras),
        ns(tm.trp),
        ns(tm.trcd),
        ns(tm.trrd),
        ns(tm.tfaw)
    );
    let _ = writeln!(out, "Column tCCD={}", tm.tccd_cycles);
    let _ = writeln!(out, "Refresh tRFC={} tREFI={}", ns(tm.trfc), ns(tm.trefi));
    let _ = writeln!(out);

    // --- logic blocks ---------------------------------------------------
    for b in &desc.logic_blocks {
        let _ = writeln!(
            out,
            "LogicBlock name=\"{}\" gates={} Wn={} Wp={} tpg={} gatedensity={} \
             wiredensity={} active={} toggle={}",
            b.name,
            b.gates,
            um(b.avg_nmos_width),
            um(b.avg_pmos_width),
            b.transistors_per_gate,
            b.gate_density,
            b.wiring_density,
            active_name(b.active_during),
            b.toggle_rate
        );
    }

    if let Some(p) = pattern {
        let _ = writeln!(out);
        let _ = writeln!(out, "Pattern loop= {p}");
    }
    out
}
