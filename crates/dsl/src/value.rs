//! Typed value parsers for the description language: numbers with unit
//! suffixes (`165nm`, `1.6Gbps`, `0.25fF/um`, `50%`), block coordinates
//! (`3_2`), device geometries (`0.7x0.10um`) and mux ratios (`1:8`).
//!
//! All parsers return `Result<T, String>` with a message describing the
//! expected form; the section parser wraps the message with line and key
//! context.

use dram_core::params::{ActiveDuring, BlockCoord, DeviceGeometry};
use dram_units::{Amperes, BitsPerSecond, Farads, FaradsPerMeter, Hertz, Meters, Seconds, Volts};

/// Splits a literal into its numeric prefix and unit suffix.
fn split_number(s: &str) -> Result<(f64, &str), String> {
    let s = s.trim();
    let bytes = s.as_bytes();
    let mut end = 0;
    while end < bytes.len() {
        let c = bytes[end] as char;
        let numeric = c.is_ascii_digit()
            || c == '.'
            || (end == 0 && (c == '-' || c == '+'))
            // exponent: only if followed by a digit or sign+digit
            || ((c == 'e' || c == 'E')
                && bytes
                    .get(end + 1)
                    .map(|&n| {
                        (n as char).is_ascii_digit()
                            || ((n == b'+' || n == b'-')
                                && bytes
                                    .get(end + 2)
                                    .is_some_and(|&m| (m as char).is_ascii_digit()))
                    })
                    .unwrap_or(false));
        if !numeric {
            break;
        }
        // consume the sign of an exponent together with the 'e'
        if (c == 'e' || c == 'E') && matches!(bytes.get(end + 1), Some(b'+') | Some(b'-')) {
            end += 1;
        }
        end += 1;
    }
    let (num, unit) = s.split_at(end);
    let value: f64 = num
        .parse()
        .map_err(|_| format!("`{s}` is not a number with optional unit"))?;
    Ok((value, unit.trim()))
}

/// Parses a plain number (no unit allowed).
pub fn number(s: &str) -> Result<f64, String> {
    let (v, unit) = split_number(s)?;
    if unit.is_empty() {
        Ok(v)
    } else {
        Err(format!(
            "`{s}`: expected a bare number, found unit `{unit}`"
        ))
    }
}

/// Parses a non-negative integer.
pub fn integer(s: &str) -> Result<u32, String> {
    s.trim()
        .parse()
        .map_err(|_| format!("`{s}` is not a non-negative integer"))
}

/// Parses a fraction: `50%` or `0.5`.
pub fn fraction(s: &str) -> Result<f64, String> {
    let (v, unit) = split_number(s)?;
    match unit {
        "%" => Ok(v / 100.0),
        "" => Ok(v),
        other => Err(format!("`{s}`: unknown fraction unit `{other}`")),
    }
}

/// Parses a length: `165nm`, `3396um`, `8mm`, `1m` (µ accepted for u).
pub fn length(s: &str) -> Result<Meters, String> {
    let (v, unit) = split_number(s)?;
    match unit.replace('µ', "u").as_str() {
        "nm" => Ok(Meters::from_nm(v)),
        "um" => Ok(Meters::from_um(v)),
        "mm" => Ok(Meters::from_mm(v)),
        "m" => Ok(Meters::new(v)),
        other => Err(format!(
            "`{s}`: unknown length unit `{other}` (use nm/um/mm/m)"
        )),
    }
}

/// Parses a capacitance: `80fF`, `1.2pF`.
pub fn capacitance(s: &str) -> Result<Farads, String> {
    let (v, unit) = split_number(s)?;
    match unit {
        "fF" => Ok(Farads::from_ff(v)),
        "pF" => Ok(Farads::from_pf(v)),
        "F" => Ok(Farads::new(v)),
        other => Err(format!(
            "`{s}`: unknown capacitance unit `{other}` (use fF/pF/F)"
        )),
    }
}

/// Parses a specific wire capacitance: `0.25fF/um`.
pub fn capacitance_per_length(s: &str) -> Result<FaradsPerMeter, String> {
    let (v, unit) = split_number(s)?;
    match unit.replace('µ', "u").as_str() {
        "fF/um" => Ok(FaradsPerMeter::from_ff_per_um(v)),
        "F/m" => Ok(FaradsPerMeter::new(v)),
        other => Err(format!("`{s}`: unknown unit `{other}` (use fF/um or F/m)")),
    }
}

/// Parses a voltage: `1.5V`, `250mV`.
pub fn voltage(s: &str) -> Result<Volts, String> {
    let (v, unit) = split_number(s)?;
    match unit {
        "V" => Ok(Volts::new(v)),
        "mV" => Ok(Volts::from_mv(v)),
        other => Err(format!("`{s}`: unknown voltage unit `{other}` (use V/mV)")),
    }
}

/// Parses a current: `10mA`, `0.1A`.
pub fn current(s: &str) -> Result<Amperes, String> {
    let (v, unit) = split_number(s)?;
    match unit {
        "A" => Ok(Amperes::new(v)),
        "mA" => Ok(Amperes::from_ma(v)),
        "uA" | "µA" => Ok(Amperes::new(v * 1e-6)),
        other => Err(format!(
            "`{s}`: unknown current unit `{other}` (use A/mA/uA)"
        )),
    }
}

/// Parses a frequency: `800MHz`, `1.6GHz`.
pub fn frequency(s: &str) -> Result<Hertz, String> {
    let (v, unit) = split_number(s)?;
    match unit {
        "Hz" => Ok(Hertz::new(v)),
        "kHz" => Ok(Hertz::new(v * 1e3)),
        "MHz" => Ok(Hertz::from_mhz(v)),
        "GHz" => Ok(Hertz::from_ghz(v)),
        other => Err(format!(
            "`{s}`: unknown frequency unit `{other}` (use Hz/kHz/MHz/GHz)"
        )),
    }
}

/// Parses a data rate: `1.6Gbps`, `533Mbps`.
pub fn datarate(s: &str) -> Result<BitsPerSecond, String> {
    let (v, unit) = split_number(s)?;
    match unit {
        "bps" | "b/s" => Ok(BitsPerSecond::new(v)),
        "Mbps" | "Mb/s" => Ok(BitsPerSecond::from_mbps(v)),
        "Gbps" | "Gb/s" => Ok(BitsPerSecond::from_gbps(v)),
        other => Err(format!(
            "`{s}`: unknown data rate unit `{other}` (use Mbps/Gbps)"
        )),
    }
}

/// Parses a time: `49ns`, `7.8us`, `64ms`.
pub fn time(s: &str) -> Result<Seconds, String> {
    let (v, unit) = split_number(s)?;
    match unit.replace('µ', "u").as_str() {
        "s" => Ok(Seconds::new(v)),
        "ms" => Ok(Seconds::new(v * 1e-3)),
        "us" => Ok(Seconds::new(v * 1e-6)),
        "ns" => Ok(Seconds::from_ns(v)),
        "ps" => Ok(Seconds::new(v * 1e-12)),
        other => Err(format!(
            "`{s}`: unknown time unit `{other}` (use ns/us/ms/s)"
        )),
    }
}

/// Parses a block coordinate in the paper's `x_y` notation, e.g. `3_2`.
pub fn coordinate(s: &str) -> Result<BlockCoord, String> {
    let (x, y) = s
        .split_once('_')
        .ok_or_else(|| format!("`{s}` is not a block coordinate (expected `x_y`)"))?;
    let x = x
        .parse()
        .map_err(|_| format!("`{s}`: `{x}` is not a grid index"))?;
    let y = y
        .parse()
        .map_err(|_| format!("`{s}`: `{y}` is not a grid index"))?;
    Ok(BlockCoord::new(x, y))
}

/// Parses a device geometry `WxLum` (both dimensions in the trailing
/// unit), e.g. `0.7x0.10um` — width 0.7 µm, length 0.10 µm.
pub fn device(s: &str) -> Result<DeviceGeometry, String> {
    let (w_str, rest) = s
        .split_once('x')
        .ok_or_else(|| format!("`{s}` is not a device geometry (expected `WxLum`)"))?;
    let width_val: f64 = w_str
        .trim()
        .parse()
        .map_err(|_| format!("`{s}`: `{w_str}` is not a number"))?;
    let l = length(rest)?;
    // Width uses the same unit the length carried.
    let unit_scale = l.meters() / split_number(rest).map(|(v, _)| v).unwrap_or(1.0);
    Ok(DeviceGeometry {
        width: Meters::new(width_val * unit_scale),
        length: l,
    })
}

/// Parses a serialization ratio `1:8`, returning the factor (8).
pub fn mux_ratio(s: &str) -> Result<u32, String> {
    let (a, b) = s
        .split_once(':')
        .ok_or_else(|| format!("`{s}` is not a mux ratio (expected `1:n`)"))?;
    let a: u32 = a.parse().map_err(|_| format!("`{s}`: bad ratio"))?;
    let b: u32 = b.parse().map_err(|_| format!("`{s}`: bad ratio"))?;
    if a != 1 || b == 0 {
        return Err(format!("`{s}`: mux ratio must be `1:n` with n ≥ 1"));
    }
    Ok(b)
}

/// Parses the operations a logic block is active during:
/// `always` or a comma list of `act,pre,rd,wrt`.
pub fn active_during(s: &str) -> Result<ActiveDuring, String> {
    let mut out = ActiveDuring::default();
    for part in s.split(',') {
        match part.trim().to_ascii_lowercase().as_str() {
            "always" => out.always = true,
            "act" | "activate" => out.activate = true,
            "pre" | "precharge" => out.precharge = true,
            "rd" | "read" => out.read = true,
            "wrt" | "wr" | "write" => out.write = true,
            other => return Err(format!("unknown operation `{other}` in active set `{s}`")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(length("165nm").unwrap().nanometers().round(), 165.0);
        assert!((length("3396um").unwrap().millimeters() - 3.396).abs() < 1e-9);
        assert!((length("8mm").unwrap().meters() - 8.0e-3).abs() < 1e-12);
        assert!(length("5kg").is_err());
        assert!(length("abc").is_err());
    }

    #[test]
    fn capacitances() {
        assert!((capacitance("80fF").unwrap().femtofarads() - 80.0).abs() < 1e-9);
        assert!((capacitance("1.2pF").unwrap().picofarads() - 1.2).abs() < 1e-9);
        assert!(capacitance("80").is_err());
        assert!((capacitance_per_length("0.25fF/um").unwrap().ff_per_um() - 0.25).abs() < 1e-9);
        assert!(capacitance_per_length("0.25fF").is_err());
    }

    #[test]
    fn electrical_values() {
        assert_eq!(voltage("1.5V").unwrap().volts(), 1.5);
        assert!((voltage("250mV").unwrap().volts() - 0.25).abs() < 1e-12);
        assert!((current("10mA").unwrap().milliamperes() - 10.0).abs() < 1e-9);
        assert_eq!(frequency("800MHz").unwrap().megahertz(), 800.0);
        assert!((datarate("1.6Gbps").unwrap().gbps() - 1.6).abs() < 1e-12);
        assert!((time("49ns").unwrap().nanoseconds() - 49.0).abs() < 1e-9);
        assert!((time("7.8us").unwrap().seconds() - 7.8e-6).abs() < 1e-15);
    }

    #[test]
    fn fractions() {
        assert_eq!(fraction("50%").unwrap(), 0.5);
        assert_eq!(fraction("0.25").unwrap(), 0.25);
        assert!(fraction("x").is_err());
    }

    #[test]
    fn coordinates() {
        let c = coordinate("3_2").unwrap();
        assert_eq!((c.x, c.y), (3, 2));
        assert!(coordinate("32").is_err());
        assert!(coordinate("a_b").is_err());
    }

    #[test]
    fn devices() {
        let d = device("0.7x0.10um").unwrap();
        assert!((d.width.micrometers() - 0.7).abs() < 1e-9);
        assert!((d.length.micrometers() - 0.10).abs() < 1e-9);
        let d = device("50x0.15um").unwrap();
        assert!((d.width.micrometers() - 50.0).abs() < 1e-6);
        assert!(device("0.7um").is_err());
    }

    #[test]
    fn mux_ratios() {
        assert_eq!(mux_ratio("1:8").unwrap(), 8);
        assert!(mux_ratio("2:8").is_err());
        assert!(mux_ratio("8").is_err());
    }

    #[test]
    fn active_sets() {
        let a = active_during("act,pre").unwrap();
        assert!(a.activate && a.precharge && !a.read && !a.always);
        let a = active_during("always").unwrap();
        assert!(a.always);
        let a = active_during("rd,wrt").unwrap();
        assert!(a.read && a.write);
        assert!(active_during("act,refresh").is_err());
    }

    #[test]
    fn exponent_numbers() {
        assert_eq!(number("1.5e3").unwrap(), 1500.0);
        assert_eq!(number("-2e-2").unwrap(), -0.02);
        // 'e' as unit start must not be eaten: no such unit here, but the
        // number must still parse.
        assert!(number("5eggs").is_err());
    }

    #[test]
    fn integers() {
        assert_eq!(integer("512").unwrap(), 512);
        assert!(integer("-1").is_err());
        assert!(integer("1.5").is_err());
    }
}
