//! Parser for the DRAM description language (Fig. 4, steps "Parse input
//! file" and "Syntax check").
//!
//! The file is organized in the sections of §III.B: `FloorplanPhysical`,
//! `FloorplanSignaling`, `Technology`, `Electrical`, `Specification`,
//! `Timing`, plus free-standing `Device`, `LogicBlock` and `Pattern`
//! directives. See `descriptions/ddr3_1gb_x16_55nm.dram` for a complete
//! example.

use std::collections::{BTreeMap, BTreeSet};

use dram_core::params::{
    Axis, BitlineArchitecture, BufferDevice, DeviceGeometry, DramDescription, Electrical,
    LogicBlock, PhysicalFloorplan, SegmentSpec, SignalClass, SignalSpec, SignalingFloorplan,
    Specification, Technology, Timing, WireCount,
};
use dram_core::Pattern;
use dram_units::{Amperes, BitsPerSecond, Farads, FaradsPerMeter, Hertz, Meters, Seconds, Volts};

use crate::error::DslError;
use crate::lexer::{lex, Line};
use crate::value;

/// Result of parsing a description file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// The assembled device description.
    pub description: DramDescription,
    /// The operation pattern, if the file contained a `Pattern` directive.
    pub pattern: Option<Pattern>,
}

/// Parses a complete description file.
///
/// # Errors
///
/// Returns a [`DslError`] naming the offending line for syntax errors,
/// unknown keys or sections, and a file-level error listing any missing
/// required parameters.
///
/// # Examples
///
/// ```
/// let text = include_str!("../descriptions/ddr3_1gb_x16_55nm.dram");
/// let parsed = dram_dsl::parse(text)?;
/// assert_eq!(parsed.description.spec.density_bits(), 1 << 30);
/// # Ok::<(), dram_dsl::DslError>(())
/// ```
pub fn parse(input: &str) -> Result<ParsedFile, DslError> {
    let _s = dram_obs::span("dsl.parse").arg("bytes", input.len());
    parses_total().inc();
    Parser::default().run(lex(input)?)
}

/// Process-wide count of [`parse`] calls, registered once.
fn parses_total() -> &'static std::sync::Arc<dram_obs::Counter> {
    static COUNTER: std::sync::OnceLock<std::sync::Arc<dram_obs::Counter>> =
        std::sync::OnceLock::new();
    COUNTER.get_or_init(|| {
        dram_obs::Registry::global().counter(
            "dram_dsl_parses_total",
            "Description-language parses attempted.",
        )
    })
}

/// Parses a description file, discarding any pattern directive.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_description(input: &str) -> Result<DramDescription, DslError> {
    parse(input).map(|p| p.description)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    FloorplanPhysical,
    FloorplanSignaling,
    Technology,
    Electrical,
    Specification,
    Timing,
}

#[derive(Debug)]
struct Parser {
    section: Section,
    seen: BTreeSet<&'static str>,
    name: String,
    fp: PhysicalFloorplan,
    tech: Technology,
    elec: Electrical,
    spec: Specification,
    timing: Timing,
    signals: Vec<SignalSpec>,
    logic_blocks: Vec<LogicBlock>,
    pattern: Option<Pattern>,
}

impl Default for Parser {
    fn default() -> Self {
        Self {
            section: Section::None,
            seen: BTreeSet::new(),
            name: String::new(),
            fp: PhysicalFloorplan {
                bitline_direction: Axis::Vertical,
                bits_per_bitline: 0,
                bits_per_local_wordline: 0,
                bitline_architecture: BitlineArchitecture::Open,
                blocks_per_csl: 1,
                wordline_pitch: Meters::ZERO,
                bitline_pitch: Meters::ZERO,
                sa_stripe_width: Meters::ZERO,
                lwd_stripe_width: Meters::ZERO,
                horizontal_blocks: Vec::new(),
                vertical_blocks: Vec::new(),
                horizontal_sizes: BTreeMap::new(),
                vertical_sizes: BTreeMap::new(),
            },
            tech: Technology {
                tox_logic: Meters::ZERO,
                tox_high_voltage: Meters::ZERO,
                tox_cell: Meters::ZERO,
                lmin_logic: Meters::ZERO,
                junction_cap_logic: FaradsPerMeter::ZERO,
                lmin_high_voltage: Meters::ZERO,
                junction_cap_high_voltage: FaradsPerMeter::ZERO,
                cell_access_length: Meters::ZERO,
                cell_access_width: Meters::ZERO,
                bitline_cap: Farads::ZERO,
                cell_cap: Farads::ZERO,
                bl_to_wl_cap_share: 0.0,
                bits_per_csl_per_subarray: 0,
                c_wire_mwl: FaradsPerMeter::ZERO,
                mwl_predecode_ratio: 0.0,
                mwl_decoder_nmos_width: Meters::ZERO,
                mwl_decoder_pmos_width: Meters::ZERO,
                mwl_decoder_switching: 0.0,
                wl_controller_nmos_width: Meters::ZERO,
                wl_controller_pmos_width: Meters::ZERO,
                swd_nmos_width: Meters::ZERO,
                swd_pmos_width: Meters::ZERO,
                swd_restore_nmos_width: Meters::ZERO,
                c_wire_lwl: FaradsPerMeter::ZERO,
                sa_nmos_sense: DeviceGeometry {
                    width: Meters::ZERO,
                    length: Meters::ZERO,
                },
                sa_pmos_sense: DeviceGeometry {
                    width: Meters::ZERO,
                    length: Meters::ZERO,
                },
                sa_equalize: DeviceGeometry {
                    width: Meters::ZERO,
                    length: Meters::ZERO,
                },
                sa_bit_switch: DeviceGeometry {
                    width: Meters::ZERO,
                    length: Meters::ZERO,
                },
                sa_bitline_mux: DeviceGeometry {
                    width: Meters::ZERO,
                    length: Meters::ZERO,
                },
                sa_nset: DeviceGeometry {
                    width: Meters::ZERO,
                    length: Meters::ZERO,
                },
                sa_pset: DeviceGeometry {
                    width: Meters::ZERO,
                    length: Meters::ZERO,
                },
                c_wire_signal: FaradsPerMeter::ZERO,
            },
            elec: Electrical {
                vdd: Volts::ZERO,
                vint: Volts::ZERO,
                vbl: Volts::ZERO,
                vpp: Volts::ZERO,
                eff_vint: 0.0,
                eff_vbl: 0.0,
                eff_vpp: 0.0,
                constant_current: Amperes::ZERO,
            },
            spec: Specification {
                io_width: 0,
                datarate_per_pin: BitsPerSecond::ZERO,
                clock_wires: 0,
                data_clock: Hertz::ZERO,
                control_clock: Hertz::ZERO,
                bank_address_bits: 0,
                row_address_bits: 0,
                column_address_bits: 0,
                control_signals: 0,
                prefetch: 0,
                burst_length: 0,
            },
            timing: Timing {
                trc: Seconds::ZERO,
                tras: Seconds::ZERO,
                trp: Seconds::ZERO,
                trcd: Seconds::ZERO,
                trrd: Seconds::ZERO,
                tfaw: Seconds::ZERO,
                trfc: Seconds::ZERO,
                trefi: Seconds::ZERO,
                tccd_cycles: 0,
            },
            signals: Vec::new(),
            logic_blocks: Vec::new(),
            pattern: None,
        }
    }
}

/// Parameters that must appear in every description.
const REQUIRED: &[&str] = &[
    "CellArray.BitsPerBL",
    "CellArray.BitsPerLWL",
    "CellArray.WLpitch",
    "CellArray.BLpitch",
    "CellArray.SAStripe",
    "CellArray.LWDStripe",
    "Horizontal.blocks",
    "Vertical.blocks",
    "Technology.ToxLogic",
    "Technology.ToxHV",
    "Technology.ToxCell",
    "Technology.LminLogic",
    "Technology.CjLogic",
    "Technology.LminHV",
    "Technology.CjHV",
    "Technology.CellL",
    "Technology.CellW",
    "Technology.CBitline",
    "Technology.CCell",
    "Technology.BitsPerCSL",
    "Technology.CWireMWL",
    "Technology.CWireLWL",
    "Technology.CWireSignal",
    "Technology.SANSense",
    "Technology.SAPSense",
    "Technology.SAEq",
    "Technology.SABitSwitch",
    "Technology.SANSet",
    "Technology.SAPSet",
    "Technology.SWDN",
    "Technology.SWDP",
    "Technology.SWDRestore",
    "Electrical.Vdd",
    "Electrical.Vint",
    "Electrical.Vbl",
    "Electrical.Vpp",
    "Electrical.EffVint",
    "Electrical.EffVbl",
    "Electrical.EffVpp",
    "IO.width",
    "IO.datarate",
    "Clock.frequency",
    "Control.frequency",
    "Control.bankadd",
    "Control.rowadd",
    "Control.coladd",
    "Access.prefetch",
    "Access.burst",
    "Timing.tRC",
    "Timing.tRAS",
    "Timing.tRP",
    "Timing.tRCD",
    "Timing.tRRD",
    "Timing.tFAW",
    "Timing.tRFC",
    "Timing.tREFI",
    "Timing.tCCD",
];

impl Parser {
    fn run(mut self, lines: Vec<Line>) -> Result<ParsedFile, DslError> {
        for line in &lines {
            self.dispatch(line)?;
        }
        let missing: Vec<&str> = REQUIRED
            .iter()
            .copied()
            .filter(|k| !self.seen.contains(k))
            .collect();
        if !missing.is_empty() {
            return Err(DslError::new(
                0,
                format!("missing required parameters: {}", missing.join(", ")),
            ));
        }
        let description = DramDescription {
            name: self.name,
            floorplan: self.fp,
            signaling: SignalingFloorplan {
                signals: self.signals,
            },
            technology: self.tech,
            electrical: self.elec,
            spec: self.spec,
            timing: self.timing,
            logic_blocks: self.logic_blocks,
        };
        Ok(ParsedFile {
            description,
            pattern: self.pattern,
        })
    }

    fn dispatch(&mut self, line: &Line) -> Result<(), DslError> {
        // Section headers and free-standing directives first.
        match line.head.as_str() {
            "FloorplanPhysical" => {
                self.section = Section::FloorplanPhysical;
                return Ok(());
            }
            "FloorplanSignaling" => {
                self.section = Section::FloorplanSignaling;
                return Ok(());
            }
            "Technology" => {
                self.section = Section::Technology;
                return Ok(());
            }
            "Electrical" => {
                self.section = Section::Electrical;
                return Ok(());
            }
            "Specification" => {
                self.section = Section::Specification;
                return Ok(());
            }
            "Timing" if line.args.is_empty() => {
                self.section = Section::Timing;
                return Ok(());
            }
            "Device" => return self.parse_device(line),
            "LogicBlock" => return self.parse_logic_block(line),
            "Pattern" => return self.parse_pattern(line),
            _ => {}
        }
        match self.section {
            Section::None => Err(DslError::new(
                line.number,
                format!("`{}` before any section header", line.head),
            )),
            Section::FloorplanPhysical => self.parse_floorplan(line),
            Section::FloorplanSignaling => self.parse_signaling(line),
            Section::Technology => self.parse_technology(line),
            Section::Electrical => self.parse_electrical(line),
            Section::Specification => self.parse_specification(line),
            Section::Timing => self.parse_timing(line),
        }
    }

    fn mark(&mut self, key: &'static str) {
        self.seen.insert(key);
    }

    fn parse_device(&mut self, line: &Line) -> Result<(), DslError> {
        if let Some(name) = line.value("name") {
            self.name = name.to_string();
            Ok(())
        } else {
            Err(DslError::new(
                line.number,
                "Device directive needs name=\"...\"",
            ))
        }
    }

    fn parse_pattern(&mut self, line: &Line) -> Result<(), DslError> {
        let words = line
            .list("loop")
            .ok_or_else(|| DslError::new(line.number, "Pattern directive needs `loop= ...`"))?;
        let text = words.join(" ");
        let pattern = Pattern::parse(&text)
            .map_err(|e| DslError::new(line.number, format!("bad pattern: {e}")))?;
        self.pattern = Some(pattern);
        Ok(())
    }

    fn parse_logic_block(&mut self, line: &Line) -> Result<(), DslError> {
        let n = line.number;
        let get = |key: &str| -> Result<&str, DslError> {
            line.value(key)
                .ok_or_else(|| DslError::new(n, format!("LogicBlock needs `{key}=`")))
        };
        let wrap = |key: &str, e: String| DslError::new(n, format!("{key}: {e}"));
        let block = LogicBlock {
            name: get("name")?.to_string(),
            gates: value::integer(get("gates")?).map_err(|e| wrap("gates", e))?,
            avg_nmos_width: value::length(get("Wn")?).map_err(|e| wrap("Wn", e))?,
            avg_pmos_width: value::length(get("Wp")?).map_err(|e| wrap("Wp", e))?,
            transistors_per_gate: value::number(get("tpg")?).map_err(|e| wrap("tpg", e))?,
            gate_density: value::fraction(get("gatedensity")?)
                .map_err(|e| wrap("gatedensity", e))?,
            wiring_density: value::fraction(get("wiredensity")?)
                .map_err(|e| wrap("wiredensity", e))?,
            active_during: value::active_during(get("active")?).map_err(|e| wrap("active", e))?,
            toggle_rate: value::fraction(get("toggle")?).map_err(|e| wrap("toggle", e))?,
        };
        self.logic_blocks.push(block);
        Ok(())
    }

    fn parse_floorplan(&mut self, line: &Line) -> Result<(), DslError> {
        let n = line.number;
        match line.head.as_str() {
            "CellArray" => {
                for (key, val) in line.pairs() {
                    let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
                    match key {
                        "BL" => {
                            self.fp.bitline_direction = match val {
                                "v" => Axis::Vertical,
                                "h" => Axis::Horizontal,
                                other => {
                                    return Err(DslError::new(
                                        n,
                                        format!("BL direction must be v or h, got `{other}`"),
                                    ))
                                }
                            };
                        }
                        "BitsPerBL" => {
                            self.fp.bits_per_bitline = value::integer(val).map_err(wrap)?;
                            self.mark("CellArray.BitsPerBL");
                        }
                        "BitsPerLWL" => {
                            self.fp.bits_per_local_wordline = value::integer(val).map_err(wrap)?;
                            self.mark("CellArray.BitsPerLWL");
                        }
                        "BLtype" => {
                            self.fp.bitline_architecture = match val {
                                "open" => BitlineArchitecture::Open,
                                "folded" => BitlineArchitecture::Folded,
                                "4f2" | "vertical" => BitlineArchitecture::Vertical4F2,
                                other => {
                                    return Err(DslError::new(
                                        n,
                                        format!("BLtype must be open/folded/4f2, got `{other}`"),
                                    ))
                                }
                            };
                        }
                        "WLpitch" => {
                            self.fp.wordline_pitch = value::length(val).map_err(wrap)?;
                            self.mark("CellArray.WLpitch");
                        }
                        "BLpitch" => {
                            self.fp.bitline_pitch = value::length(val).map_err(wrap)?;
                            self.mark("CellArray.BLpitch");
                        }
                        "SAStripe" => {
                            self.fp.sa_stripe_width = value::length(val).map_err(wrap)?;
                            self.mark("CellArray.SAStripe");
                        }
                        "LWDStripe" => {
                            self.fp.lwd_stripe_width = value::length(val).map_err(wrap)?;
                            self.mark("CellArray.LWDStripe");
                        }
                        "BlocksPerCSL" => {
                            self.fp.blocks_per_csl = value::integer(val).map_err(wrap)?;
                        }
                        other => {
                            return Err(DslError::new(
                                n,
                                format!("unknown CellArray key `{other}`"),
                            ))
                        }
                    }
                }
                Ok(())
            }
            "Horizontal" => {
                let blocks = line
                    .list("blocks")
                    .ok_or_else(|| DslError::new(n, "Horizontal needs `blocks = A1 P1 ...`"))?;
                self.fp.horizontal_blocks = blocks.to_vec();
                self.mark("Horizontal.blocks");
                Ok(())
            }
            "Vertical" => {
                let blocks = line
                    .list("blocks")
                    .ok_or_else(|| DslError::new(n, "Vertical needs `blocks = A1 P1 ...`"))?;
                self.fp.vertical_blocks = blocks.to_vec();
                self.mark("Vertical.blocks");
                Ok(())
            }
            "SizeHorizontal" | "SizeVertical" => {
                let sizes = if line.head == "SizeHorizontal" {
                    &mut self.fp.horizontal_sizes
                } else {
                    &mut self.fp.vertical_sizes
                };
                for (key, val) in line.pairs() {
                    // Array block sizes are computed by the model; explicit
                    // entries for them are accepted and ignored.
                    if PhysicalFloorplan::is_array_type(key) {
                        continue;
                    }
                    let m =
                        value::length(val).map_err(|e| DslError::new(n, format!("{key}: {e}")))?;
                    sizes.insert(key.to_string(), m);
                }
                Ok(())
            }
            other => Err(DslError::new(
                n,
                format!("unknown FloorplanPhysical directive `{other}`"),
            )),
        }
    }

    fn parse_signaling(&mut self, line: &Line) -> Result<(), DslError> {
        let n = line.number;
        if line.head == "Signal" {
            // Declaration: `Signal DataW class=wdata wires=io toggle=50%`.
            let name = match line.args.first() {
                Some(crate::lexer::Arg::Bare(name)) => name.clone(),
                _ => return Err(DslError::new(n, "Signal needs a name word first")),
            };
            let class = match line.value("class") {
                Some("wdata") => SignalClass::WriteData,
                Some("rdata") => SignalClass::ReadData,
                Some("rowaddr") => SignalClass::RowAddress,
                Some("coladdr") => SignalClass::ColumnAddress,
                Some("bankaddr") => SignalClass::BankAddress,
                Some("control") => SignalClass::Control,
                Some("clock") => SignalClass::Clock,
                Some(other) => {
                    return Err(DslError::new(n, format!("unknown signal class `{other}`")))
                }
                None => return Err(DslError::new(n, "Signal needs `class=`")),
            };
            let wires = match line.value("wires") {
                Some("io") => WireCount::PerIo,
                Some("rowadd") => WireCount::RowAddressBits,
                Some("coladd") => WireCount::ColumnAddressBits,
                Some("bankadd") => WireCount::BankAddressBits,
                Some("control") => WireCount::ControlSignals,
                Some("clock") => WireCount::ClockWires,
                Some(numeric) => WireCount::Explicit(
                    value::integer(numeric).map_err(|e| DslError::new(n, format!("wires: {e}")))?,
                ),
                None => return Err(DslError::new(n, "Signal needs `wires=`")),
            };
            let toggle = match line.value("toggle") {
                Some(t) => {
                    value::fraction(t).map_err(|e| DslError::new(n, format!("toggle: {e}")))?
                }
                None => 0.5,
            };
            self.signals.push(SignalSpec {
                name,
                class,
                wires,
                toggle_rate: toggle,
                segments: Vec::new(),
            });
            return Ok(());
        }

        // Segment line: head is `<signal><index>`, e.g. `DataW0`.
        let owner = self
            .signals
            .iter_mut()
            .filter(|s| {
                line.head.starts_with(&s.name)
                    && line.head[s.name.len()..]
                        .chars()
                        .all(|c| c.is_ascii_digit())
                    && line.head.len() > s.name.len()
            })
            .max_by_key(|s| s.name.len());
        let Some(owner) = owner else {
            return Err(DslError::new(
                n,
                format!("segment `{}` does not match any declared Signal", line.head),
            ));
        };

        let buffer = match (line.value("NchW"), line.value("PchW")) {
            (Some(nw), Some(pw)) => {
                let parse_width = |s: &str, key: &str| -> Result<Meters, DslError> {
                    // The paper writes bare numbers (µm); accept units too.
                    if let Ok(v) = value::number(s) {
                        Ok(Meters::from_um(v))
                    } else {
                        value::length(s).map_err(|e| DslError::new(n, format!("{key}: {e}")))
                    }
                };
                Some(BufferDevice {
                    nmos_width: parse_width(nw, "NchW")?,
                    pmos_width: parse_width(pw, "PchW")?,
                })
            }
            (None, None) => None,
            _ => {
                return Err(DslError::new(
                    n,
                    "buffer needs both NchW= and PchW= (or neither)",
                ))
            }
        };

        let segment = if let Some(at) = line.value("inside") {
            let at = value::coordinate(at).map_err(|e| DslError::new(n, format!("inside: {e}")))?;
            let fraction = line
                .value("fraction")
                .map(value::fraction)
                .transpose()
                .map_err(|e| DslError::new(n, format!("fraction: {e}")))?
                .unwrap_or(1.0);
            let dir = match line.value("dir") {
                Some("h") | None => Axis::Horizontal,
                Some("v") => Axis::Vertical,
                Some(other) => {
                    return Err(DslError::new(
                        n,
                        format!("dir must be h or v, got `{other}`"),
                    ))
                }
            };
            let mux = line
                .value("mux")
                .map(value::mux_ratio)
                .transpose()
                .map_err(|e| DslError::new(n, format!("mux: {e}")))?;
            SegmentSpec::Inside {
                at,
                fraction,
                dir,
                buffer,
                mux,
            }
        } else if let (Some(from), Some(to)) = (line.value("start"), line.value("end")) {
            let from =
                value::coordinate(from).map_err(|e| DslError::new(n, format!("start: {e}")))?;
            let to = value::coordinate(to).map_err(|e| DslError::new(n, format!("end: {e}")))?;
            SegmentSpec::Between { from, to, buffer }
        } else {
            return Err(DslError::new(
                n,
                "segment needs either `inside=` or `start=`/`end=`",
            ));
        };
        owner.segments.push(segment);
        Ok(())
    }

    fn parse_technology(&mut self, line: &Line) -> Result<(), DslError> {
        let n = line.number;
        for (key, val) in line.pairs() {
            let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
            let t = &mut self.tech;
            match key {
                "ToxLogic" => {
                    t.tox_logic = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.ToxLogic");
                }
                "ToxHV" => {
                    t.tox_high_voltage = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.ToxHV");
                }
                "ToxCell" => {
                    t.tox_cell = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.ToxCell");
                }
                "LminLogic" => {
                    t.lmin_logic = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.LminLogic");
                }
                "CjLogic" => {
                    t.junction_cap_logic = value::capacitance_per_length(val).map_err(wrap)?;
                    self.seen.insert("Technology.CjLogic");
                }
                "LminHV" => {
                    t.lmin_high_voltage = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.LminHV");
                }
                "CjHV" => {
                    t.junction_cap_high_voltage =
                        value::capacitance_per_length(val).map_err(wrap)?;
                    self.seen.insert("Technology.CjHV");
                }
                "CellL" => {
                    t.cell_access_length = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.CellL");
                }
                "CellW" => {
                    t.cell_access_width = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.CellW");
                }
                "CBitline" => {
                    t.bitline_cap = value::capacitance(val).map_err(wrap)?;
                    self.seen.insert("Technology.CBitline");
                }
                "CCell" => {
                    t.cell_cap = value::capacitance(val).map_err(wrap)?;
                    self.seen.insert("Technology.CCell");
                }
                "BLtoWLShare" => {
                    t.bl_to_wl_cap_share = value::fraction(val).map_err(wrap)?;
                }
                "BitsPerCSL" => {
                    t.bits_per_csl_per_subarray = value::integer(val).map_err(wrap)?;
                    self.seen.insert("Technology.BitsPerCSL");
                }
                "CWireMWL" => {
                    t.c_wire_mwl = value::capacitance_per_length(val).map_err(wrap)?;
                    self.seen.insert("Technology.CWireMWL");
                }
                "PredecodeRatio" => {
                    t.mwl_predecode_ratio = value::fraction(val).map_err(wrap)?;
                }
                "MWLDecN" => t.mwl_decoder_nmos_width = value::length(val).map_err(wrap)?,
                "MWLDecP" => t.mwl_decoder_pmos_width = value::length(val).map_err(wrap)?,
                "MWLDecSwitch" => t.mwl_decoder_switching = value::number(val).map_err(wrap)?,
                "WLCtrlN" => t.wl_controller_nmos_width = value::length(val).map_err(wrap)?,
                "WLCtrlP" => t.wl_controller_pmos_width = value::length(val).map_err(wrap)?,
                "SWDN" => {
                    t.swd_nmos_width = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.SWDN");
                }
                "SWDP" => {
                    t.swd_pmos_width = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.SWDP");
                }
                "SWDRestore" => {
                    t.swd_restore_nmos_width = value::length(val).map_err(wrap)?;
                    self.seen.insert("Technology.SWDRestore");
                }
                "CWireLWL" => {
                    t.c_wire_lwl = value::capacitance_per_length(val).map_err(wrap)?;
                    self.seen.insert("Technology.CWireLWL");
                }
                "SANSense" => {
                    t.sa_nmos_sense = value::device(val).map_err(wrap)?;
                    self.seen.insert("Technology.SANSense");
                }
                "SAPSense" => {
                    t.sa_pmos_sense = value::device(val).map_err(wrap)?;
                    self.seen.insert("Technology.SAPSense");
                }
                "SAEq" => {
                    t.sa_equalize = value::device(val).map_err(wrap)?;
                    self.seen.insert("Technology.SAEq");
                }
                "SABitSwitch" => {
                    t.sa_bit_switch = value::device(val).map_err(wrap)?;
                    self.seen.insert("Technology.SABitSwitch");
                }
                "SABLMux" => t.sa_bitline_mux = value::device(val).map_err(wrap)?,
                "SANSet" => {
                    t.sa_nset = value::device(val).map_err(wrap)?;
                    self.seen.insert("Technology.SANSet");
                }
                "SAPSet" => {
                    t.sa_pset = value::device(val).map_err(wrap)?;
                    self.seen.insert("Technology.SAPSet");
                }
                "CWireSignal" => {
                    t.c_wire_signal = value::capacitance_per_length(val).map_err(wrap)?;
                    self.seen.insert("Technology.CWireSignal");
                }
                other => {
                    return Err(DslError::new(
                        n,
                        format!("unknown Technology key `{other}`"),
                    ))
                }
            }
        }
        Ok(())
    }

    fn parse_electrical(&mut self, line: &Line) -> Result<(), DslError> {
        let n = line.number;
        for (key, val) in line.pairs() {
            let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
            match key {
                "Vdd" => {
                    self.elec.vdd = value::voltage(val).map_err(wrap)?;
                    self.seen.insert("Electrical.Vdd");
                }
                "Vint" => {
                    self.elec.vint = value::voltage(val).map_err(wrap)?;
                    self.seen.insert("Electrical.Vint");
                }
                "Vbl" => {
                    self.elec.vbl = value::voltage(val).map_err(wrap)?;
                    self.seen.insert("Electrical.Vbl");
                }
                "Vpp" => {
                    self.elec.vpp = value::voltage(val).map_err(wrap)?;
                    self.seen.insert("Electrical.Vpp");
                }
                "EffVint" => {
                    self.elec.eff_vint = value::fraction(val).map_err(wrap)?;
                    self.seen.insert("Electrical.EffVint");
                }
                "EffVbl" => {
                    self.elec.eff_vbl = value::fraction(val).map_err(wrap)?;
                    self.seen.insert("Electrical.EffVbl");
                }
                "EffVpp" => {
                    self.elec.eff_vpp = value::fraction(val).map_err(wrap)?;
                    self.seen.insert("Electrical.EffVpp");
                }
                "ConstCurrent" => {
                    self.elec.constant_current = value::current(val).map_err(wrap)?;
                }
                other => {
                    return Err(DslError::new(
                        n,
                        format!("unknown Electrical key `{other}`"),
                    ))
                }
            }
        }
        Ok(())
    }

    fn parse_specification(&mut self, line: &Line) -> Result<(), DslError> {
        let n = line.number;
        match line.head.as_str() {
            "IO" => {
                for (key, val) in line.pairs() {
                    let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
                    match key {
                        "width" => {
                            self.spec.io_width = value::integer(val).map_err(wrap)?;
                            self.seen.insert("IO.width");
                        }
                        "datarate" => {
                            self.spec.datarate_per_pin = value::datarate(val).map_err(wrap)?;
                            self.seen.insert("IO.datarate");
                        }
                        other => return Err(DslError::new(n, format!("unknown IO key `{other}`"))),
                    }
                }
                Ok(())
            }
            "Clock" => {
                for (key, val) in line.pairs() {
                    let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
                    match key {
                        "number" => self.spec.clock_wires = value::integer(val).map_err(wrap)?,
                        "frequency" => {
                            self.spec.data_clock = value::frequency(val).map_err(wrap)?;
                            self.seen.insert("Clock.frequency");
                        }
                        other => {
                            return Err(DslError::new(n, format!("unknown Clock key `{other}`")))
                        }
                    }
                }
                Ok(())
            }
            "Control" => {
                for (key, val) in line.pairs() {
                    let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
                    match key {
                        "frequency" => {
                            self.spec.control_clock = value::frequency(val).map_err(wrap)?;
                            self.seen.insert("Control.frequency");
                        }
                        "bankadd" => {
                            self.spec.bank_address_bits = value::integer(val).map_err(wrap)?;
                            self.seen.insert("Control.bankadd");
                        }
                        "rowadd" => {
                            self.spec.row_address_bits = value::integer(val).map_err(wrap)?;
                            self.seen.insert("Control.rowadd");
                        }
                        "coladd" => {
                            self.spec.column_address_bits = value::integer(val).map_err(wrap)?;
                            self.seen.insert("Control.coladd");
                        }
                        "misc" => {
                            self.spec.control_signals = value::integer(val).map_err(wrap)?;
                        }
                        other => {
                            return Err(DslError::new(n, format!("unknown Control key `{other}`")))
                        }
                    }
                }
                Ok(())
            }
            "Access" => {
                for (key, val) in line.pairs() {
                    let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
                    match key {
                        "prefetch" => {
                            self.spec.prefetch = value::integer(val).map_err(wrap)?;
                            self.seen.insert("Access.prefetch");
                        }
                        "burst" => {
                            self.spec.burst_length = value::integer(val).map_err(wrap)?;
                            self.seen.insert("Access.burst");
                        }
                        other => {
                            return Err(DslError::new(n, format!("unknown Access key `{other}`")))
                        }
                    }
                }
                Ok(())
            }
            other => Err(DslError::new(
                n,
                format!("unknown Specification directive `{other}`"),
            )),
        }
    }

    fn parse_timing(&mut self, line: &Line) -> Result<(), DslError> {
        let n = line.number;
        if line.head != "Row" && line.head != "Column" && line.head != "Refresh" {
            return Err(DslError::new(
                n,
                format!(
                    "unknown Timing directive `{}` (use Row/Column/Refresh)",
                    line.head
                ),
            ));
        }
        for (key, val) in line.pairs() {
            let wrap = |e: String| DslError::new(n, format!("{key}: {e}"));
            match key {
                "tRC" => {
                    self.timing.trc = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tRC");
                }
                "tRAS" => {
                    self.timing.tras = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tRAS");
                }
                "tRP" => {
                    self.timing.trp = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tRP");
                }
                "tRCD" => {
                    self.timing.trcd = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tRCD");
                }
                "tRRD" => {
                    self.timing.trrd = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tRRD");
                }
                "tFAW" => {
                    self.timing.tfaw = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tFAW");
                }
                "tRFC" => {
                    self.timing.trfc = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tRFC");
                }
                "tREFI" => {
                    self.timing.trefi = value::time(val).map_err(wrap)?;
                    self.seen.insert("Timing.tREFI");
                }
                "tCCD" => {
                    self.timing.tccd_cycles = value::integer(val).map_err(wrap)?;
                    self.seen.insert("Timing.tCCD");
                }
                other => return Err(DslError::new(n, format!("unknown Timing key `{other}`"))),
            }
        }
        Ok(())
    }
}
