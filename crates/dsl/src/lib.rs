//! # dram-dsl
//!
//! Parser and pretty-printer for the DRAM description language of
//! Vogelsang (MICRO 2010), §III.B. The language describes a DRAM's
//! physical floorplan, signaling floorplan, technology, electrical
//! configuration, interface specification, timing, miscellaneous logic
//! blocks, and an operation pattern — everything the power model in
//! [`dram_core`] needs.
//!
//! ```text
//! FloorplanPhysical
//! CellArray BL=v BitsPerBL=512 BLtype=open
//! CellArray WLpitch=0.165um BLpitch=0.11um
//! Vertical blocks = A1 P1 P2 P1 A1
//! SizeVertical P1=200um P2=530um
//!
//! FloorplanSignaling
//! Signal DataW class=wdata wires=io toggle=50%
//! DataW0 inside=3_2 fraction=25% dir=h mux=1:8 NchW=9.6 PchW=19.2
//! DataW1 start=3_2 end=4_1 NchW=9.6 PchW=19.2
//!
//! Pattern loop= act nop wrt nop rd nop pre nop
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use dram_core::Dram;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = include_str!("../descriptions/ddr3_1gb_x16_55nm.dram");
//! let parsed = dram_dsl::parse(text)?;
//! let dram = Dram::new(parsed.description)?;
//! let idd = dram.idd();
//! assert!(idd.idd4r.milliamperes() > idd.idd0.milliamperes());
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod error;
pub mod lexer;
mod parser;
pub mod value;
mod writer;

pub use error::DslError;
pub use parser::{parse, parse_description, ParsedFile};
pub use writer::write;

#[cfg(test)]
mod tests {
    use dram_core::reference::ddr3_1g_x16_55nm;
    use dram_core::Dram;

    /// The writer's output must parse back into an equivalent
    /// description: identical model outputs and identical structure up to
    /// floating-point printing.
    #[test]
    fn roundtrip_preserves_model_output() {
        let original = ddr3_1g_x16_55nm();
        let text = crate::write(&original, None);
        let parsed = crate::parse(&text).expect("writer output parses");
        let d1 = Dram::new(original).expect("original builds");
        let d2 = Dram::new(parsed.description).expect("round-tripped builds");
        let i1 = d1.idd();
        let i2 = d2.idd();
        let close = |a: dram_units::Amperes, b: dram_units::Amperes| {
            (a.amperes() - b.amperes()).abs() < 1e-9 * a.amperes().abs().max(1e-6)
        };
        assert!(close(i1.idd0, i2.idd0), "{} vs {}", i1.idd0, i2.idd0);
        assert!(close(i1.idd2n, i2.idd2n));
        assert!(close(i1.idd4r, i2.idd4r));
        assert!(close(i1.idd4w, i2.idd4w));
        assert!(close(i1.idd7, i2.idd7));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = ddr3_1g_x16_55nm();
        let text = crate::write(&original, None);
        let parsed = crate::parse(&text).expect("writer output parses");
        let d = parsed.description;
        assert_eq!(d.name, original.name);
        assert_eq!(d.spec, original.spec);
        assert_eq!(
            d.floorplan.horizontal_blocks,
            original.floorplan.horizontal_blocks
        );
        assert_eq!(
            d.floorplan.bits_per_bitline,
            original.floorplan.bits_per_bitline
        );
        assert_eq!(d.signaling.signals.len(), original.signaling.signals.len());
        assert_eq!(d.logic_blocks.len(), original.logic_blocks.len());
        for (a, b) in d.logic_blocks.iter().zip(&original.logic_blocks) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.gates, b.gates);
            assert_eq!(a.active_during, b.active_during);
        }
        assert_eq!(d.timing.tccd_cycles, original.timing.tccd_cycles);
    }

    #[test]
    fn roundtrip_preserves_pattern() {
        let original = ddr3_1g_x16_55nm();
        let pattern = dram_core::Pattern::paper_example();
        let text = crate::write(&original, Some(&pattern));
        let parsed = crate::parse(&text).expect("writer output parses");
        assert_eq!(parsed.pattern, Some(pattern));
    }

    #[test]
    fn sample_description_file_parses_and_builds() {
        let text = include_str!("../descriptions/ddr3_1gb_x16_55nm.dram");
        let parsed = crate::parse(text).expect("sample parses");
        assert!(parsed.pattern.is_some(), "sample carries a pattern");
        let dram = Dram::new(parsed.description).expect("sample builds");
        let idd = dram.idd();
        // The sample file is the reference device: currents must land in
        // the DDR3 x16 datasheet band.
        assert!(idd.idd0.milliamperes() > 35.0 && idd.idd0.milliamperes() < 90.0);
        assert!(idd.idd4r.milliamperes() > 100.0 && idd.idd4r.milliamperes() < 260.0);
    }

    #[test]
    fn ddr5_description_file_parses_and_builds() {
        let text = include_str!("../descriptions/ddr5_16gb_x16_18nm.dram");
        let parsed = crate::parse(text).expect("ddr5 sample parses");
        let dram = Dram::new(parsed.description).expect("ddr5 sample builds");
        assert_eq!(dram.description().spec.density_bits(), 1u64 << 34);
        assert_eq!(dram.description().spec.banks(), 32);
    }

    #[test]
    fn missing_required_parameters_are_listed() {
        let err = crate::parse("FloorplanPhysical\nCellArray BitsPerBL=512\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing required parameters"));
        assert!(msg.contains("Technology.ToxLogic"));
        assert!(msg.contains("Electrical.Vdd"));
        assert!(
            !msg.contains("CellArray.BitsPerBL"),
            "provided key not listed: {msg}"
        );
    }

    #[test]
    fn unknown_keys_are_rejected_with_line_numbers() {
        let text = "Technology\nOxides ToxBogus=5nm\n";
        let err = crate::parse(text).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("ToxBogus"));
    }

    #[test]
    fn content_before_section_is_rejected() {
        let err = crate::parse("CellArray BitsPerBL=512\n").unwrap_err();
        assert!(err.to_string().contains("before any section"));
    }

    #[test]
    fn segment_without_signal_declaration_is_rejected() {
        let text = "FloorplanSignaling\nDataW0 inside=3_2 fraction=25%\n";
        let err = crate::parse(text).unwrap_err();
        assert!(err
            .to_string()
            .contains("does not match any declared Signal"));
    }
}
