fn main() {
    let desc = dram_core::reference::ddr3_1g_x16_55nm();
    let pattern = dram_core::Pattern::paper_example();
    print!("{}", dram_dsl::write(&desc, Some(&pattern)));
}
