//! Differential-rebuild identity: for every shipped description — the
//! two `.dram` files, the in-code calibration reference and the full
//! scaling roadmap — and every [`ParamId`], rebuilding only the dirty
//! phases from a base model must reproduce a fresh [`Dram::new`]
//! bit-for-bit. The same contract is checked through
//! [`EvalEngine::evaluate_perturbations`] at 1 and 8 worker threads,
//! and under a seeded random multi-edit fuzz loop.

use dram_core::reference::ddr3_1g_x16_55nm;
use dram_core::{
    Dram, DramDescription, EvalEngine, Operation, ParamId, Perturbation, PowerSummary,
};
use dram_units::rng::SplitMix64;

/// Every description the workspace ships, by name.
fn presets() -> Vec<(String, DramDescription)> {
    let mut out = vec![("reference/ddr3_1g_x16_55nm".to_string(), ddr3_1g_x16_55nm())];
    for (name, text) in [
        (
            "dsl/ddr3_1gb_x16_55nm",
            include_str!("../descriptions/ddr3_1gb_x16_55nm.dram"),
        ),
        (
            "dsl/ddr5_16gb_x16_18nm",
            include_str!("../descriptions/ddr5_16gb_x16_18nm.dram"),
        ),
    ] {
        let parsed = dram_dsl::parse(text).expect("shipped description parses");
        out.push((name.to_string(), parsed.description));
    }
    for (node, desc) in dram_scaling::ROADMAP
        .iter()
        .zip(dram_scaling::presets::all_generations())
    {
        out.push((format!("roadmap/{node}"), desc));
    }
    out
}

fn assert_same_model(label: &str, fresh: &Dram, rebuilt: &Dram) {
    assert_eq!(fresh.geometry(), rebuilt.geometry(), "{label}: geometry");
    for op in Operation::ALL {
        assert_eq!(
            fresh.operation_energy(op),
            rebuilt.operation_energy(op),
            "{label}: {op} energy table"
        );
    }
    assert_same_power(
        label,
        &fresh.mixed_workload_power(),
        &rebuilt.mixed_workload_power(),
    );
}

fn assert_same_power(label: &str, a: &PowerSummary, b: &PowerSummary) {
    assert_eq!(
        a.power.watts().to_bits(),
        b.power.watts().to_bits(),
        "{label}: power"
    );
    assert_eq!(
        a.current.amperes().to_bits(),
        b.current.amperes().to_bits(),
        "{label}: current"
    );
    assert_eq!(
        a.background.watts().to_bits(),
        b.background.watts().to_bits(),
        "{label}: background"
    );
}

/// `rebuild_from` with a parameter's dirty set equals a fresh build, for
/// every preset × parameter × direction.
#[test]
fn rebuild_from_matches_fresh_build_for_every_preset_and_param() {
    for (name, desc) in presets() {
        let base = Dram::new(desc.clone()).expect("preset builds");
        for &param in &ParamId::ALL {
            for factor in [1.15, 0.85] {
                let mut edited = desc.clone();
                param.apply(&mut edited, factor);
                let label = format!("{name}: {param} ×{factor}");
                let fresh = Dram::new(edited.clone())
                    .unwrap_or_else(|e| panic!("{label}: fresh build failed: {e}"));
                let rebuilt = base
                    .rebuild_from(&edited, param.dirty_set())
                    .unwrap_or_else(|e| panic!("{label}: rebuild failed: {e}"));
                assert_same_model(&label, &fresh, &rebuilt);
            }
        }
    }
}

/// The engine's batched fast path agrees with fresh builds for every
/// preset × parameter, at 1 and 8 worker threads.
#[test]
fn evaluate_perturbations_matches_fresh_builds_at_1_and_8_threads() {
    for (name, desc) in presets() {
        let perts: Vec<Perturbation> = ParamId::ALL
            .iter()
            .map(|&p| Perturbation::single(p, 1.1))
            .collect();
        let expected: Vec<PowerSummary> = perts
            .iter()
            .map(|pert| {
                let mut edited = desc.clone();
                pert.apply(&mut edited);
                Dram::new(edited)
                    .expect("perturbed preset builds")
                    .mixed_workload_power()
            })
            .collect();
        for threads in [1, 8] {
            let engine = EvalEngine::new().threads(threads);
            let got = engine
                .evaluate_perturbations(&desc, &perts)
                .expect("batch runs");
            assert_eq!(got.len(), expected.len());
            for ((pert, want), have) in perts.iter().zip(&expected).zip(got) {
                let label = format!("{name}: {pert:?} (threads={threads})");
                let have = have.expect("perturbation is valid");
                assert_same_power(&label, want, &have);
            }
        }
    }
}

/// Seeded random multi-edit fuzz: 1–3 stacked edits with factors near
/// 1.0 must either rebuild bit-identically or fail identically.
#[test]
fn random_multi_edit_perturbations_stay_bit_identical() {
    let mut rng = SplitMix64::new(0x5eed_d1ff);
    let desc = ddr3_1g_x16_55nm();
    let base = Dram::new(desc.clone()).expect("reference builds");
    let engine = EvalEngine::new().threads(4);
    let mut perts = Vec::new();
    for _ in 0..64 {
        let n_edits = 1 + rng.range_usize(3);
        let mut edits = Vec::with_capacity(n_edits);
        for _ in 0..n_edits {
            let param = *rng.pick(&ParamId::ALL);
            edits.push((param, rng.range_f64(0.9, 1.1)));
        }
        perts.push(Perturbation::new(edits));
    }
    let got = engine
        .evaluate_perturbations(&desc, &perts)
        .expect("batch runs");
    for (pert, have) in perts.iter().zip(got) {
        let label = format!("{pert:?}");
        let mut edited = desc.clone();
        pert.apply(&mut edited);
        match Dram::new(edited.clone()) {
            Ok(fresh) => {
                // Both the engine path and the direct rebuild agree with
                // the fresh build.
                let have = have.unwrap_or_else(|e| panic!("{label}: batch errored: {e}"));
                assert_same_power(&label, &fresh.mixed_workload_power(), &have);
                let rebuilt = base
                    .rebuild_from(&edited, pert.dirty_set())
                    .unwrap_or_else(|e| panic!("{label}: rebuild failed: {e}"));
                assert_same_model(&label, &fresh, &rebuilt);
            }
            Err(_) => {
                assert!(have.is_err(), "{label}: batch accepted an invalid edit");
                assert!(
                    base.rebuild_from(&edited, pert.dirty_set()).is_err(),
                    "{label}: rebuild accepted an invalid edit"
                );
            }
        }
    }
}
