//! Robustness properties of the description-language front end: the
//! lexer and parser must never panic, whatever bytes arrive, and the
//! value parsers must reject garbage cleanly.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the lexer or parser.
    #[test]
    fn parser_never_panics_on_arbitrary_text(input in "\\PC{0,400}") {
        let _ = dram_dsl::parse(&input);
    }

    /// Arbitrary lines appended to a valid file never panic, and either
    /// parse or produce an error naming a line.
    #[test]
    fn valid_prefix_with_garbage_suffix(suffix in "[ -~]{0,80}") {
        let mut text = include_str!("../descriptions/ddr3_1gb_x16_55nm.dram").to_string();
        text.push('\n');
        text.push_str(&suffix);
        match dram_dsl::parse(&text) {
            Ok(_) => {}
            Err(e) => {
                // Errors carry a usable location or are file-level.
                prop_assert!(e.line() <= text.lines().count() + 1);
                prop_assert!(!e.message().is_empty());
            }
        }
    }

    /// Value parsers reject non-numeric garbage without panicking.
    #[test]
    fn value_parsers_reject_garbage(s in "[a-zA-Z%/:_.]{0,16}") {
        let _ = dram_dsl::value::number(&s);
        let _ = dram_dsl::value::length(&s);
        let _ = dram_dsl::value::capacitance(&s);
        let _ = dram_dsl::value::voltage(&s);
        let _ = dram_dsl::value::frequency(&s);
        let _ = dram_dsl::value::time(&s);
        let _ = dram_dsl::value::coordinate(&s);
        let _ = dram_dsl::value::device(&s);
        let _ = dram_dsl::value::mux_ratio(&s);
        let _ = dram_dsl::value::active_during(&s);
    }

    /// Numeric literals with units round-trip through the length parser.
    #[test]
    fn length_parses_generated_literals(v in 0.001f64..10000.0) {
        let nm = dram_dsl::value::length(&format!("{v}nm")).expect("nm parses");
        prop_assert!((nm.nanometers() - v).abs() < 1e-6 * v.max(1.0));
        let um = dram_dsl::value::length(&format!("{v}um")).expect("um parses");
        prop_assert!((um.micrometers() - v).abs() < 1e-6 * v.max(1.0));
    }

    /// The lexer preserves key/value structure for generated identifiers.
    #[test]
    fn lexer_roundtrips_key_values(
        key in "[A-Za-z][A-Za-z0-9]{0,10}",
        value in "[A-Za-z0-9.]{1,10}",
    ) {
        let line = format!("Head {key}={value}");
        let lines = dram_dsl::lexer::lex(&line).expect("lexes");
        prop_assert_eq!(lines.len(), 1);
        prop_assert_eq!(lines[0].value(&key), Some(value.as_str()));
    }
}

/// Dropping any single required parameter from the shipped sample must
/// produce a "missing required parameters" error that names it — the
/// §III.B syntax-check completeness property.
#[test]
fn every_required_parameter_is_individually_enforced() {
    let sample = include_str!("../descriptions/ddr3_1gb_x16_55nm.dram");
    // Map of required-key suffix -> a space-prefixed key=value token to
    // strip (the space disambiguates e.g. `Vpp=` from `EffVpp=` and
    // `tRC=` from a hypothetical suffix match).
    let removable = [
        ("CellArray.BitsPerBL", " BitsPerBL="),
        ("CellArray.WLpitch", " WLpitch="),
        ("Technology.CBitline", " CBitline="),
        ("Technology.SANSense", " SANSense="),
        ("Electrical.Vpp", " Vpp="),
        ("IO.datarate", " datarate="),
        ("Control.rowadd", " rowadd="),
        ("Access.prefetch", " prefetch="),
        ("Timing.tRC", " tRC="),
        ("Timing.tFAW", " tFAW="),
    ];
    for (required_key, token) in removable {
        let mutated: String = sample
            .lines()
            .map(|line| {
                let padded = format!("{line} ");
                if let Some(pos) = padded.find(token) {
                    // Strip just this key=value pair from the line.
                    let rest = &padded[pos + 1..];
                    let end = rest.find(' ').map(|i| pos + 1 + i).unwrap_or(padded.len());
                    format!("{}{}", &padded[..pos], &padded[end..])
                        .trim_end()
                        .to_string()
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = dram_dsl::parse(&mutated).expect_err(&format!("removing {token} should fail"));
        let msg = err.to_string();
        assert!(
            msg.contains("missing required parameters") && msg.contains(required_key),
            "{token}: unexpected error `{msg}`"
        );
    }
}
