//! Robustness tests of the description-language front end: the lexer and
//! parser must never panic, whatever bytes arrive, and the value parsers
//! must reject garbage cleanly.
//!
//! Fuzz inputs come from a deterministic [`SplitMix64`] generator instead
//! of `proptest` so the workspace resolves offline; equal seeds replay
//! identical corpora.

use dram_units::rng::SplitMix64;

/// A random string over a charset closure, length in `[0, max_len]`.
fn rand_string(r: &mut SplitMix64, max_len: usize, charset: impl Fn(&mut SplitMix64) -> char) -> String {
    let len = r.range_usize(max_len + 1);
    (0..len).map(|_| charset(r)).collect()
}

/// Any printable-ish character, including multi-byte ones, newlines and
/// the DSL's own separators — the rough analogue of proptest's `\PC`.
fn any_char(r: &mut SplitMix64) -> char {
    match r.range_u32(8) {
        0 => '\n',
        1 => *r.pick(&['=', ' ', '\t', '#', '.', '-', '_', '"']),
        2 => *r.pick(&['µ', 'Ω', '²', 'é', '漢', '🦀']),
        _ => {
            // Printable ASCII.
            (0x20 + r.range_u32(0x5F) as u8) as char
        }
    }
}

fn ascii_printable(r: &mut SplitMix64) -> char {
    (0x20 + r.range_u32(0x5F) as u8) as char
}

fn in_set(set: &[u8]) -> impl Fn(&mut SplitMix64) -> char + '_ {
    move |r| *r.pick(set) as char
}

/// Arbitrary text never panics the lexer or parser.
#[test]
fn parser_never_panics_on_arbitrary_text() {
    let mut r = SplitMix64::new(0xF001);
    for _ in 0..256 {
        let input = rand_string(&mut r, 400, any_char);
        let _ = dram_dsl::parse(&input);
    }
}

/// Arbitrary lines appended to a valid file never panic, and either parse
/// or produce an error naming a line.
#[test]
fn valid_prefix_with_garbage_suffix() {
    let mut r = SplitMix64::new(0xF002);
    for _ in 0..256 {
        let suffix = rand_string(&mut r, 80, ascii_printable);
        let mut text = include_str!("../descriptions/ddr3_1gb_x16_55nm.dram").to_string();
        text.push('\n');
        text.push_str(&suffix);
        match dram_dsl::parse(&text) {
            Ok(_) => {}
            Err(e) => {
                // Errors carry a usable location or are file-level.
                assert!(e.line() <= text.lines().count() + 1, "suffix={suffix:?}");
                assert!(!e.message().is_empty(), "suffix={suffix:?}");
            }
        }
    }
}

/// Value parsers reject non-numeric garbage without panicking.
#[test]
fn value_parsers_reject_garbage() {
    let mut r = SplitMix64::new(0xF003);
    for _ in 0..256 {
        let s = rand_string(&mut r, 16, in_set(b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ%/:_."));
        let _ = dram_dsl::value::number(&s);
        let _ = dram_dsl::value::length(&s);
        let _ = dram_dsl::value::capacitance(&s);
        let _ = dram_dsl::value::voltage(&s);
        let _ = dram_dsl::value::frequency(&s);
        let _ = dram_dsl::value::time(&s);
        let _ = dram_dsl::value::coordinate(&s);
        let _ = dram_dsl::value::device(&s);
        let _ = dram_dsl::value::mux_ratio(&s);
        let _ = dram_dsl::value::active_during(&s);
    }
}

/// Numeric literals with units round-trip through the length parser.
#[test]
fn length_parses_generated_literals() {
    let mut r = SplitMix64::new(0xF004);
    for _ in 0..256 {
        let v = r.range_f64(0.001, 10000.0);
        let nm = dram_dsl::value::length(&format!("{v}nm")).expect("nm parses");
        assert!((nm.nanometers() - v).abs() < 1e-6 * v.max(1.0), "v={v}");
        let um = dram_dsl::value::length(&format!("{v}um")).expect("um parses");
        assert!((um.micrometers() - v).abs() < 1e-6 * v.max(1.0), "v={v}");
    }
}

/// The lexer preserves key/value structure for generated identifiers.
#[test]
fn lexer_roundtrips_key_values() {
    let mut r = SplitMix64::new(0xF005);
    let alpha = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    let alnum = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
    let valchars = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789.";
    for _ in 0..256 {
        let mut key = String::new();
        key.push(*r.pick(alpha) as char);
        let extra = r.range_usize(11);
        for _ in 0..extra {
            key.push(*r.pick(alnum) as char);
        }
        let vlen = 1 + r.range_usize(10);
        let value: String = (0..vlen).map(|_| *r.pick(valchars) as char).collect();
        let line = format!("Head {key}={value}");
        let lines = dram_dsl::lexer::lex(&line).expect("lexes");
        assert_eq!(lines.len(), 1, "key={key} value={value}");
        assert_eq!(
            lines[0].value(&key),
            Some(value.as_str()),
            "key={key} value={value}"
        );
    }
}

/// Dropping any single required parameter from the shipped sample must
/// produce a "missing required parameters" error that names it — the
/// §III.B syntax-check completeness property.
#[test]
fn every_required_parameter_is_individually_enforced() {
    let sample = include_str!("../descriptions/ddr3_1gb_x16_55nm.dram");
    // Map of required-key suffix -> a space-prefixed key=value token to
    // strip (the space disambiguates e.g. `Vpp=` from `EffVpp=` and
    // `tRC=` from a hypothetical suffix match).
    let removable = [
        ("CellArray.BitsPerBL", " BitsPerBL="),
        ("CellArray.WLpitch", " WLpitch="),
        ("Technology.CBitline", " CBitline="),
        ("Technology.SANSense", " SANSense="),
        ("Electrical.Vpp", " Vpp="),
        ("IO.datarate", " datarate="),
        ("Control.rowadd", " rowadd="),
        ("Access.prefetch", " prefetch="),
        ("Timing.tRC", " tRC="),
        ("Timing.tFAW", " tFAW="),
    ];
    for (required_key, token) in removable {
        let mutated: String = sample
            .lines()
            .map(|line| {
                let padded = format!("{line} ");
                if let Some(pos) = padded.find(token) {
                    // Strip just this key=value pair from the line.
                    let rest = &padded[pos + 1..];
                    let end = rest.find(' ').map(|i| pos + 1 + i).unwrap_or(padded.len());
                    format!("{}{}", &padded[..pos], &padded[end..])
                        .trim_end()
                        .to_string()
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = dram_dsl::parse(&mutated).expect_err(&format!("removing {token} should fail"));
        let msg = err.to_string();
        assert!(
            msg.contains("missing required parameters") && msg.contains(required_key),
            "{token}: unexpected error `{msg}`"
        );
    }
}
