//! Seeded mutation fuzz of the description parser: no input, however
//! mangled, may panic it. Every preset's writer output is truncated,
//! bit-flipped and token-duplicated under a fixed-seed RNG
//! ([`SplitMix64`], the workspace's deterministic generator), and each
//! variant must come back from [`dram_dsl::parse`] as `Ok` or `Err` —
//! never an unwind. Deterministic by construction: a failure reproduces
//! by re-running the test, and the panic message carries the offending
//! input.

use dram_units::rng::SplitMix64;

const FUZZ_SEED: u64 = 0xD5A7_F00D;

/// Per-class iteration counts, per preset.
const TRUNCATIONS: usize = 50;
const BIT_FLIPS: usize = 50;
const DUPLICATIONS: usize = 30;

/// Every preset the stack ships, as description-language source.
fn preset_sources() -> Vec<(&'static str, String)> {
    let mut out = vec![(
        "ddr3_1g_x16_55nm",
        dram_dsl::write(&dram_core::reference::ddr3_1g_x16_55nm(), None),
    )];
    use dram_scaling::presets as p;
    for (name, desc) in [
        ("sdr_128m_170nm", p::sdr_128m_170nm()),
        ("ddr2_1g_75nm", p::ddr2_1g_75nm()),
        ("ddr2_1g_65nm", p::ddr2_1g_65nm()),
        ("ddr3_1g_65nm", p::ddr3_1g_65nm()),
        ("ddr3_1g_55nm", p::ddr3_1g_55nm()),
        ("ddr3_2g_55nm", p::ddr3_2g_55nm()),
        ("ddr5_16g_18nm", p::ddr5_16g_18nm()),
    ] {
        out.push((name, dram_dsl::write(&desc, None)));
    }
    out
}

/// Feeds one mangled input through both parser entry points and fails
/// the test (with the input attached) if either unwinds. `Err` results
/// are the expected outcome; `Ok` is fine too — a mutation may land in
/// a comment or produce a different-but-valid file.
fn must_not_panic(label: &str, case: usize, input: &str) {
    let outcome = std::panic::catch_unwind(|| {
        let _ = dram_dsl::parse(input);
        let _ = dram_dsl::parse_description(input);
    });
    assert!(
        outcome.is_ok(),
        "parser panicked on {label} case {case}; input:\n{input}"
    );
}

/// A per-preset RNG stream: decorrelated across presets so adding one
/// never shifts the cases another preset sees.
fn stream_for(name: &str) -> SplitMix64 {
    let mut salt: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        salt ^= u64::from(*b);
        salt = salt.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix64::new(FUZZ_SEED ^ salt)
}

#[test]
fn truncated_sources_error_instead_of_panicking() {
    for (name, source) in preset_sources() {
        assert!(source.is_ascii(), "{name}: writer output must stay ASCII");
        let mut rng = stream_for(name);
        for case in 0..TRUNCATIONS {
            // Cutting at any byte is safe: the source is ASCII.
            let cut = rng.range_usize(source.len());
            must_not_panic(name, case, &source[..cut]);
        }
        // The degenerate edges, explicitly.
        must_not_panic(name, usize::MAX, "");
        must_not_panic(name, usize::MAX - 1, &source[..source.len() / 2]);
    }
}

#[test]
fn bit_flipped_sources_error_instead_of_panicking() {
    for (name, source) in preset_sources() {
        let mut rng = stream_for(name);
        for case in 0..BIT_FLIPS {
            let mut bytes = source.as_bytes().to_vec();
            // Flip 1–4 bits; lossy re-decoding keeps the input valid
            // UTF-8 even when a flip leaves the ASCII plane.
            for _ in 0..=rng.range_usize(3) {
                let at = rng.range_usize(bytes.len());
                let bit = rng.range_u32(8);
                bytes[at] ^= 1 << bit;
            }
            let mangled = String::from_utf8_lossy(&bytes);
            must_not_panic(name, case, &mangled);
        }
    }
}

#[test]
fn duplicated_tokens_error_instead_of_panicking() {
    for (name, source) in preset_sources() {
        let mut rng = stream_for(name);
        let lines: Vec<&str> = source.lines().collect();
        for case in 0..DUPLICATIONS {
            let mut mutated: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
            if case % 2 == 0 {
                // Duplicate a whole line in place.
                let at = rng.range_usize(mutated.len());
                let line = mutated[at].clone();
                mutated.insert(at, line);
            } else {
                // Duplicate one whitespace-separated token within a line.
                let at = rng.range_usize(mutated.len());
                let tokens: Vec<&str> = mutated[at].split_whitespace().collect();
                if tokens.is_empty() {
                    continue;
                }
                let t = rng.range_usize(tokens.len());
                let mut rebuilt: Vec<&str> = Vec::with_capacity(tokens.len() + 1);
                for (i, tok) in tokens.iter().enumerate() {
                    rebuilt.push(tok);
                    if i == t {
                        rebuilt.push(tok);
                    }
                }
                mutated[at] = rebuilt.join(" ");
            }
            must_not_panic(name, case, &mutated.join("\n"));
        }
    }
}
