//! # dram-datasheet
//!
//! The datasheet substrate of the reproduction: the vendor IDD corpus the
//! paper verifies its model against (Fig. 8: 1 Gb DDR2, Fig. 9: 1 Gb
//! DDR3; paper refs \[22\], \[23\]), and a datasheet-based system power
//! calculator in the style of the Micron power calculator (ref \[20\]) —
//! the baseline methodology the model improves upon.
//!
//! ```
//! use dram_datasheet::corpus::{envelope, IddMeasure, DDR3_1GB};
//!
//! let env = envelope(&DDR3_1GB, 16, 1600, IddMeasure::Idd4r).expect("config exists");
//! assert!(env.max_ma > env.min_ma); // the vendor spread Fig. 9 shows
//! ```
#![warn(missing_docs)]

pub mod calculator;
pub mod corpus;

pub use calculator::{CalculatedPower, Calculator, Workload};
pub use corpus::{
    configurations, envelope, mean, DatasheetEntry, Envelope, IddMeasure, Standard, Vendor,
};
