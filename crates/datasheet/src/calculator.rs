//! Datasheet-based system power calculator — the state of the art the
//! paper improves upon (ref \[20\], the Micron System Power Calculator).
//!
//! Given a datasheet entry and a workload description, this computes
//! average device power the way vendor spreadsheets do: scale the IDD
//! deltas by command rates and duty cycles. It needs no internal device
//! knowledge — which is exactly its limitation ("datasheets don't allow
//! extrapolation to future DRAM technologies and don't show how other
//! changes ... change DRAM energy consumption", §I).

use dram_units::{Amperes, Seconds, Volts, Watts};

use crate::corpus::DatasheetEntry;

/// Workload description for the calculator, mirroring the knobs of
/// vendor power spreadsheets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Fraction of time at least one bank is open (active standby).
    pub bank_active: f64,
    /// Average row-cycle time actually achieved (≥ datasheet tRC).
    pub trc: Seconds,
    /// Fraction of cycles issuing read bursts (read duty cycle).
    pub read_duty: f64,
    /// Fraction of cycles issuing write bursts.
    pub write_duty: f64,
}

impl Workload {
    /// An idle, precharged device.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            bank_active: 0.0,
            trc: Seconds::new(f64::INFINITY),
            read_duty: 0.0,
            write_duty: 0.0,
        }
    }

    /// A fully-utilized random-access workload: rows cycling at `trc`,
    /// the data bus split between reads and writes.
    #[must_use]
    pub fn saturated(trc: Seconds, read_share: f64) -> Self {
        Self {
            bank_active: 1.0,
            trc,
            read_duty: read_share,
            write_duty: 1.0 - read_share,
        }
    }
}

/// Datasheet-based average power estimate, itemized the way vendor
/// calculators report it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalculatedPower {
    /// Background (standby) power.
    pub background: Watts,
    /// Activate/precharge power.
    pub activate: Watts,
    /// Read burst power.
    pub read: Watts,
    /// Write burst power.
    pub write: Watts,
}

impl CalculatedPower {
    /// Total average power.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.background + self.activate + self.read + self.write
    }
}

/// Datasheet power calculator for one part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calculator {
    entry: DatasheetEntry,
    /// Datasheet tRC the IDD0 spec loop assumed.
    spec_trc: Seconds,
}

impl Calculator {
    /// Creates a calculator for a datasheet entry; `spec_trc` is the row
    /// cycle time of the IDD0 specification loop.
    #[must_use]
    pub fn new(entry: DatasheetEntry, spec_trc: Seconds) -> Self {
        Self { entry, spec_trc }
    }

    /// The part this calculator describes.
    #[must_use]
    pub fn entry(&self) -> &DatasheetEntry {
        &self.entry
    }

    fn vdd(&self) -> Volts {
        Volts::new(self.entry.standard.vdd())
    }

    /// Average power under a workload, following the vendor-spreadsheet
    /// recipe: `P_act = (IDD0 − IDD2N)·Vdd·(tRC_spec/tRC_actual)`,
    /// `P_rd = (IDD4R − IDD2N)·Vdd·read_duty`, etc.
    #[must_use]
    pub fn power(&self, w: &Workload) -> CalculatedPower {
        let vdd = self.vdd();
        let ma = |x: f64| Amperes::from_ma(x);
        let e = &self.entry;

        let background = ma(e.idd2n_ma) * vdd;
        let act_scale = if w.trc.seconds().is_finite() && w.trc.seconds() > 0.0 {
            (self.spec_trc.seconds() / w.trc.seconds()).min(1.0)
        } else {
            0.0
        };
        let activate = ma((e.idd0_ma - e.idd2n_ma).max(0.0)) * vdd * act_scale;
        let read = ma((e.idd4r_ma - e.idd2n_ma).max(0.0)) * vdd * w.read_duty;
        let write = ma((e.idd4w_ma - e.idd2n_ma).max(0.0)) * vdd * w.write_duty;
        CalculatedPower {
            background,
            activate,
            read,
            write,
        }
    }

    /// Energy per transferred bit at full bus utilization, the datasheet
    /// counterpart of the model's random-access energy-per-bit metric.
    #[must_use]
    pub fn energy_per_bit_saturated(&self, read_share: f64) -> dram_units::Joules {
        let w = Workload::saturated(self.spec_trc, read_share);
        let p = self.power(&w).total();
        let bandwidth = dram_units::BitsPerSecond::from_mbps(
            f64::from(self.entry.datarate_mbps) * f64::from(self.entry.io_width),
        );
        p / bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::DDR3_1GB;

    fn micron_x16() -> DatasheetEntry {
        *DDR3_1GB
            .iter()
            .find(|e| e.io_width == 16 && e.vendor == crate::corpus::Vendor::Micron)
            .unwrap()
    }

    #[test]
    fn idle_power_is_background_only() {
        let c = Calculator::new(micron_x16(), Seconds::from_ns(49.0));
        let p = c.power(&Workload::idle());
        assert_eq!(p.activate, Watts::ZERO);
        assert_eq!(p.read, Watts::ZERO);
        assert_eq!(p.write, Watts::ZERO);
        // 35 mA × 1.5 V
        assert!((p.total().milliwatts() - 52.5).abs() < 1e-9);
    }

    #[test]
    fn saturated_power_sums_contributions() {
        let c = Calculator::new(micron_x16(), Seconds::from_ns(49.0));
        let p = c.power(&Workload::saturated(Seconds::from_ns(49.0), 0.5));
        assert!(p.activate.milliwatts() > 0.0);
        assert!(p.read.milliwatts() > 0.0);
        assert!(p.write.milliwatts() > 0.0);
        // Roughly: (75-35) + (200-35)/2 + (185-35)/2 mA worth of deltas
        // plus 35 mA background, at 1.5 V ≈ 0.40 W.
        let total = p.total().watts();
        assert!((0.25..0.60).contains(&total), "total {total} W");
    }

    #[test]
    fn slower_row_cycling_reduces_activate_power() {
        let c = Calculator::new(micron_x16(), Seconds::from_ns(49.0));
        let fast = c.power(&Workload::saturated(Seconds::from_ns(49.0), 1.0));
        let slow = c.power(&Workload::saturated(Seconds::from_ns(98.0), 1.0));
        assert!((slow.activate.watts() - fast.activate.watts() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_per_bit_is_datasheet_scale() {
        let c = Calculator::new(micron_x16(), Seconds::from_ns(49.0));
        let epb = c.energy_per_bit_saturated(0.5).picojoules();
        // DDR3-1600 x16 at full utilization: ~10-20 pJ/bit from the
        // datasheet numbers.
        assert!((5.0..30.0).contains(&epb), "epb {epb} pJ/bit");
    }

    #[test]
    fn read_and_write_duty_scale_linearly() {
        let c = Calculator::new(micron_x16(), Seconds::from_ns(49.0));
        let half = c.power(&Workload {
            bank_active: 1.0,
            trc: Seconds::new(f64::INFINITY),
            read_duty: 0.5,
            write_duty: 0.0,
        });
        let full = c.power(&Workload {
            bank_active: 1.0,
            trc: Seconds::new(f64::INFINITY),
            read_duty: 1.0,
            write_duty: 0.0,
        });
        assert!((full.read.watts() - 2.0 * half.read.watts()).abs() < 1e-12);
        assert_eq!(half.activate, Watts::ZERO);
    }

    #[test]
    fn entry_accessor_returns_the_part() {
        let e = micron_x16();
        let c = Calculator::new(e, Seconds::from_ns(49.0));
        assert_eq!(c.entry().vendor, crate::corpus::Vendor::Micron);
        assert_eq!(c.entry().io_width, 16);
    }

    #[test]
    fn trc_faster_than_spec_is_clamped() {
        let c = Calculator::new(micron_x16(), Seconds::from_ns(49.0));
        let spec = c.power(&Workload::saturated(Seconds::from_ns(49.0), 1.0));
        let too_fast = c.power(&Workload::saturated(Seconds::from_ns(10.0), 1.0));
        assert_eq!(spec.activate, too_fast.activate);
    }
}
