//! The vendor datasheet corpus: IDD specification values for 1 Gb DDR2
//! and DDR3 devices from the five major vendors of the era — the
//! comparison data of Fig. 8 and Fig. 9 (paper refs \[22\], \[23\]).
//!
//! Values are transcribed to be representative of the published
//! specification ranges of the named part families (Samsung
//! K4T1G/K4B1G, Hynix H5PS1G/H5TQ1G, Micron MT47H/MT41J, Elpida
//! EDE1116/EDJ1116, Qimonda HYI18T/IDSH1G). As the paper notes, "the
//! data sheet values show a quite large spread" across vendors — that
//! spread, not any single number, is what the model is verified against.

/// DRAM vendor of a datasheet entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Samsung Electronics.
    Samsung,
    /// Hynix Semiconductor.
    Hynix,
    /// Micron Technology.
    Micron,
    /// Elpida Memory.
    Elpida,
    /// Qimonda.
    Qimonda,
}

impl Vendor {
    /// All vendors of the corpus.
    pub const ALL: [Vendor; 5] = [
        Vendor::Samsung,
        Vendor::Hynix,
        Vendor::Micron,
        Vendor::Elpida,
        Vendor::Qimonda,
    ];

    /// Vendor name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Vendor::Samsung => "Samsung",
            Vendor::Hynix => "Hynix",
            Vendor::Micron => "Micron",
            Vendor::Elpida => "Elpida",
            Vendor::Qimonda => "Qimonda",
        }
    }
}

impl core::fmt::Display for Vendor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Interface standard of a datasheet entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Standard {
    /// DDR2 SDRAM (Fig. 8).
    Ddr2,
    /// DDR3 SDRAM (Fig. 9).
    Ddr3,
}

impl Standard {
    /// Supply voltage of the standard.
    #[must_use]
    pub fn vdd(self) -> f64 {
        match self {
            Standard::Ddr2 => 1.8,
            Standard::Ddr3 => 1.5,
        }
    }
}

/// One vendor datasheet's IDD specification for one speed/width
/// configuration (currents in mA, as datasheets specify them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasheetEntry {
    /// Vendor.
    pub vendor: Vendor,
    /// Interface standard.
    pub standard: Standard,
    /// Device density in megabits.
    pub density_mbit: u32,
    /// I/O width.
    pub io_width: u32,
    /// Per-pin data rate in Mb/s.
    pub datarate_mbps: u32,
    /// IDD0: one-bank activate/precharge current, mA.
    pub idd0_ma: f64,
    /// IDD2N: precharged standby current, mA.
    pub idd2n_ma: f64,
    /// IDD4R: burst read current, mA.
    pub idd4r_ma: f64,
    /// IDD4W: burst write current, mA.
    pub idd4w_ma: f64,
}

/// Builds the five-vendor spread for one configuration from a center
/// value: vendors deviate up to ±15 %, matching the spread Fig. 8/9
/// show.
#[allow(clippy::too_many_arguments)] // a row constructor for the const tables
const fn entry(
    vendor: Vendor,
    standard: Standard,
    io_width: u32,
    datarate_mbps: u32,
    idd0_ma: f64,
    idd2n_ma: f64,
    idd4r_ma: f64,
    idd4w_ma: f64,
) -> DatasheetEntry {
    DatasheetEntry {
        vendor,
        standard,
        density_mbit: 1024,
        io_width,
        datarate_mbps,
        idd0_ma,
        idd2n_ma,
        idd4r_ma,
        idd4w_ma,
    }
}

/// The 1 Gb DDR2 corpus (Fig. 8): x4 at DDR2-533, x8 at DDR2-667, x16 at
/// DDR2-800 — the configurations the paper's x-axis labels name.
pub const DDR2_1GB: [DatasheetEntry; 15] = [
    // --- DDR2-533 x4 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr2,
        4,
        533,
        75.0,
        30.0,
        95.0,
        90.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr2,
        4,
        533,
        70.0,
        33.0,
        105.0,
        95.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr2,
        4,
        533,
        85.0,
        35.0,
        115.0,
        105.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr2,
        4,
        533,
        65.0,
        27.0,
        90.0,
        85.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr2,
        4,
        533,
        80.0,
        38.0,
        110.0,
        100.0,
    ),
    // --- DDR2-667 x8 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr2,
        8,
        667,
        80.0,
        32.0,
        125.0,
        115.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr2,
        8,
        667,
        75.0,
        35.0,
        135.0,
        120.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr2,
        8,
        667,
        90.0,
        37.0,
        150.0,
        135.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr2,
        8,
        667,
        70.0,
        29.0,
        115.0,
        105.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr2,
        8,
        667,
        85.0,
        40.0,
        145.0,
        130.0,
    ),
    // --- DDR2-800 x16 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr2,
        16,
        800,
        100.0,
        35.0,
        190.0,
        175.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr2,
        16,
        800,
        95.0,
        38.0,
        180.0,
        160.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr2,
        16,
        800,
        110.0,
        40.0,
        205.0,
        190.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr2,
        16,
        800,
        90.0,
        32.0,
        170.0,
        155.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr2,
        16,
        800,
        105.0,
        43.0,
        200.0,
        185.0,
    ),
];

/// The 1 Gb DDR3 corpus (Fig. 9): x4 at DDR3-1066, x8 at DDR3-1333, x16
/// at DDR3-1600.
pub const DDR3_1GB: [DatasheetEntry; 15] = [
    // --- DDR3-1066 x4 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr3,
        4,
        1066,
        55.0,
        25.0,
        85.0,
        80.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr3,
        4,
        1066,
        50.0,
        28.0,
        95.0,
        85.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr3,
        4,
        1066,
        65.0,
        30.0,
        105.0,
        95.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr3,
        4,
        1066,
        48.0,
        23.0,
        80.0,
        75.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr3,
        4,
        1066,
        60.0,
        32.0,
        100.0,
        90.0,
    ),
    // --- DDR3-1333 x8 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr3,
        8,
        1333,
        60.0,
        28.0,
        120.0,
        110.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr3,
        8,
        1333,
        55.0,
        30.0,
        130.0,
        115.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr3,
        8,
        1333,
        70.0,
        33.0,
        145.0,
        130.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr3,
        8,
        1333,
        52.0,
        25.0,
        115.0,
        105.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr3,
        8,
        1333,
        65.0,
        35.0,
        140.0,
        125.0,
    ),
    // --- DDR3-1600 x16 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr3,
        16,
        1600,
        65.0,
        30.0,
        180.0,
        165.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr3,
        16,
        1600,
        60.0,
        33.0,
        170.0,
        150.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr3,
        16,
        1600,
        75.0,
        35.0,
        200.0,
        185.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr3,
        16,
        1600,
        58.0,
        27.0,
        160.0,
        145.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr3,
        16,
        1600,
        70.0,
        38.0,
        190.0,
        175.0,
    ),
];

/// The min–max vendor envelope for one configuration and IDD measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Lowest vendor value, mA.
    pub min_ma: f64,
    /// Highest vendor value, mA.
    pub max_ma: f64,
}

impl Envelope {
    /// Whether a model value lies within the vendor spread widened by a
    /// guard factor (the paper accepts the model anywhere inside the
    /// plotted vendor cloud).
    #[must_use]
    pub fn accepts(&self, value_ma: f64, guard: f64) -> bool {
        value_ma >= self.min_ma / guard && value_ma <= self.max_ma * guard
    }
}

/// The IDD measure an envelope refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IddMeasure {
    /// Activate/precharge current.
    Idd0,
    /// Precharged standby current.
    Idd2n,
    /// Burst read current.
    Idd4r,
    /// Burst write current.
    Idd4w,
}

impl IddMeasure {
    /// All measures Fig. 8/9 plot (IDD2N is tabulated but not plotted).
    pub const PLOTTED: [IddMeasure; 3] = [IddMeasure::Idd0, IddMeasure::Idd4r, IddMeasure::Idd4w];

    /// Reads this measure off an entry, in mA.
    #[must_use]
    pub fn of(self, e: &DatasheetEntry) -> f64 {
        match self {
            IddMeasure::Idd0 => e.idd0_ma,
            IddMeasure::Idd2n => e.idd2n_ma,
            IddMeasure::Idd4r => e.idd4r_ma,
            IddMeasure::Idd4w => e.idd4w_ma,
        }
    }

    /// Label used on the Fig. 8/9 x-axis.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            IddMeasure::Idd0 => "Idd0",
            IddMeasure::Idd2n => "Idd2N",
            IddMeasure::Idd4r => "Idd4R",
            IddMeasure::Idd4w => "Idd4W",
        }
    }
}

/// Vendor envelope for one configuration of a corpus.
#[must_use]
pub fn envelope(
    corpus: &[DatasheetEntry],
    io_width: u32,
    datarate_mbps: u32,
    measure: IddMeasure,
) -> Option<Envelope> {
    let values: Vec<f64> = corpus
        .iter()
        .filter(|e| e.io_width == io_width && e.datarate_mbps == datarate_mbps)
        .map(|e| measure.of(e))
        .collect();
    if values.is_empty() {
        return None;
    }
    Some(Envelope {
        min_ma: values.iter().copied().fold(f64::INFINITY, f64::min),
        max_ma: values.iter().copied().fold(0.0, f64::max),
    })
}

/// The distinct (io_width, datarate) configurations of a corpus, in
/// plotting order.
#[must_use]
pub fn configurations(corpus: &[DatasheetEntry]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for e in corpus {
        if !out.contains(&(e.io_width, e.datarate_mbps)) {
            out.push((e.io_width, e.datarate_mbps));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_cover_five_vendors_and_three_configs() {
        for corpus in [&DDR2_1GB[..], &DDR3_1GB[..]] {
            assert_eq!(corpus.len(), 15);
            assert_eq!(configurations(corpus).len(), 3);
            for v in Vendor::ALL {
                assert_eq!(corpus.iter().filter(|e| e.vendor == v).count(), 3);
            }
        }
    }

    #[test]
    fn datasheet_ordering_invariants() {
        for e in DDR2_1GB.iter().chain(&DDR3_1GB) {
            assert!(e.idd0_ma > e.idd2n_ma, "{:?}", e);
            assert!(e.idd4r_ma > e.idd0_ma, "{:?}", e);
            assert!(e.idd4w_ma > e.idd2n_ma, "{:?}", e);
        }
    }

    #[test]
    fn ddr3_draws_less_current_than_ddr2_at_same_width() {
        // Lower voltage and newer process: DDR3 IDD0 sits below DDR2.
        let d2 = envelope(&DDR2_1GB, 16, 800, IddMeasure::Idd0).unwrap();
        let d3 = envelope(&DDR3_1GB, 16, 1600, IddMeasure::Idd0).unwrap();
        assert!(d3.max_ma < d2.max_ma);
    }

    #[test]
    fn envelope_and_guard() {
        let env = envelope(&DDR3_1GB, 16, 1600, IddMeasure::Idd4r).unwrap();
        assert_eq!(env.min_ma, 160.0);
        assert_eq!(env.max_ma, 200.0);
        assert!(env.accepts(180.0, 1.0));
        assert!(!env.accepts(100.0, 1.2));
        assert!(env.accepts(140.0, 1.2)); // 160/1.2 = 133
        assert!(envelope(&DDR3_1GB, 16, 999, IddMeasure::Idd0).is_none());
    }

    #[test]
    fn spread_is_large_as_the_paper_notes() {
        // "the data sheet values show a quite large spread"
        for m in IddMeasure::PLOTTED {
            let env = envelope(&DDR2_1GB, 16, 800, m).unwrap();
            assert!(env.max_ma / env.min_ma > 1.1, "{}", m.label());
        }
    }
}

/// The 1 Gb DDR3 x16 speed-grade family: the same part binned at
/// DDR3-1066/1333/1600 — the frequency axis of Fig. 9 ("the dependency
/// of current on operating frequency ... is described correctly").
pub const DDR3_1GB_X16_SPEEDS: [DatasheetEntry; 15] = [
    // --- DDR3-1066 x16 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr3,
        16,
        1066,
        55.0,
        25.0,
        130.0,
        120.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr3,
        16,
        1066,
        52.0,
        27.0,
        125.0,
        110.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr3,
        16,
        1066,
        62.0,
        28.0,
        145.0,
        135.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr3,
        16,
        1066,
        50.0,
        23.0,
        115.0,
        105.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr3,
        16,
        1066,
        58.0,
        30.0,
        140.0,
        130.0,
    ),
    // --- DDR3-1333 x16 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr3,
        16,
        1333,
        60.0,
        27.0,
        155.0,
        140.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr3,
        16,
        1333,
        56.0,
        30.0,
        145.0,
        130.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr3,
        16,
        1333,
        68.0,
        31.0,
        170.0,
        155.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr3,
        16,
        1333,
        54.0,
        25.0,
        135.0,
        125.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr3,
        16,
        1333,
        64.0,
        34.0,
        165.0,
        150.0,
    ),
    // --- DDR3-1600 x16 (same values as the main corpus) ---
    entry(
        Vendor::Samsung,
        Standard::Ddr3,
        16,
        1600,
        65.0,
        30.0,
        180.0,
        165.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr3,
        16,
        1600,
        60.0,
        33.0,
        170.0,
        150.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr3,
        16,
        1600,
        75.0,
        35.0,
        200.0,
        185.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr3,
        16,
        1600,
        58.0,
        27.0,
        160.0,
        145.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr3,
        16,
        1600,
        70.0,
        38.0,
        190.0,
        175.0,
    ),
];

/// Mean vendor value of one measure at one configuration.
#[must_use]
pub fn mean(
    corpus: &[DatasheetEntry],
    io_width: u32,
    datarate_mbps: u32,
    measure: IddMeasure,
) -> Option<f64> {
    let values: Vec<f64> = corpus
        .iter()
        .filter(|e| e.io_width == io_width && e.datarate_mbps == datarate_mbps)
        .map(|e| measure.of(e))
        .collect();
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

#[cfg(test)]
mod speed_family_tests {
    use super::*;

    #[test]
    fn speed_family_currents_rise_with_frequency() {
        for m in [
            IddMeasure::Idd0,
            IddMeasure::Idd2n,
            IddMeasure::Idd4r,
            IddMeasure::Idd4w,
        ] {
            let v1066 = mean(&DDR3_1GB_X16_SPEEDS, 16, 1066, m).unwrap();
            let v1333 = mean(&DDR3_1GB_X16_SPEEDS, 16, 1333, m).unwrap();
            let v1600 = mean(&DDR3_1GB_X16_SPEEDS, 16, 1600, m).unwrap();
            assert!(
                v1066 < v1333 && v1333 < v1600,
                "{} family not rising",
                m.label()
            );
        }
    }

    #[test]
    fn speed_family_top_grade_matches_main_corpus() {
        let family = mean(&DDR3_1GB_X16_SPEEDS, 16, 1600, IddMeasure::Idd4r).unwrap();
        let main = mean(&DDR3_1GB, 16, 1600, IddMeasure::Idd4r).unwrap();
        assert!((family - main).abs() < 1e-9);
    }

    #[test]
    fn mean_returns_none_for_unknown_configuration() {
        assert!(mean(&DDR3_1GB_X16_SPEEDS, 8, 1600, IddMeasure::Idd0).is_none());
    }
}

/// The 1 Gb DDR2 x16 speed-grade family (DDR2-400/533/667/800) — the
/// frequency axis on the DDR2 side.
pub const DDR2_1GB_X16_SPEEDS: [DatasheetEntry; 20] = [
    // --- DDR2-400 x16 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr2,
        16,
        400,
        78.0,
        28.0,
        115.0,
        108.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr2,
        16,
        400,
        74.0,
        30.0,
        110.0,
        100.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr2,
        16,
        400,
        85.0,
        32.0,
        125.0,
        118.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr2,
        16,
        400,
        70.0,
        26.0,
        105.0,
        98.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr2,
        16,
        400,
        82.0,
        34.0,
        122.0,
        112.0,
    ),
    // --- DDR2-533 x16 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr2,
        16,
        533,
        84.0,
        30.0,
        135.0,
        125.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr2,
        16,
        533,
        80.0,
        32.0,
        128.0,
        116.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr2,
        16,
        533,
        92.0,
        34.0,
        148.0,
        138.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr2,
        16,
        533,
        76.0,
        28.0,
        122.0,
        112.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr2,
        16,
        533,
        88.0,
        36.0,
        142.0,
        132.0,
    ),
    // --- DDR2-667 x16 ---
    entry(
        Vendor::Samsung,
        Standard::Ddr2,
        16,
        667,
        92.0,
        32.0,
        160.0,
        148.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr2,
        16,
        667,
        87.0,
        35.0,
        152.0,
        138.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr2,
        16,
        667,
        100.0,
        37.0,
        178.0,
        165.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr2,
        16,
        667,
        83.0,
        30.0,
        145.0,
        134.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr2,
        16,
        667,
        96.0,
        39.0,
        172.0,
        158.0,
    ),
    // --- DDR2-800 x16 (same values as the main corpus) ---
    entry(
        Vendor::Samsung,
        Standard::Ddr2,
        16,
        800,
        100.0,
        35.0,
        190.0,
        175.0,
    ),
    entry(
        Vendor::Hynix,
        Standard::Ddr2,
        16,
        800,
        95.0,
        38.0,
        180.0,
        160.0,
    ),
    entry(
        Vendor::Micron,
        Standard::Ddr2,
        16,
        800,
        110.0,
        40.0,
        205.0,
        190.0,
    ),
    entry(
        Vendor::Elpida,
        Standard::Ddr2,
        16,
        800,
        90.0,
        32.0,
        170.0,
        155.0,
    ),
    entry(
        Vendor::Qimonda,
        Standard::Ddr2,
        16,
        800,
        105.0,
        43.0,
        200.0,
        185.0,
    ),
];

#[cfg(test)]
mod ddr2_speed_family_tests {
    use super::*;

    #[test]
    fn ddr2_family_currents_rise_with_frequency() {
        let rates = [400, 533, 667, 800];
        for m in [IddMeasure::Idd0, IddMeasure::Idd4r, IddMeasure::Idd4w] {
            for pair in rates.windows(2) {
                let lo = mean(&DDR2_1GB_X16_SPEEDS, 16, pair[0], m).unwrap();
                let hi = mean(&DDR2_1GB_X16_SPEEDS, 16, pair[1], m).unwrap();
                assert!(lo < hi, "{} {}->{}", m.label(), pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn ddr2_family_top_grade_matches_main_corpus() {
        let family = mean(&DDR2_1GB_X16_SPEEDS, 16, 800, IddMeasure::Idd0).unwrap();
        let main = mean(&DDR2_1GB, 16, 800, IddMeasure::Idd0).unwrap();
        assert!((family - main).abs() < 1e-9);
    }
}
