//! Developer tool: prints the model's DDR2/DDR3 currents next to the
//! vendor envelopes used by Fig. 8/9 (calibration aid).
//!
//! Run with: `cargo run -p dram-scaling --example fig89_check`

use dram_core::Dram;
use dram_scaling::presets::{build, with_datarate, PresetSpec};
use dram_scaling::{Interface, TechNode};
use dram_units::BitsPerSecond;

fn report(label: &str, feature: f64, iface: Interface, io: u32, mbps: f64) {
    let desc = build(&PresetSpec {
        feature_nm: feature,
        interface: iface,
        density_mbit: 1024,
        io_width: io,
    });
    let desc = with_datarate(desc, BitsPerSecond::from_mbps(mbps));
    let dram = Dram::new(desc).unwrap();
    let idd = dram.idd();
    println!(
        "{label:28} IDD0 {:6.1}  IDD2N {:6.1}  IDD4R {:6.1}  IDD4W {:6.1}",
        idd.idd0.milliamperes(),
        idd.idd2n.milliamperes(),
        idd.idd4r.milliamperes(),
        idd.idd4w.milliamperes()
    );
}

fn main() {
    let _ = TechNode::by_feature(75.0);
    println!("--- DDR2 1Gb (fig 8): vendor envelopes IDD0/IDD4R/IDD4W:");
    println!("   533 x4: 65-85 / 90-115 / 85-105 ; 667 x8: 70-90 / 115-150 / 105-135 ; 800 x16: 90-110 / 170-205 / 155-190");
    for f in [75.0, 65.0] {
        report(&format!("DDR2-533 x4 {f}nm"), f, Interface::Ddr2, 4, 533.0);
        report(&format!("DDR2-667 x8 {f}nm"), f, Interface::Ddr2, 8, 667.0);
        report(
            &format!("DDR2-800 x16 {f}nm"),
            f,
            Interface::Ddr2,
            16,
            800.0,
        );
    }
    println!("--- DDR3 1Gb (fig 9): 1066 x4: 48-65 / 80-105 / 75-95 ; 1333 x8: 52-70 / 115-145 / 105-130 ; 1600 x16: 58-75 / 160-200 / 145-185");
    for f in [65.0, 55.0] {
        report(
            &format!("DDR3-1066 x4 {f}nm"),
            f,
            Interface::Ddr3,
            4,
            1066.0,
        );
        report(
            &format!("DDR3-1333 x8 {f}nm"),
            f,
            Interface::Ddr3,
            8,
            1333.0,
        );
        report(
            &format!("DDR3-1600 x16 {f}nm"),
            f,
            Interface::Ddr3,
            16,
            1600.0,
        );
    }
}
