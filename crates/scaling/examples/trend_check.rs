//! Developer tool: prints the Fig. 13 trend series (die area and energy
//! per bit per roadmap node) plus the per-generation reduction factors.
//!
//! Run with: `cargo run -p dram-scaling --example trend_check`

fn main() {
    println!(
        "{:>6} {:>5} {:>8} {:>9} {:>10} {:>10}",
        "nm", "year", "density", "die mm2", "pJ/b strm", "pJ/b rand"
    );
    for t in dram_scaling::trends::energy_trends() {
        println!(
            "{:>6} {:>5} {:>7}M {:>9.1} {:>10.2} {:>10.2}",
            t.node.feature_nm,
            t.node.year,
            t.node.density_mbit,
            t.die_mm2,
            t.epb_stream_pj,
            t.epb_random_pj
        );
    }
    let e = dram_scaling::trends::energy_trends();
    println!(
        "hist (170->44) x{:.2}/gen",
        dram_scaling::trends::energy_reduction_per_generation(&e, 170.0, 44.0)
    );
    println!(
        "fore (44->16)  x{:.2}/gen",
        dram_scaling::trends::energy_reduction_per_generation(&e, 44.0, 16.0)
    );
}
