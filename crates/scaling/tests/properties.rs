//! Randomized tests of the roadmap machinery: every reachable preset
//! configuration must build a valid model with physical outputs, and the
//! scaling curves must behave like shrink curves.
//!
//! Driven by deterministic [`SplitMix64`] loops instead of `proptest` so
//! the workspace resolves offline. Node × I/O coverage is exhaustive
//! where the space is small enough to enumerate outright.

use dram_core::Dram;
use dram_scaling::curves::ScalingParam;
use dram_scaling::presets::{build, with_datarate, PresetSpec};
use dram_scaling::{Interface, TechNode, ROADMAP};
use dram_units::rng::SplitMix64;
use dram_units::BitsPerSecond;

/// Every node × I/O width builds and produces ordered currents.
/// (Exhaustive — the space is small, no sampling needed.)
#[test]
fn all_node_io_combinations_build() {
    for node in ROADMAP.iter() {
        for io in [4u32, 8, 16] {
            let spec = PresetSpec {
                io_width: io,
                ..PresetSpec::for_node(node)
            };
            let dram = Dram::new(build(&spec)).expect("preset builds");
            let idd = dram.idd();
            let ctx = format!("node={}nm io={io}", node.feature_nm);
            assert!(idd.idd0 > idd.idd2n, "{ctx}");
            assert!(idd.idd4r > idd.idd2n, "{ctx}");
            // IDD7 exceeds IDD4R only once activates dominate (DDR2 on,
            // where prefetch makes seamless reads sparse in command
            // slots); it always exceeds the row-loop and standby
            // currents.
            assert!(idd.idd7 > idd.idd0, "{ctx}");
            assert!(idd.idd7 > idd.idd2n, "{ctx}");
            assert!(idd.idd2p < idd.idd2n, "{ctx}");
            // Physical die.
            let die = dram.area().die.square_millimeters();
            assert!((10.0..120.0).contains(&die), "{ctx}: die {die} mm²");
        }
    }
}

/// Derating the data rate within the generation never increases any
/// current.
#[test]
fn derating_never_increases_currents() {
    let mut r = SplitMix64::new(0x5C01);
    for node in ROADMAP.iter() {
        for _ in 0..3 {
            let derate = r.range_f64(0.5, 1.0);
            let full = Dram::new(build(&PresetSpec::for_node(node))).expect("builds");
            let mbps = node.interface.datarate().mbps() * derate;
            let slow = Dram::new(with_datarate(
                build(&PresetSpec::for_node(node)),
                BitsPerSecond::from_mbps(mbps),
            ))
            .expect("builds");
            let f = full.idd();
            let s = slow.idd();
            let ctx = format!("node={}nm derate={derate}", node.feature_nm);
            assert!(s.idd2n <= f.idd2n, "{ctx}");
            assert!(s.idd4r <= f.idd4r, "{ctx}");
            assert!(s.idd4w <= f.idd4w, "{ctx}");
            // The IDD7 loop is built in whole clock cycles; per-bank
            // revisit spacing is ceil-quantized, which at the 4-bank
            // generations can swing the activate rate by up to ~25% as
            // the clock moves across cycle boundaries. Only the
            // quantization-tolerant bound holds.
            assert!(s.idd7.amperes() <= f.idd7.amperes() * 1.30, "{ctx}");
        }
    }
}

/// Scaling factors interpolate monotonically inside one disruption-free
/// window for every parameter. (Exhaustive over parameters.)
#[test]
fn factors_monotone_between_36_and_25nm() {
    // 36 -> 31 crosses high-k for oxides; use 31 -> 25 (clean).
    let n31 = TechNode::by_feature(31.0).unwrap();
    let n25 = TechNode::by_feature(25.0).unwrap();
    for p in ScalingParam::ALL {
        assert!(p.factor(n25) <= p.factor(n31) + 1e-12, "{}", p.name());
    }
}

/// Interfaces assign consistent envelopes: higher generation never has a
/// higher Vdd or lower prefetch. (Exhaustive over adjacent pairs.)
#[test]
fn interface_envelopes_are_ordered() {
    for w in Interface::ALL.windows(2) {
        let (older, newer) = (w[0], w[1]);
        assert!(newer.vdd() < older.vdd());
        assert!(newer.prefetch() >= older.prefetch());
        assert!(newer.datarate().bits_per_second() > older.datarate().bits_per_second());
    }
}
