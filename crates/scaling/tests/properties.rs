//! Property tests of the roadmap machinery: every reachable preset
//! configuration must build a valid model with physical outputs, and the
//! scaling curves must behave like shrink curves.

use dram_core::Dram;
use dram_scaling::curves::ScalingParam;
use dram_scaling::presets::{build, with_datarate, PresetSpec};
use dram_scaling::{Interface, TechNode, ROADMAP};
use dram_units::BitsPerSecond;
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = &'static TechNode> {
    prop::sample::select(ROADMAP.iter().collect::<Vec<_>>())
}

fn any_io() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![4u32, 8, 16])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every node × I/O width builds and produces ordered currents.
    #[test]
    fn all_node_io_combinations_build(node in any_node(), io in any_io()) {
        let spec = PresetSpec { io_width: io, ..PresetSpec::for_node(node) };
        let dram = Dram::new(build(&spec)).expect("preset builds");
        let idd = dram.idd();
        prop_assert!(idd.idd0 > idd.idd2n);
        prop_assert!(idd.idd4r > idd.idd2n);
        // IDD7 exceeds IDD4R only once activates dominate (DDR2 on,
        // where prefetch makes seamless reads sparse in command slots);
        // it always exceeds the row-loop and standby currents.
        prop_assert!(idd.idd7 > idd.idd0);
        prop_assert!(idd.idd7 > idd.idd2n);
        prop_assert!(idd.idd2p < idd.idd2n);
        // Physical die.
        let die = dram.area().die.square_millimeters();
        prop_assert!((10.0..120.0).contains(&die), "die {die} mm²");
    }

    /// Derating the data rate within the generation never increases any
    /// current.
    #[test]
    fn derating_never_increases_currents(node in any_node(), derate in 0.5f64..1.0) {
        let full = Dram::new(build(&PresetSpec::for_node(node))).expect("builds");
        let mbps = node.interface.datarate().mbps() * derate;
        let slow = Dram::new(with_datarate(
            build(&PresetSpec::for_node(node)),
            BitsPerSecond::from_mbps(mbps),
        ))
        .expect("builds");
        let f = full.idd();
        let s = slow.idd();
        prop_assert!(s.idd2n <= f.idd2n);
        prop_assert!(s.idd4r <= f.idd4r);
        prop_assert!(s.idd4w <= f.idd4w);
        // The IDD7 loop is built in whole clock cycles; per-bank revisit
        // spacing is ceil-quantized, which at the 4-bank generations can
        // swing the activate rate by up to ~25% as the clock moves across
        // cycle boundaries. Only the quantization-tolerant bound holds.
        prop_assert!(s.idd7.amperes() <= f.idd7.amperes() * 1.30);
    }

    /// Scaling factors interpolate monotonically inside one disruption-
    /// free window for every parameter.
    #[test]
    fn factors_monotone_between_36_and_25nm(p in prop::sample::select(ScalingParam::ALL.to_vec())) {
        // 36 -> 31 crosses high-k for oxides; use 31 -> 25 (clean).
        let n31 = TechNode::by_feature(31.0).unwrap();
        let n25 = TechNode::by_feature(25.0).unwrap();
        prop_assert!(p.factor(n25) <= p.factor(n31) + 1e-12, "{}", p.name());
    }

    /// Interfaces assign consistent envelopes: higher generation never
    /// has a higher Vdd or lower prefetch.
    #[test]
    fn interface_envelopes_are_ordered(pair in prop::sample::select(
        Interface::ALL.windows(2).map(|w| (w[0], w[1])).collect::<Vec<_>>()))
    {
        let (older, newer) = pair;
        prop_assert!(newer.vdd() < older.vdd());
        prop_assert!(newer.prefetch() >= older.prefetch());
        prop_assert!(newer.datarate().bits_per_second() > older.datarate().bits_per_second());
    }
}
