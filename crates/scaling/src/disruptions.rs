//! The disruptive technology changes of Table II.
//!
//! "Nearly every transition of technology generations has had one major
//! change" (§III.C). Each entry records the transition, the change, its
//! background, and how the model realizes it (either as a discrete
//! multiplier in [`crate::curves`] or as a structural change in
//! [`crate::presets`]).

/// How a disruption is realized in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelEffect {
    /// Structural change applied when building generation presets (e.g.
    /// cell architecture, cells per bitline).
    Structural,
    /// Discrete multiplier applied in the scaling curves.
    CurveStep,
    /// Captured by the smooth scaling trend; no special handling.
    Trend,
}

/// One disruptive transition (one row of Table II).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disruption {
    /// Feature size before the transition, in nm.
    pub from_nm: f64,
    /// Feature size after the transition, in nm.
    pub to_nm: f64,
    /// The disruptive change.
    pub change: &'static str,
    /// The paper's stated background.
    pub background: &'static str,
    /// How this crate realizes the change.
    pub effect: ModelEffect,
}

/// Table II, in transition order. The first row of the paper's table
/// (stitched → segmented wordline, spread over 250–110 nm) predates the
/// modeled roadmap and is recorded at its latest typical node.
pub const TABLE_II: [Disruption; 8] = [
    Disruption {
        from_nm: 140.0,
        to_nm: 110.0,
        change: "stitched wordline to segmented wordline",
        background: "minimum feature size of aluminum wiring no longer feasible",
        effect: ModelEffect::Trend,
    },
    Disruption {
        from_nm: 110.0,
        to_nm: 90.0,
        change: "increase in number of cells per bitline and/or local wordline",
        background: "leads to smaller die size; better technology control makes it possible",
        effect: ModelEffect::Structural,
    },
    Disruption {
        from_nm: 110.0,
        to_nm: 90.0,
        change: "introduction of dual gate oxide",
        background: "allows lower voltage operation and better logic transistor performance",
        effect: ModelEffect::CurveStep,
    },
    Disruption {
        from_nm: 90.0,
        to_nm: 75.0,
        change: "p+ gate doping of PMOS transistors",
        background: "buried channel pfet performance insufficient for high data rate DRAMs",
        effect: ModelEffect::Trend,
    },
    Disruption {
        from_nm: 90.0,
        to_nm: 75.0,
        change: "introduction of 3-dimensional access transistor",
        background: "planar device length too short for threshold voltage control",
        effect: ModelEffect::CurveStep,
    },
    Disruption {
        from_nm: 75.0,
        to_nm: 65.0,
        change: "cell architecture 8F² folded bitline to 6F² open bitline",
        background: "leads to smaller die size",
        effect: ModelEffect::Structural,
    },
    Disruption {
        from_nm: 55.0,
        to_nm: 44.0,
        change: "Cu metallization",
        background: "lower resistance and/or capacitance in wiring",
        effect: ModelEffect::CurveStep,
    },
    Disruption {
        from_nm: 40.0,
        to_nm: 36.0,
        change: "cell architecture 6F² to 4F² with vertical access transistor",
        background: "leads to smaller die size (ITRS forecast)",
        effect: ModelEffect::Structural,
    },
];

/// The additional high-k transition (36 nm → 31 nm) of Table II.
pub const HIGH_K: Disruption = Disruption {
    from_nm: 36.0,
    to_nm: 31.0,
    change: "high-k dielectric gate oxide",
    background: "better subthreshold behavior and reduced gate leakage",
    effect: ModelEffect::CurveStep,
};

/// All disruptions including the high-k transition.
#[must_use]
pub fn all() -> Vec<Disruption> {
    let mut v = TABLE_II.to_vec();
    v.push(HIGH_K);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_are_ordered_and_shrinking() {
        for d in all() {
            assert!(d.to_nm < d.from_nm, "{}", d.change);
        }
        // Table order is non-increasing in from_nm.
        for pair in TABLE_II.windows(2) {
            assert!(pair[1].from_nm <= pair[0].from_nm);
        }
    }

    #[test]
    fn structural_changes_cover_architecture_transitions() {
        let structural: Vec<_> = all()
            .into_iter()
            .filter(|d| d.effect == ModelEffect::Structural)
            .collect();
        assert!(structural.iter().any(|d| d.change.contains("6F²")));
        assert!(structural.iter().any(|d| d.change.contains("4F²")));
        assert!(structural
            .iter()
            .any(|d| d.change.contains("cells per bitline")));
    }

    #[test]
    fn nine_disruptions_total() {
        assert_eq!(all().len(), 9);
    }
}
