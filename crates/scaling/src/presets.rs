//! Generation presets: complete [`DramDescription`]s for every roadmap
//! node, built by scaling the 55 nm DDR3 calibration reference along the
//! curves of Fig. 5–7 and applying the structural disruptions of
//! Table II.

use std::collections::BTreeMap;

use dram_core::params::{
    Axis, BitlineArchitecture, BlockCoord, BufferDevice, DeviceGeometry, DramDescription,
    Electrical, PhysicalFloorplan, SegmentSpec, SignalClass, SignalSpec, SignalingFloorplan,
    Specification,
};
use dram_core::reference::{canonical_logic_blocks, ddr3_1g_x16_55nm};
use dram_units::{Amperes, Meters};

use crate::curves::ScalingParam;
use crate::interface::Interface;
use crate::node::{TechNode, ROADMAP};

/// Full specification of a preset device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PresetSpec {
    /// Feature size in nm.
    pub feature_nm: f64,
    /// Interface generation.
    pub interface: Interface,
    /// Density in megabits.
    pub density_mbit: u64,
    /// I/O width (4, 8 or 16).
    pub io_width: u32,
}

impl PresetSpec {
    /// The mainstream x16 device of a roadmap node.
    #[must_use]
    pub fn for_node(node: &TechNode) -> Self {
        Self {
            feature_nm: node.feature_nm,
            interface: node.interface,
            density_mbit: node.density_mbit,
            io_width: 16,
        }
    }

    fn tech_node(&self) -> TechNode {
        TechNode {
            feature_nm: self.feature_nm,
            year: 0,
            interface: self.interface,
            density_mbit: self.density_mbit,
        }
    }
}

fn log2_exact(x: u64, what: &str) -> u32 {
    assert!(x.is_power_of_two(), "{what} = {x} must be a power of two");
    x.trailing_zeros()
}

/// Builds the complete description of a preset device.
///
/// # Panics
///
/// Panics if density, banks, page size and I/O width are not mutually
/// consistent powers of two — the roadmap constants and the documented
/// I/O widths (4/8/16) always are.
#[must_use]
pub fn build(spec: &PresetSpec) -> DramDescription {
    let node = spec.tech_node();
    let reference = ddr3_1g_x16_55nm();
    let iface = spec.interface;
    let f = Meters::from_nm(spec.feature_nm);
    let factor = |p: ScalingParam| p.factor(&node);
    let scale_len = |m: Meters, p: ScalingParam| m * factor(p);

    // --- organization ---------------------------------------------------
    let banks: u32 = match iface {
        Interface::Ddr2 if spec.density_mbit >= 1024 => 8,
        _ => iface.banks(),
    };
    let page_bits: u64 = (iface.page_bits_x16() * u64::from(spec.io_width) / 16).max(8 * 1024);
    let density_bits = spec.density_mbit * (1 << 20);
    let coladd = log2_exact(page_bits / u64::from(spec.io_width), "columns");
    let rowadd = log2_exact(density_bits / (u64::from(banks) * page_bits), "rows");

    let architecture = if spec.feature_nm > 70.0 {
        BitlineArchitecture::Folded
    } else if spec.feature_nm > 37.0 {
        BitlineArchitecture::Open
    } else {
        BitlineArchitecture::Vertical4F2
    };
    let (wlp, blp) = match architecture {
        BitlineArchitecture::Folded | BitlineArchitecture::Vertical4F2 => (f * 2.0, f * 2.0),
        BitlineArchitecture::Open => (f * 3.0, f * 2.0),
    };
    let bits_per_bitline = if spec.feature_nm > 100.0 { 256 } else { 512 };

    // --- floorplan grid --------------------------------------------------
    let (bank_cols, bank_rows) = match banks {
        4 => (2usize, 2usize),
        8 => (4, 2),
        16 => (4, 4),
        32 => (8, 4),
        other => panic!("unsupported bank count {other}"),
    };
    let mut horizontal_blocks = Vec::new();
    for i in 0..(2 * bank_cols - 1) {
        horizontal_blocks.push(if i % 2 == 0 {
            "A1".to_string()
        } else {
            "P1".to_string()
        });
    }
    let vertical_blocks: Vec<String> = match bank_rows {
        2 => ["A1", "P1", "P2", "P1", "A1"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        4 => ["A1", "P1", "A1", "P1", "P2", "P1", "A1", "P1", "A1"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        other => panic!("unsupported bank row count {other}"),
    };
    let misc = factor(ScalingParam::MiscLogicWidth);
    let p1 = Meters::from_um(200.0) * misc;
    let p2 = Meters::from_um(530.0) * (misc * iface.logic_complexity().sqrt());
    let horizontal_sizes = BTreeMap::from([("P1".to_string(), p1)]);
    let vertical_sizes = BTreeMap::from([("P1".to_string(), p1), ("P2".to_string(), p2)]);

    let floorplan = PhysicalFloorplan {
        bitline_direction: Axis::Vertical,
        bits_per_bitline,
        bits_per_local_wordline: 512,
        bitline_architecture: architecture,
        blocks_per_csl: 1,
        wordline_pitch: wlp,
        bitline_pitch: blp,
        sa_stripe_width: scale_len(
            reference.floorplan.sa_stripe_width,
            ScalingParam::SaStripeWidth,
        ),
        lwd_stripe_width: scale_len(
            reference.floorplan.lwd_stripe_width,
            ScalingParam::LwdStripeWidth,
        ),
        horizontal_blocks,
        vertical_blocks,
        horizontal_sizes,
        vertical_sizes,
    };

    // --- technology -------------------------------------------------------
    let r = &reference.technology;
    let dev = |d: DeviceGeometry, wp: ScalingParam, lp: ScalingParam| DeviceGeometry {
        width: d.width * factor(wp),
        length: d.length * factor(lp),
    };
    use ScalingParam as P;
    let technology = dram_core::params::Technology {
        tox_logic: scale_len(r.tox_logic, P::ToxLogic),
        tox_high_voltage: scale_len(r.tox_high_voltage, P::ToxHighVoltage),
        tox_cell: scale_len(r.tox_cell, P::ToxCell),
        lmin_logic: scale_len(r.lmin_logic, P::LminLogic),
        junction_cap_logic: r.junction_cap_logic * factor(P::JunctionCap),
        lmin_high_voltage: scale_len(r.lmin_high_voltage, P::LminHighVoltage),
        junction_cap_high_voltage: r.junction_cap_high_voltage * factor(P::JunctionCap),
        cell_access_length: scale_len(r.cell_access_length, P::CellAccessLength),
        cell_access_width: scale_len(r.cell_access_width, P::CellAccessWidth),
        bitline_cap: r.bitline_cap * factor(P::BitlineCap),
        cell_cap: r.cell_cap * factor(P::CellCap),
        bl_to_wl_cap_share: r.bl_to_wl_cap_share,
        bits_per_csl_per_subarray: r.bits_per_csl_per_subarray,
        c_wire_mwl: r.c_wire_mwl * factor(P::WireCapPerLength),
        mwl_predecode_ratio: r.mwl_predecode_ratio,
        mwl_decoder_nmos_width: scale_len(r.mwl_decoder_nmos_width, P::RowCircuitWidth),
        mwl_decoder_pmos_width: scale_len(r.mwl_decoder_pmos_width, P::RowCircuitWidth),
        mwl_decoder_switching: r.mwl_decoder_switching,
        wl_controller_nmos_width: scale_len(r.wl_controller_nmos_width, P::RowCircuitWidth),
        wl_controller_pmos_width: scale_len(r.wl_controller_pmos_width, P::RowCircuitWidth),
        swd_nmos_width: scale_len(r.swd_nmos_width, P::RowCircuitWidth),
        swd_pmos_width: scale_len(r.swd_pmos_width, P::RowCircuitWidth),
        swd_restore_nmos_width: scale_len(r.swd_restore_nmos_width, P::RowCircuitWidth),
        c_wire_lwl: r.c_wire_lwl * factor(P::WireCapPerLength),
        sa_nmos_sense: dev(r.sa_nmos_sense, P::SenseAmpWidth, P::SenseAmpLength),
        sa_pmos_sense: dev(r.sa_pmos_sense, P::SenseAmpWidth, P::SenseAmpLength),
        sa_equalize: dev(r.sa_equalize, P::SenseAmpWidth, P::SenseAmpLength),
        sa_bit_switch: dev(r.sa_bit_switch, P::SenseAmpWidth, P::SenseAmpLength),
        sa_bitline_mux: dev(r.sa_bitline_mux, P::SenseAmpWidth, P::SenseAmpLength),
        sa_nset: dev(r.sa_nset, P::SenseAmpWidth, P::SenseAmpLength),
        sa_pset: dev(r.sa_pset, P::SenseAmpWidth, P::SenseAmpLength),
        c_wire_signal: r.c_wire_signal * factor(P::WireCapPerLength),
    };

    // --- electrical / spec / timing -----------------------------------------
    let (eff_vint, eff_vbl, eff_vpp) = iface.generator_efficiencies();
    let electrical = Electrical {
        vdd: iface.vdd(),
        vint: iface.vint(),
        vbl: iface.vbl(),
        vpp: iface.vpp(),
        eff_vint,
        eff_vbl,
        eff_vpp,
        constant_current: Amperes::from_ma(iface.constant_current_ma()),
    };
    let spec_out = Specification {
        io_width: spec.io_width,
        datarate_per_pin: iface.datarate(),
        clock_wires: iface.clock_wires(),
        data_clock: iface.control_clock(),
        control_clock: iface.control_clock(),
        bank_address_bits: log2_exact(u64::from(banks), "banks"),
        row_address_bits: rowadd,
        column_address_bits: coladd,
        control_signals: 10,
        prefetch: iface.prefetch(),
        burst_length: iface.burst_length(),
    };

    // --- logic blocks --------------------------------------------------------
    let complexity = iface.logic_complexity();
    let logic_blocks = canonical_logic_blocks()
        .into_iter()
        .map(|mut b| {
            // The interface FIFO/pre-driver block scales with the
            // serialization depth; everything else with the general
            // peripheral complexity of the generation.
            let mut gates = f64::from(b.gates);
            if b.name.contains("FIFO") {
                gates *= f64::from(iface.prefetch()) / 8.0;
            } else {
                gates *= complexity;
            }
            b.gates = (gates.round() as u32).max(100);
            b.avg_nmos_width = b.avg_nmos_width * misc;
            b.avg_pmos_width = b.avg_pmos_width * misc;
            b
        })
        .collect();

    let signaling = generate_signaling(bank_cols, bank_rows, misc);

    let density_name = if spec.density_mbit >= 1024 {
        format!("{}Gb", spec.density_mbit / 1024)
    } else {
        format!("{}Mb", spec.density_mbit)
    };
    DramDescription {
        name: format!(
            "{density_name} {} x{} {}nm",
            iface.name(),
            spec.io_width,
            spec.feature_nm
        ),
        floorplan,
        signaling,
        technology,
        electrical,
        spec: spec_out,
        timing: iface.timing(),
        logic_blocks,
    }
}

/// Generates the canonical signaling floorplan for a bank grid: data and
/// address buses from the center stripe to representative blocks, plus
/// control and clock distribution (mirrors
/// [`dram_core::reference::canonical_signaling`] for arbitrary grids).
fn generate_signaling(bank_cols: usize, bank_rows: usize, misc: f64) -> SignalingFloorplan {
    let h_len = 2 * bank_cols - 1;
    let v_len = if bank_rows == 2 { 5 } else { 9 };
    let h_mid = bank_cols - 1; // always an odd (P) column for even cols
    let v_mid = v_len / 2; // the P2 center stripe row
    let center = BlockCoord::new(h_mid, v_mid);
    let column_logic = BlockCoord::new((h_mid + 1).min(h_len - 1), v_mid - 1);
    let row_logic = BlockCoord::new((h_mid + 2).min(h_len - 2), 0);

    let buf = |w_um: f64| BufferDevice {
        nmos_width: Meters::from_um(w_um * misc),
        pmos_width: Meters::from_um(2.0 * w_um * misc),
    };
    let big = buf(9.6);
    let small = buf(4.8);

    let data_segments = vec![
        SegmentSpec::Inside {
            at: center,
            fraction: 0.25,
            dir: Axis::Horizontal,
            buffer: Some(big),
            mux: Some(8),
        },
        SegmentSpec::Between {
            from: center,
            to: column_logic,
            buffer: Some(big),
        },
        SegmentSpec::Inside {
            at: column_logic,
            fraction: 0.5,
            dir: Axis::Horizontal,
            buffer: Some(small),
            mux: None,
        },
    ];
    let addr = |to: BlockCoord| {
        vec![
            SegmentSpec::Inside {
                at: center,
                fraction: 0.25,
                dir: Axis::Horizontal,
                buffer: Some(small),
                mux: None,
            },
            SegmentSpec::Between {
                from: center,
                to,
                buffer: Some(small),
            },
        ]
    };
    use dram_core::params::WireCount;
    SignalingFloorplan {
        signals: vec![
            SignalSpec {
                name: "DataW".into(),
                class: SignalClass::WriteData,
                wires: WireCount::PerIo,
                toggle_rate: 0.5,
                segments: data_segments.clone(),
            },
            SignalSpec {
                name: "DataR".into(),
                class: SignalClass::ReadData,
                wires: WireCount::PerIo,
                toggle_rate: 0.5,
                segments: data_segments,
            },
            SignalSpec {
                name: "RowAddr".into(),
                class: SignalClass::RowAddress,
                wires: WireCount::RowAddressBits,
                toggle_rate: 0.5,
                segments: addr(row_logic),
            },
            SignalSpec {
                name: "ColAddr".into(),
                class: SignalClass::ColumnAddress,
                wires: WireCount::ColumnAddressBits,
                toggle_rate: 0.5,
                segments: addr(column_logic),
            },
            SignalSpec {
                name: "BankAddr".into(),
                class: SignalClass::BankAddress,
                wires: WireCount::BankAddressBits,
                toggle_rate: 0.5,
                segments: vec![SegmentSpec::Inside {
                    at: center,
                    fraction: 0.3,
                    dir: Axis::Horizontal,
                    buffer: Some(small),
                    mux: None,
                }],
            },
            SignalSpec {
                name: "Control".into(),
                class: SignalClass::Control,
                wires: WireCount::ControlSignals,
                toggle_rate: 0.25,
                segments: vec![SegmentSpec::Inside {
                    at: center,
                    fraction: 0.5,
                    dir: Axis::Horizontal,
                    buffer: Some(small),
                    mux: None,
                }],
            },
            SignalSpec {
                name: "Clock".into(),
                class: SignalClass::Clock,
                wires: WireCount::ClockWires,
                toggle_rate: 2.0,
                segments: vec![
                    SegmentSpec::Inside {
                        at: center,
                        fraction: 1.0,
                        dir: Axis::Horizontal,
                        buffer: Some(big),
                        mux: None,
                    },
                    SegmentSpec::Between {
                        from: center,
                        to: column_logic,
                        buffer: Some(small),
                    },
                ],
            },
        ],
    }
}

/// Mainstream x16 preset for a roadmap node.
#[must_use]
pub fn preset(node: &TechNode) -> DramDescription {
    build(&PresetSpec::for_node(node))
}

/// All mainstream x16 generations in roadmap order.
#[must_use]
pub fn all_generations() -> Vec<DramDescription> {
    ROADMAP.iter().map(preset).collect()
}

/// Changes the per-pin data rate (and bus clocks) of a description — the
/// speed-grade axis of Fig. 8/9.
#[must_use]
pub fn with_datarate(
    mut desc: DramDescription,
    datarate: dram_units::BitsPerSecond,
) -> DramDescription {
    let beats = if desc.spec.prefetch == 1 { 1.0 } else { 2.0 };
    let clock = dram_units::Hertz::new(datarate.bits_per_second() / beats);
    desc.spec.datarate_per_pin = datarate;
    desc.spec.data_clock = clock;
    desc.spec.control_clock = clock;
    desc.name = format!("{} @{}Mbps", desc.name, datarate.mbps().round());
    desc
}

/// The 128 Mb SDR device in 170 nm (Table III, Fig. 10).
#[must_use]
pub fn sdr_128m_170nm() -> DramDescription {
    preset(TechNode::by_feature(170.0).expect("roadmap node"))
}

/// The 1 Gb DDR2 device in 75 nm (Fig. 8 verification).
#[must_use]
pub fn ddr2_1g_75nm() -> DramDescription {
    preset(TechNode::by_feature(75.0).expect("roadmap node"))
}

/// The 1 Gb DDR2 device in 65 nm (Fig. 8 verification; the 65 nm node ran
/// DDR2 and DDR3 side by side).
#[must_use]
pub fn ddr2_1g_65nm() -> DramDescription {
    build(&PresetSpec {
        feature_nm: 65.0,
        interface: Interface::Ddr2,
        density_mbit: 1024,
        io_width: 16,
    })
}

/// The 1 Gb DDR3 device in 65 nm (Fig. 9 verification).
#[must_use]
pub fn ddr3_1g_65nm() -> DramDescription {
    preset(TechNode::by_feature(65.0).expect("roadmap node"))
}

/// The 1 Gb DDR3 device in 55 nm (Fig. 9 verification; matches the
/// calibration reference organization).
#[must_use]
pub fn ddr3_1g_55nm() -> DramDescription {
    preset(TechNode::by_feature(55.0).expect("roadmap node"))
}

/// The 2 Gb DDR3 device in 55 nm (Table III, §IV.B).
#[must_use]
pub fn ddr3_2g_55nm() -> DramDescription {
    build(&PresetSpec {
        feature_nm: 55.0,
        interface: Interface::Ddr3,
        density_mbit: 2048,
        io_width: 16,
    })
}

/// The hypothetical 16 Gb DDR5 device in 18 nm (Table III, Fig. 10).
#[must_use]
pub fn ddr5_16g_18nm() -> DramDescription {
    preset(TechNode::by_feature(18.0).expect("roadmap node"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::Dram;

    #[test]
    fn every_roadmap_preset_builds_a_valid_model() {
        // Batch-build all nodes concurrently through the engine; order is
        // preserved so failures still name the offending node.
        let engine = dram_core::EvalEngine::new().threads(4);
        let descs = all_generations();
        let models = engine.evaluate_many(&descs);
        for (node, model) in ROADMAP.iter().zip(models) {
            let dram = model.unwrap_or_else(|e| panic!("{node}: preset invalid: {e:?}"));
            let die = dram.area().die.square_millimeters();
            assert!(
                (20.0..=90.0).contains(&die),
                "{node}: die {die} mm² outside the commodity window"
            );
            let eff = dram.area().array_efficiency();
            assert!(
                (0.35..=0.75).contains(&eff),
                "{node}: array efficiency {eff}"
            );
        }
    }

    #[test]
    fn reference_node_preset_matches_calibration_magnitudes() {
        let dram = Dram::new(ddr3_1g_55nm()).expect("builds");
        let idd = dram.idd();
        // Same organization as the hand-calibrated reference; currents in
        // the same band.
        assert!(idd.idd0.milliamperes() > 35.0 && idd.idd0.milliamperes() < 90.0);
        assert!(idd.idd4r.milliamperes() > 100.0 && idd.idd4r.milliamperes() < 260.0);
    }

    #[test]
    fn named_presets_build() {
        for desc in [
            sdr_128m_170nm(),
            ddr2_1g_75nm(),
            ddr2_1g_65nm(),
            ddr3_1g_65nm(),
            ddr3_2g_55nm(),
            ddr5_16g_18nm(),
        ] {
            let name = desc.name.clone();
            Dram::new(desc).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn io_width_variants_build() {
        let node = TechNode::by_feature(55.0).unwrap();
        for io in [4, 8, 16] {
            let desc = build(&PresetSpec {
                io_width: io,
                ..PresetSpec::for_node(node)
            });
            let dram = Dram::new(desc).expect("x4/x8/x16 variants build");
            assert_eq!(dram.description().spec.io_width, io);
            // Density is independent of I/O width.
            assert_eq!(dram.description().spec.density_bits(), 1 << 30);
        }
    }

    #[test]
    fn narrower_io_draws_less_column_current() {
        let node = TechNode::by_feature(55.0).unwrap();
        let x16 = Dram::new(build(&PresetSpec::for_node(node))).unwrap();
        let x4 = Dram::new(build(&PresetSpec {
            io_width: 4,
            ..PresetSpec::for_node(node)
        }))
        .unwrap();
        assert!(x4.idd().idd4r < x16.idd().idd4r);
    }

    #[test]
    fn with_datarate_rescales_clocks() {
        let desc = with_datarate(ddr3_1g_55nm(), dram_units::BitsPerSecond::from_mbps(1066.0));
        assert!((desc.spec.control_clock.megahertz() - 533.0).abs() < 1.0);
        let dram = Dram::new(desc).expect("derated device builds");
        // Slower clock, lower currents than the full-speed part.
        let fast = Dram::new(ddr3_1g_55nm()).unwrap();
        assert!(dram.idd().idd4r < fast.idd().idd4r);
    }

    #[test]
    fn energy_per_bit_declines_across_roadmap() {
        // Fig. 13's central trend: random-access energy per bit falls from
        // the 170 nm SDR generation to the 16 nm DDR5 generation.
        let gens = all_generations();
        let first = Dram::new(gens.first().unwrap().clone()).unwrap();
        let last = Dram::new(gens.last().unwrap().clone()).unwrap();
        let e0 = first.energy_per_bit_random().picojoules();
        let e1 = last.energy_per_bit_random().picojoules();
        assert!(
            e0 / e1 > 5.0,
            "energy per bit should fall by a large factor: {e0} -> {e1} pJ/bit"
        );
    }

    #[test]
    fn array_power_share_declines_across_roadmap() {
        // §IV.B / Table III: the share of array-related power shrinks from
        // old to new generations (shift to wiring and logic).
        let old = Dram::new(sdr_128m_170nm()).unwrap();
        let new = Dram::new(ddr5_16g_18nm()).unwrap();
        let share = |d: &Dram| {
            let act = d.operation_energy(dram_core::Operation::Activate);
            let rd = d.operation_energy(dram_core::Operation::Read);
            // Mixed workload: weight row and column ops equally.
            let array = act.external().joules() * act.array_share()
                + rd.external().joules() * rd.array_share();
            array / (act.external().joules() + rd.external().joules())
        };
        assert!(
            share(&old) > share(&new),
            "array share should decline: {} -> {}",
            share(&old),
            share(&new)
        );
    }
}
