//! # dram-scaling
//!
//! The technology roadmap of Vogelsang (MICRO 2010) §III.C/§IV.C: nodes
//! from 170 nm (2000, 128 Mb SDR) to 16 nm (2018, 16 Gb DDR5), per-
//! parameter shrink curves (Fig. 5–7), the disruptive transitions of
//! Table II, interface-generation envelopes (voltages, data rates, row
//! timings), and complete generation presets built by scaling the 55 nm
//! DDR3 calibration reference.
//!
//! ```
//! use dram_core::Dram;
//! use dram_scaling::presets::ddr5_16g_18nm;
//!
//! # fn main() -> Result<(), dram_core::ModelError> {
//! let dram = Dram::new(ddr5_16g_18nm())?;
//! // A forecast DDR5 device still lands in the commodity die window.
//! let die = dram.area().die.square_millimeters();
//! assert!(die > 20.0 && die < 90.0);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

pub mod cost;
pub mod curves;
pub mod disruptions;
pub mod interface;
pub mod node;
pub mod presets;
pub mod trends;
pub mod variants;

pub use curves::ScalingParam;
pub use interface::Interface;
pub use node::{TechNode, REFERENCE_NODE, ROADMAP};
