//! Per-parameter technology scaling curves (Fig. 5, Fig. 6, Fig. 7).
//!
//! "In general technology parameters shrink more slowly than the feature
//! size" (§III.C). Each parameter follows a power law in the feature-size
//! ratio relative to the 55 nm calibration node, with discrete adjustments
//! at the disruptive transitions of Table II (see
//! [`crate::disruptions`]).

use crate::node::TechNode;

/// A scalable technology parameter, grouped by the figure that plots its
/// shrink curve in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingParam {
    // --- Figure 5: transistor/technology parameters -------------------
    /// Gate oxide thickness, general logic.
    ToxLogic,
    /// Gate oxide thickness, high-voltage devices.
    ToxHighVoltage,
    /// Gate oxide thickness, cell access transistor.
    ToxCell,
    /// Minimum channel length, general logic.
    LminLogic,
    /// Minimum channel length, high-voltage devices.
    LminHighVoltage,
    /// Junction capacitance per width.
    JunctionCap,
    /// Cell access transistor length.
    CellAccessLength,
    /// Cell access transistor width.
    CellAccessWidth,
    // --- Figure 6: capacitances, misc widths, stripe widths -----------
    /// Total bitline capacitance.
    BitlineCap,
    /// Storage cell capacitance (kept nearly constant for refresh).
    CellCap,
    /// Average width of miscellaneous logic devices.
    MiscLogicWidth,
    /// Bitline sense-amplifier stripe width.
    SaStripeWidth,
    /// Local wordline driver stripe width.
    LwdStripeWidth,
    /// Specific wire capacitance (per unit length).
    WireCapPerLength,
    // --- Figure 7: core device dimensions ------------------------------
    /// Width of bitline sense-amplifier devices.
    SenseAmpWidth,
    /// Length of bitline sense-amplifier devices.
    SenseAmpLength,
    /// Width of on-pitch row circuitry devices.
    RowCircuitWidth,
    /// Length of on-pitch row circuitry devices.
    RowCircuitLength,
}

impl ScalingParam {
    /// All parameters, in figure order.
    pub const ALL: [ScalingParam; 18] = [
        ScalingParam::ToxLogic,
        ScalingParam::ToxHighVoltage,
        ScalingParam::ToxCell,
        ScalingParam::LminLogic,
        ScalingParam::LminHighVoltage,
        ScalingParam::JunctionCap,
        ScalingParam::CellAccessLength,
        ScalingParam::CellAccessWidth,
        ScalingParam::BitlineCap,
        ScalingParam::CellCap,
        ScalingParam::MiscLogicWidth,
        ScalingParam::SaStripeWidth,
        ScalingParam::LwdStripeWidth,
        ScalingParam::WireCapPerLength,
        ScalingParam::SenseAmpWidth,
        ScalingParam::SenseAmpLength,
        ScalingParam::RowCircuitWidth,
        ScalingParam::RowCircuitLength,
    ];

    /// The paper figure whose curve family this parameter belongs to.
    #[must_use]
    pub fn figure(self) -> u8 {
        match self {
            ScalingParam::ToxLogic
            | ScalingParam::ToxHighVoltage
            | ScalingParam::ToxCell
            | ScalingParam::LminLogic
            | ScalingParam::LminHighVoltage
            | ScalingParam::JunctionCap
            | ScalingParam::CellAccessLength
            | ScalingParam::CellAccessWidth => 5,
            ScalingParam::BitlineCap
            | ScalingParam::CellCap
            | ScalingParam::MiscLogicWidth
            | ScalingParam::SaStripeWidth
            | ScalingParam::LwdStripeWidth
            | ScalingParam::WireCapPerLength => 6,
            ScalingParam::SenseAmpWidth
            | ScalingParam::SenseAmpLength
            | ScalingParam::RowCircuitWidth
            | ScalingParam::RowCircuitLength => 7,
        }
    }

    /// Human-readable parameter name (legend label).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScalingParam::ToxLogic => "gate oxide logic",
            ScalingParam::ToxHighVoltage => "gate oxide high voltage",
            ScalingParam::ToxCell => "gate oxide cell",
            ScalingParam::LminLogic => "min channel length logic",
            ScalingParam::LminHighVoltage => "min channel length HV",
            ScalingParam::JunctionCap => "junction capacitance",
            ScalingParam::CellAccessLength => "access transistor length",
            ScalingParam::CellAccessWidth => "access transistor width",
            ScalingParam::BitlineCap => "bitline capacitance",
            ScalingParam::CellCap => "cell capacitance",
            ScalingParam::MiscLogicWidth => "misc logic device width",
            ScalingParam::SaStripeWidth => "SA stripe width",
            ScalingParam::LwdStripeWidth => "LWD stripe width",
            ScalingParam::WireCapPerLength => "specific wire capacitance",
            ScalingParam::SenseAmpWidth => "sense amp device width",
            ScalingParam::SenseAmpLength => "sense amp device length",
            ScalingParam::RowCircuitWidth => "row circuit device width",
            ScalingParam::RowCircuitLength => "row circuit device length",
        }
    }

    /// Power-law exponent in the feature-size ratio. An exponent of 1.0
    /// is a full f-shrink (the solid reference line of Fig. 5–7); smaller
    /// exponents shrink more slowly, as the paper observes for almost all
    /// parameters.
    #[must_use]
    pub fn exponent(self) -> f64 {
        match self {
            ScalingParam::ToxLogic => 0.45,
            ScalingParam::ToxHighVoltage => 0.30,
            ScalingParam::ToxCell => 0.35,
            ScalingParam::LminLogic => 0.90,
            ScalingParam::LminHighVoltage => 0.80,
            ScalingParam::JunctionCap => 0.30,
            ScalingParam::CellAccessLength => 1.0,
            ScalingParam::CellAccessWidth => 1.0,
            ScalingParam::BitlineCap => 0.35,
            ScalingParam::CellCap => 0.08,
            ScalingParam::MiscLogicWidth => 0.70,
            ScalingParam::SaStripeWidth => 0.70,
            ScalingParam::LwdStripeWidth => 0.70,
            ScalingParam::WireCapPerLength => 0.12,
            ScalingParam::SenseAmpWidth => 0.80,
            ScalingParam::SenseAmpLength => 0.75,
            ScalingParam::RowCircuitWidth => 0.80,
            ScalingParam::RowCircuitLength => 0.75,
        }
    }

    /// Discrete multiplier from the disruptive transitions of Table II
    /// that apply to this parameter at the given node (relative to the
    /// 55 nm reference).
    #[must_use]
    pub fn disruption_adjust(self, node: &TechNode) -> f64 {
        let f = node.feature_nm;
        let mut adjust = 1.0;
        match self {
            // Dual gate oxide introduced at 110 nm → 90 nm: before it,
            // logic shared the thick oxide.
            ScalingParam::ToxLogic if f > 100.0 => adjust *= 1.25,
            // Planar access transistor before the 90 nm → 75 nm 3-D
            // transition needed more width for drive.
            ScalingParam::CellAccessWidth if f > 80.0 => adjust *= 1.3,
            // Folded bitline (before 75 nm → 65 nm) runs the pair side by
            // side: more bitline capacitance per cell.
            ScalingParam::BitlineCap if f > 70.0 => adjust *= 1.15,
            // Al wiring before the 55 nm → 44 nm Cu transition.
            ScalingParam::WireCapPerLength if f > 50.0 => adjust *= 1.12,
            _ => {}
        }
        // High-k gate dielectric from the 36 nm → 31 nm transition lets
        // equivalent oxide thickness scale again.
        if f < 33.0
            && matches!(
                self,
                ScalingParam::ToxLogic | ScalingParam::ToxHighVoltage | ScalingParam::ToxCell
            )
        {
            adjust *= 0.85;
        }
        adjust
    }

    /// Total scale factor of this parameter at `node`, relative to its
    /// value at the 55 nm reference node (disruption adjustments are
    /// normalized so the reference itself has factor 1).
    #[must_use]
    pub fn factor(self, node: &TechNode) -> f64 {
        let reference_adjust = self.disruption_adjust(&crate::node::REFERENCE_NODE);
        node.feature_ratio().powf(self.exponent()) * self.disruption_adjust(node) / reference_adjust
    }

    /// Shrink factor relative to the *oldest* roadmap node, normalized the
    /// way Fig. 5–7 plot it (value 1.0 at 170 nm, decreasing).
    #[must_use]
    pub fn shrink_from_first(self, node: &TechNode) -> f64 {
        self.factor(node) / self.factor(&crate::node::ROADMAP[0])
    }
}

/// The pure feature-size shrink (the solid `f-shrink` line of Fig. 5–7),
/// normalized to 1.0 at the oldest node.
#[must_use]
pub fn f_shrink(node: &TechNode) -> f64 {
    node.feature_nm / crate::node::ROADMAP[0].feature_nm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{REFERENCE_NODE, ROADMAP};

    #[test]
    fn factors_are_one_at_reference() {
        for p in ScalingParam::ALL {
            assert!(
                (p.factor(&REFERENCE_NODE) - 1.0).abs() < 1e-12,
                "{} reference factor != 1",
                p.name()
            );
        }
    }

    #[test]
    fn parameters_shrink_more_slowly_than_feature() {
        // §III.C's central observation, checked at the oldest node: every
        // parameter's total spread is at most the feature spread.
        let f = f_shrink(&ROADMAP[ROADMAP.len() - 1]);
        for p in ScalingParam::ALL {
            let s = p.shrink_from_first(&ROADMAP[ROADMAP.len() - 1]);
            // The access transistor crosses the planar→3-D disruption,
            // which legitimately drops its width a step beyond the trend.
            let floor = if matches!(p, ScalingParam::CellAccessWidth) {
                f * 0.7
            } else {
                f * 0.99
            };
            assert!(
                s >= floor,
                "{} shrinks faster than feature: {s} vs {f}",
                p.name()
            );
            // And everything does shrink (or stay flat).
            assert!(s <= 1.01, "{} grows over the roadmap", p.name());
        }
    }

    #[test]
    fn shrink_curves_are_monotonic_within_smooth_regions() {
        // Between disruptions the power law is monotonic; check a pair of
        // adjacent nodes on the same side of all transitions.
        let n55 = &ROADMAP[6];
        let n44 = &ROADMAP[7];
        for p in ScalingParam::ALL {
            if p == ScalingParam::WireCapPerLength {
                continue; // Cu transition sits between these nodes
            }
            assert!(
                p.factor(n44) <= p.factor(n55) + 1e-12,
                "{} not shrinking 55->44",
                p.name()
            );
        }
    }

    #[test]
    fn disruptions_show_up_as_steps() {
        // Dual gate oxide: logic oxide steps down between 110 and 90 nm
        // beyond the smooth trend.
        let n110 = TechNode::by_feature(110.0).unwrap();
        let n90 = TechNode::by_feature(90.0).unwrap();
        let smooth = (90.0f64 / 110.0).powf(ScalingParam::ToxLogic.exponent());
        let actual = ScalingParam::ToxLogic.factor(n90) / ScalingParam::ToxLogic.factor(n110);
        assert!(
            actual < smooth * 0.9,
            "no dual-gate-oxide step: {actual} vs {smooth}"
        );

        // Cu metallization between 55 and 44 nm.
        let n55 = TechNode::by_feature(55.0).unwrap();
        let n44 = TechNode::by_feature(44.0).unwrap();
        let smooth = (44.0f64 / 55.0).powf(ScalingParam::WireCapPerLength.exponent());
        let actual =
            ScalingParam::WireCapPerLength.factor(n44) / ScalingParam::WireCapPerLength.factor(n55);
        assert!(actual < smooth * 0.95, "no Cu step: {actual} vs {smooth}");
    }

    #[test]
    fn cell_capacitance_is_nearly_constant() {
        // The cell capacitor "has always been a main focus of technology
        // scaling": capacitance stays nearly constant across the roadmap.
        let first = ScalingParam::CellCap.factor(&ROADMAP[0]);
        let last = ScalingParam::CellCap.factor(&ROADMAP[ROADMAP.len() - 1]);
        assert!(
            first / last < 1.35,
            "cell cap varies too much: {}",
            first / last
        );
    }

    #[test]
    fn figure_assignment_covers_all() {
        for p in ScalingParam::ALL {
            assert!(matches!(p.figure(), 5..=7));
        }
        assert!(ScalingParam::ALL.iter().any(|p| p.figure() == 5));
        assert!(ScalingParam::ALL.iter().any(|p| p.figure() == 6));
        assert!(ScalingParam::ALL.iter().any(|p| p.figure() == 7));
    }
}
