//! DRAM interface generations (SDR → DDR5) and their electrical and
//! timing envelopes.
//!
//! §IV.C fixes the evaluation methodology: x16 devices, the mainstream
//! interface at each node's time of peak usage, data rate per pin doubling
//! at each interface transition while the core column rate stays constant
//! (higher prefetch), and supply voltages following the ITRS roadmap.

use dram_core::params::Timing;
use dram_units::{BitsPerSecond, Hertz, Seconds, Volts};

/// A DRAM interface standard generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Interface {
    /// Single data rate SDRAM (~2000).
    Sdr,
    /// DDR SDRAM.
    Ddr,
    /// DDR2 SDRAM.
    Ddr2,
    /// DDR3 SDRAM.
    Ddr3,
    /// DDR4 SDRAM (forecast at publication time).
    Ddr4,
    /// DDR5 SDRAM (the paper's hypothetical 2017 generation).
    Ddr5,
}

impl Interface {
    /// All generations in chronological order.
    pub const ALL: [Interface; 6] = [
        Interface::Sdr,
        Interface::Ddr,
        Interface::Ddr2,
        Interface::Ddr3,
        Interface::Ddr4,
        Interface::Ddr5,
    ];

    /// Interface name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Interface::Sdr => "SDR",
            Interface::Ddr => "DDR",
            Interface::Ddr2 => "DDR2",
            Interface::Ddr3 => "DDR3",
            Interface::Ddr4 => "DDR4",
            Interface::Ddr5 => "DDR5",
        }
    }

    /// Prefetch: internal bits per DQ per column access. Doubles per
    /// generation past DDR3 (constant core frequency, §IV.C).
    #[must_use]
    pub fn prefetch(self) -> u32 {
        match self {
            Interface::Sdr => 1,
            Interface::Ddr => 2,
            Interface::Ddr2 => 4,
            Interface::Ddr3 => 8,
            Interface::Ddr4 => 16,
            Interface::Ddr5 => 32,
        }
    }

    /// High-end per-pin data rate at peak usage of the generation
    /// (Fig. 12; doubling per transition).
    #[must_use]
    pub fn datarate(self) -> BitsPerSecond {
        match self {
            Interface::Sdr => BitsPerSecond::from_mbps(133.0),
            Interface::Ddr => BitsPerSecond::from_mbps(400.0),
            Interface::Ddr2 => BitsPerSecond::from_mbps(800.0),
            Interface::Ddr3 => BitsPerSecond::from_gbps(1.6),
            Interface::Ddr4 => BitsPerSecond::from_gbps(3.2),
            Interface::Ddr5 => BitsPerSecond::from_gbps(6.4),
        }
    }

    /// Command/address (bus) clock: data rate over beats per clock.
    #[must_use]
    pub fn control_clock(self) -> Hertz {
        let beats = if self == Interface::Sdr { 1.0 } else { 2.0 };
        Hertz::new(self.datarate().bits_per_second() / beats)
    }

    /// Interface burst length in beats.
    #[must_use]
    pub fn burst_length(self) -> u32 {
        self.prefetch().max(1)
    }

    /// Column-to-column spacing in control-clock cycles: a seamless burst
    /// occupies `burst / beats-per-clock` cycles.
    #[must_use]
    pub fn tccd_cycles(self) -> u32 {
        let beats = if self == Interface::Sdr { 1 } else { 2 };
        (self.burst_length() / beats).max(1)
    }

    /// Number of banks of a mainstream x16 device.
    #[must_use]
    pub fn banks(self) -> u32 {
        match self {
            Interface::Sdr | Interface::Ddr | Interface::Ddr2 => 4,
            Interface::Ddr3 => 8,
            Interface::Ddr4 => 16,
            Interface::Ddr5 => 32,
        }
    }

    /// Page size in bits of a mainstream x16 device.
    #[must_use]
    pub fn page_bits_x16(self) -> u64 {
        match self {
            // 1 KB pages in the SDR/DDR era, 2 KB from DDR2 on.
            Interface::Sdr | Interface::Ddr => 8 * 1024,
            _ => 16 * 1024,
        }
    }

    /// External supply voltage (Fig. 11 / JEDEC).
    #[must_use]
    pub fn vdd(self) -> Volts {
        match self {
            Interface::Sdr => Volts::new(3.3),
            Interface::Ddr => Volts::new(2.5),
            Interface::Ddr2 => Volts::new(1.8),
            Interface::Ddr3 => Volts::new(1.5),
            Interface::Ddr4 => Volts::new(1.2),
            Interface::Ddr5 => Volts::new(1.1),
        }
    }

    /// Internal logic voltage.
    #[must_use]
    pub fn vint(self) -> Volts {
        match self {
            Interface::Sdr => Volts::new(2.7),
            Interface::Ddr => Volts::new(2.2),
            Interface::Ddr2 => Volts::new(1.6),
            Interface::Ddr3 => Volts::new(1.3),
            Interface::Ddr4 => Volts::new(1.05),
            Interface::Ddr5 => Volts::new(0.95),
        }
    }

    /// Bitline (array) voltage.
    #[must_use]
    pub fn vbl(self) -> Volts {
        match self {
            Interface::Sdr => Volts::new(2.2),
            Interface::Ddr => Volts::new(1.8),
            Interface::Ddr2 => Volts::new(1.4),
            Interface::Ddr3 => Volts::new(1.2),
            Interface::Ddr4 => Volts::new(1.0),
            Interface::Ddr5 => Volts::new(0.9),
        }
    }

    /// Boosted wordline voltage.
    #[must_use]
    pub fn vpp(self) -> Volts {
        match self {
            Interface::Sdr => Volts::new(4.0),
            Interface::Ddr => Volts::new(3.6),
            Interface::Ddr2 => Volts::new(3.1),
            Interface::Ddr3 => Volts::new(2.9),
            Interface::Ddr4 => Volts::new(2.5),
            Interface::Ddr5 => Volts::new(2.3),
        }
    }

    /// Generator/pump charge-transfer efficiencies `(Vint, Vbl, Vpp)` of
    /// the era: output charge over input charge drawn from Vdd. Pumps and
    /// regulators improved markedly between the SDR and DDR3 generations;
    /// the Vpp pump worsens slightly again for DDR4/DDR5 because boosting
    /// from a 1.1–1.2 V supply needs more stages.
    #[must_use]
    pub fn generator_efficiencies(self) -> (f64, f64, f64) {
        match self {
            Interface::Sdr => (0.90, 0.85, 0.17),
            Interface::Ddr => (0.91, 0.86, 0.18),
            Interface::Ddr2 => (0.92, 0.88, 0.19),
            Interface::Ddr3 => (0.95, 0.92, 0.21),
            Interface::Ddr4 => (0.95, 0.93, 0.20),
            Interface::Ddr5 => (0.96, 0.94, 0.19),
        }
    }

    /// Peripheral-logic complexity relative to DDR3 ("[peripheral logic]
    /// becomes more complex in more advanced DRAM generations", §III.B.5).
    #[must_use]
    pub fn logic_complexity(self) -> f64 {
        match self {
            Interface::Sdr => 0.45,
            Interface::Ddr => 0.55,
            Interface::Ddr2 => 0.75,
            Interface::Ddr3 => 1.0,
            Interface::Ddr4 => 1.4,
            Interface::Ddr5 => 2.0,
        }
    }

    /// Constant current sink (references, DLL bias) in milliamperes.
    #[must_use]
    pub fn constant_current_ma(self) -> f64 {
        match self {
            Interface::Sdr => 2.0,
            Interface::Ddr => 4.0,
            Interface::Ddr2 => 6.0,
            Interface::Ddr3 => 10.0,
            Interface::Ddr4 => 12.0,
            Interface::Ddr5 => 15.0,
        }
    }

    /// Number of clock distribution wires on die.
    #[must_use]
    pub fn clock_wires(self) -> u32 {
        match self {
            Interface::Sdr | Interface::Ddr | Interface::Ddr2 | Interface::Ddr3 => 2,
            Interface::Ddr4 | Interface::Ddr5 => 4,
        }
    }

    /// Row timing envelope of the generation (Fig. 12: row timings improve
    /// only slowly over generations).
    #[must_use]
    pub fn timing(self) -> Timing {
        let ns = Seconds::from_ns;
        match self {
            Interface::Sdr => Timing {
                trc: ns(70.0),
                tras: ns(45.0),
                trp: ns(20.0),
                trcd: ns(20.0),
                trrd: ns(15.0),
                tfaw: ns(60.0),
                trfc: ns(70.0),
                trefi: ns(15_600.0),
                tccd_cycles: self.tccd_cycles(),
            },
            Interface::Ddr => Timing {
                trc: ns(65.0),
                tras: ns(42.0),
                trp: ns(18.0),
                trcd: ns(18.0),
                trrd: ns(12.0),
                tfaw: ns(55.0),
                trfc: ns(75.0),
                trefi: ns(7_800.0),
                tccd_cycles: self.tccd_cycles(),
            },
            Interface::Ddr2 => Timing {
                trc: ns(55.0),
                tras: ns(40.0),
                trp: ns(15.0),
                trcd: ns(15.0),
                trrd: ns(10.0),
                tfaw: ns(45.0),
                trfc: ns(105.0),
                trefi: ns(7_800.0),
                tccd_cycles: self.tccd_cycles(),
            },
            Interface::Ddr3 => Timing {
                trc: ns(49.0),
                tras: ns(35.0),
                trp: ns(14.0),
                trcd: ns(14.0),
                trrd: ns(7.5),
                tfaw: ns(40.0),
                trfc: ns(110.0),
                trefi: ns(7_800.0),
                tccd_cycles: self.tccd_cycles(),
            },
            Interface::Ddr4 => Timing {
                trc: ns(47.0),
                tras: ns(33.0),
                trp: ns(14.0),
                trcd: ns(14.0),
                trrd: ns(6.0),
                tfaw: ns(35.0),
                trfc: ns(260.0),
                trefi: ns(7_800.0),
                tccd_cycles: self.tccd_cycles(),
            },
            Interface::Ddr5 => Timing {
                trc: ns(46.0),
                tras: ns(32.0),
                trp: ns(14.0),
                trcd: ns(14.0),
                trrd: ns(5.0),
                tfaw: ns(32.0),
                trfc: ns(295.0),
                trefi: ns(3_900.0),
                tccd_cycles: self.tccd_cycles(),
            },
        }
    }
}

impl core::fmt::Display for Interface {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datarate_doubles_per_generation_from_ddr() {
        for pair in Interface::ALL.windows(2) {
            let ratio = pair[1].datarate().bits_per_second() / pair[0].datarate().bits_per_second();
            assert!(
                (2.0..=3.01).contains(&ratio),
                "{} -> {}: ratio {ratio}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn voltages_decline_monotonically() {
        for pair in Interface::ALL.windows(2) {
            assert!(pair[1].vdd() < pair[0].vdd());
            assert!(pair[1].vint() < pair[0].vint());
            assert!(pair[1].vbl() < pair[0].vbl());
            assert!(pair[1].vpp() < pair[0].vpp());
        }
    }

    #[test]
    fn rail_ordering_holds_everywhere() {
        for i in Interface::ALL {
            assert!(i.vpp() > i.vdd(), "{i}");
            assert!(i.vdd() >= i.vint(), "{i}");
            assert!(i.vint() >= i.vbl(), "{i}");
        }
    }

    #[test]
    fn core_column_rate_is_roughly_constant_from_ddr3() {
        // datarate / prefetch = core column rate; the paper assumes it
        // stops increasing after DDR3.
        let core = |i: Interface| i.datarate().bits_per_second() / f64::from(i.prefetch());
        let ddr3 = core(Interface::Ddr3);
        assert!((core(Interface::Ddr4) - ddr3).abs() < 1.0);
        assert!((core(Interface::Ddr5) - ddr3).abs() < 1.0);
    }

    #[test]
    fn tccd_matches_burst_occupancy() {
        assert_eq!(Interface::Sdr.tccd_cycles(), 1);
        assert_eq!(Interface::Ddr.tccd_cycles(), 1);
        assert_eq!(Interface::Ddr2.tccd_cycles(), 2);
        assert_eq!(Interface::Ddr3.tccd_cycles(), 4);
        assert_eq!(Interface::Ddr4.tccd_cycles(), 8);
        assert_eq!(Interface::Ddr5.tccd_cycles(), 16);
    }

    #[test]
    fn row_timing_improves_slowly() {
        let sdr = Interface::Sdr.timing();
        let ddr5 = Interface::Ddr5.timing();
        // tRC improves by less than 2x over six generations while the data
        // rate improves by ~48x — the crux of Fig. 12.
        assert!(sdr.trc.seconds() / ddr5.trc.seconds() < 2.0);
        let rate_gain = Interface::Ddr5.datarate().bits_per_second()
            / Interface::Sdr.datarate().bits_per_second();
        assert!(rate_gain > 40.0);
    }

    #[test]
    fn complexity_and_banks_grow() {
        for pair in Interface::ALL.windows(2) {
            assert!(pair[1].logic_complexity() >= pair[0].logic_complexity());
            assert!(pair[1].banks() >= pair[0].banks());
        }
    }
}
