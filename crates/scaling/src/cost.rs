//! Manufacturing cost model (§II): "The three most important factors for
//! cost are the cost of a wafer, the yield and the die area."
//!
//! Commodity DRAM economics drive every §II constraint the power model
//! encodes (few metal levels, slow transistors, maximum array
//! efficiency), so the reproduction prices them: dies per 300 mm wafer,
//! a Murphy-style defect yield, per-node wafer cost, and cost per bit.

use dram_units::SquareMeters;

use crate::node::TechNode;

/// Wafer diameter assumed throughout (300 mm became mainstream across
/// this roadmap).
pub const WAFER_DIAMETER_MM: f64 = 300.0;

/// Edge exclusion of the wafer, mm.
pub const EDGE_EXCLUSION_MM: f64 = 3.0;

/// Defect density in defects/cm², roughly constant for a mature DRAM
/// process (process maturity is folded into the per-node wafer cost).
pub const DEFECT_DENSITY_PER_CM2: f64 = 0.25;

/// Relative wafer processing cost of a node (the 55 nm wafer = 1.0).
/// Costs rise with lithography complexity: roughly 12 % per node, with a
/// step at the immersion/multi-patterning transitions.
#[must_use]
pub fn relative_wafer_cost(node: &TechNode) -> f64 {
    // Exponential growth in process steps as features shrink.
    let base = (55.0 / node.feature_nm).powf(0.45);
    // Multi-patterning surcharge below 40 nm.
    let surcharge = if node.feature_nm < 40.0 { 1.25 } else { 1.0 };
    base * surcharge
}

/// Gross dies per wafer for a die area (simple area/ring model with a
/// scribe allowance).
#[must_use]
pub fn gross_dies_per_wafer(die: SquareMeters) -> f64 {
    let usable_radius_mm = WAFER_DIAMETER_MM / 2.0 - EDGE_EXCLUSION_MM;
    let wafer_area_mm2 = core::f64::consts::PI * usable_radius_mm * usable_radius_mm;
    // Scribe-line allowance, then subtract the perimeter ring of
    // partial dies.
    let die_mm2 = die.square_millimeters() * 1.04;
    let edge_loss = core::f64::consts::PI * WAFER_DIAMETER_MM / (2.0 * die_mm2.sqrt());
    (wafer_area_mm2 / die_mm2 - edge_loss).max(0.0)
}

/// Murphy yield model: fraction of good dies at the standard defect
/// density.
#[must_use]
pub fn yield_fraction(die: SquareMeters) -> f64 {
    let a_d0 = die.square_millimeters() / 100.0 * DEFECT_DENSITY_PER_CM2;
    let inner = (1.0 - (-a_d0).exp()) / a_d0.max(1e-12);
    inner * inner
}

/// Cost breakdown of one device generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Relative wafer cost (55 nm = 1.0).
    pub wafer_cost: f64,
    /// Gross dies per wafer.
    pub gross_dies: f64,
    /// Yield fraction.
    pub yield_fraction: f64,
    /// Relative cost per die.
    pub cost_per_die: f64,
    /// Relative cost per gigabit (the commodity metric).
    pub cost_per_gbit: f64,
}

/// Computes the cost report for a node given its die area and density.
#[must_use]
pub fn cost_report(node: &TechNode, die: SquareMeters) -> CostReport {
    let wafer_cost = relative_wafer_cost(node);
    let gross_dies = gross_dies_per_wafer(die);
    let y = yield_fraction(die);
    let cost_per_die = wafer_cost / (gross_dies * y).max(1e-9);
    let gbit = node.density_mbit as f64 / 1024.0;
    CostReport {
        wafer_cost,
        gross_dies,
        yield_fraction: y,
        cost_per_die,
        cost_per_gbit: cost_per_die / gbit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trends::roadmap_models_with;
    use dram_core::EvalEngine;

    #[test]
    fn dies_per_wafer_magnitude() {
        // A 50 mm² die on a 300 mm wafer: ~1200 gross dies.
        let dies = gross_dies_per_wafer(SquareMeters::from_mm2(50.0));
        assert!((900.0..1500.0).contains(&dies), "{dies}");
        // Bigger dies, fewer of them.
        assert!(
            gross_dies_per_wafer(SquareMeters::from_mm2(100.0))
                < gross_dies_per_wafer(SquareMeters::from_mm2(50.0)) / 1.8
        );
    }

    #[test]
    fn yield_declines_with_area() {
        let small = yield_fraction(SquareMeters::from_mm2(30.0));
        let big = yield_fraction(SquareMeters::from_mm2(90.0));
        assert!(small > big);
        assert!((0.5..1.0).contains(&small), "{small}");
        assert!(big > 0.3, "{big}");
    }

    #[test]
    fn cost_per_bit_falls_across_the_roadmap() {
        // The economic engine of the whole roadmap: despite rising wafer
        // cost, shrinking cells cut cost per bit every few generations.
        // Evaluate the roadmap concurrently through the engine.
        let engine = EvalEngine::new().threads(4);
        let mut reports = Vec::new();
        for (node, dram) in roadmap_models_with(&engine) {
            reports.push((node, cost_report(&node, dram.area().die)));
        }
        let first = reports.first().unwrap().1.cost_per_gbit;
        let last = reports.last().unwrap().1.cost_per_gbit;
        assert!(
            first / last > 20.0,
            "cost per Gbit should collapse over 18 years: {first} -> {last}"
        );
        // And wafer cost rises monotonically.
        for pair in reports.windows(2) {
            assert!(pair[1].1.wafer_cost >= pair[0].1.wafer_cost * 0.999);
        }
    }

    #[test]
    fn reference_wafer_cost_is_unity() {
        let node = crate::node::REFERENCE_NODE;
        assert!((relative_wafer_cost(&node) - 1.0).abs() < 1e-12);
    }
}
