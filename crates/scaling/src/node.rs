//! The technology-node roadmap of §III.C and §IV.C: feature sizes from
//! 170 nm (2000) to 16 nm (2018), each with its mainstream interface and
//! density at peak usage (die area held in the 40–60 mm² window).

use crate::interface::Interface;

/// One technology node of the roadmap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechNode {
    /// Minimum feature size in nanometers.
    pub feature_nm: f64,
    /// Approximate year of peak usage.
    pub year: u32,
    /// Mainstream interface at peak usage.
    pub interface: Interface,
    /// Mainstream x16 device density in megabits.
    pub density_mbit: u64,
}

impl TechNode {
    /// Device density in bits.
    #[must_use]
    pub fn density_bits(&self) -> u64 {
        self.density_mbit * (1 << 20)
    }

    /// Shrink factor of the feature size relative to the 55 nm reference
    /// node (greater than 1 for older nodes).
    #[must_use]
    pub fn feature_ratio(&self) -> f64 {
        self.feature_nm / REFERENCE_NODE.feature_nm
    }

    /// Looks up the roadmap node with this feature size.
    #[must_use]
    pub fn by_feature(feature_nm: f64) -> Option<&'static TechNode> {
        ROADMAP
            .iter()
            .find(|n| (n.feature_nm - feature_nm).abs() < 0.5)
    }
}

impl core::fmt::Display for TechNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}nm {} {}Mb ({})",
            self.feature_nm, self.interface, self.density_mbit, self.year
        )
    }
}

/// The calibration reference: the 55 nm DDR3 node of the paper's running
/// example (and of `dram_core::reference`).
pub const REFERENCE_NODE: TechNode = TechNode {
    feature_nm: 55.0,
    year: 2008,
    interface: Interface::Ddr3,
    density_mbit: 1024,
};

/// The full roadmap, 170 nm (2000) to 16 nm (2018 forecast). The average
/// feature shrink between generations is about 16 % (§III.C). The 18 nm
/// entry is the paper's hypothetical 16 Gb DDR5 device of Table III.
pub const ROADMAP: [TechNode; 14] = [
    TechNode {
        feature_nm: 170.0,
        year: 2000,
        interface: Interface::Sdr,
        density_mbit: 128,
    },
    TechNode {
        feature_nm: 140.0,
        year: 2002,
        interface: Interface::Ddr,
        density_mbit: 256,
    },
    TechNode {
        feature_nm: 110.0,
        year: 2003,
        interface: Interface::Ddr,
        density_mbit: 512,
    },
    TechNode {
        feature_nm: 90.0,
        year: 2005,
        interface: Interface::Ddr2,
        density_mbit: 512,
    },
    TechNode {
        feature_nm: 75.0,
        year: 2006,
        interface: Interface::Ddr2,
        density_mbit: 1024,
    },
    TechNode {
        feature_nm: 65.0,
        year: 2007,
        interface: Interface::Ddr3,
        density_mbit: 1024,
    },
    REFERENCE_NODE,
    TechNode {
        feature_nm: 44.0,
        year: 2010,
        interface: Interface::Ddr3,
        density_mbit: 2048,
    },
    TechNode {
        feature_nm: 36.0,
        year: 2012,
        interface: Interface::Ddr4,
        density_mbit: 4096,
    },
    TechNode {
        feature_nm: 31.0,
        year: 2013,
        interface: Interface::Ddr4,
        density_mbit: 4096,
    },
    TechNode {
        feature_nm: 25.0,
        year: 2014,
        interface: Interface::Ddr4,
        density_mbit: 8192,
    },
    TechNode {
        feature_nm: 20.0,
        year: 2016,
        interface: Interface::Ddr5,
        density_mbit: 8192,
    },
    TechNode {
        feature_nm: 18.0,
        year: 2017,
        interface: Interface::Ddr5,
        density_mbit: 16384,
    },
    TechNode {
        feature_nm: 16.0,
        year: 2018,
        interface: Interface::Ddr5,
        density_mbit: 16384,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roadmap_is_monotonic() {
        for pair in ROADMAP.windows(2) {
            assert!(pair[1].feature_nm < pair[0].feature_nm);
            assert!(pair[1].year >= pair[0].year);
            assert!(pair[1].density_mbit >= pair[0].density_mbit);
            assert!(pair[1].interface >= pair[0].interface);
        }
    }

    #[test]
    fn average_shrink_is_about_sixteen_percent() {
        // §III.C: "The average feature size shrink between generations is
        // 16%."
        let first = ROADMAP.first().unwrap().feature_nm;
        let last = ROADMAP.last().unwrap().feature_nm;
        let steps = (ROADMAP.len() - 1) as f64;
        let avg = 1.0 - (last / first).powf(1.0 / steps);
        assert!((0.12..=0.20).contains(&avg), "average shrink {avg}");
    }

    #[test]
    fn reference_node_is_in_roadmap() {
        assert!(ROADMAP.iter().any(|n| n == &REFERENCE_NODE));
        assert_eq!(REFERENCE_NODE.feature_ratio(), 1.0);
    }

    #[test]
    fn lookup_by_feature() {
        let n = TechNode::by_feature(170.0).expect("present");
        assert_eq!(n.interface, Interface::Sdr);
        assert_eq!(n.density_mbit, 128);
        assert!(TechNode::by_feature(123.0).is_none());
    }

    #[test]
    fn density_bits() {
        assert_eq!(TechNode::by_feature(55.0).unwrap().density_bits(), 1 << 30);
    }
}
