//! Architecture variants of §II: "Different architectures have been
//! proposed over the years to optimize a DRAM for other applications
//! than main memory. These optimizations always yield a higher cost per
//! bit."
//!
//! * **High-performance** (GDDR5 \[7\] / XDR style): much more partitioned
//!   — 32 array blocks instead of 8 for a 1 Gb die — to source a higher
//!   data rate from more concurrently active blocks.
//! * **Mobile** (LP-DDR2 \[8\] style): commodity-like array but I/O pads
//!   at the chip edge (longer data runs from the center stripe) and
//!   aggressive standby optimization (leakage-trimmed periphery, lower
//!   constant current, temperature-compensated self-refresh).

use dram_core::params::{BlockCoord, DramDescription, SegmentSpec, SignalClass};
use dram_units::{Amperes, BitsPerSecond, Hertz};

use crate::node::TechNode;
use crate::presets::{build, PresetSpec};

/// A high-performance graphics-class device: the commodity die of the
/// node re-partitioned into four times as many banks, clocked at a
/// GDDR5-class data rate (ref \[7\]: 7 Gb/s/pin with no bank-group
/// restriction).
///
/// # Panics
///
/// Panics if the node's organization cannot be re-partitioned (all
/// roadmap nodes can).
#[must_use]
pub fn high_performance(node: &TechNode) -> DramDescription {
    // Re-partition: 4x the banks of the commodity device at this
    // density, which shortens master wordlines and datalines per block.
    let iface = node.interface;
    let banks = (iface.banks() * 4).min(32);
    // Rebuild with the higher bank count by adjusting the address split:
    // more bank bits, fewer row bits.
    let extra_bank_bits = banks.trailing_zeros() - iface.banks().trailing_zeros();
    let mut spec = PresetSpec::for_node(node);
    spec.io_width = 16;
    let mut hp = build(&spec);
    hp.spec.bank_address_bits += extra_bank_bits;
    // Graphics parts also halve the per-bank page (shorter master
    // wordlines, more concurrency); the remaining bits go back to rows.
    hp.spec.column_address_bits -= 1;
    hp.spec.row_address_bits -= extra_bank_bits - 1;

    // The grid needs to match: 32 banks = 8 x 4, 16 banks = 4 x 4.
    let (cols, rows) = match banks {
        16 => (4usize, 4usize),
        32 => (8, 4),
        other => panic!("unsupported high-performance bank count {other}"),
    };
    let mut horizontal = Vec::new();
    for i in 0..(2 * cols - 1) {
        horizontal.push(if i % 2 == 0 {
            "A1".to_string()
        } else {
            "P1".to_string()
        });
    }
    let vertical: Vec<String> = ["A1", "P1", "A1", "P1", "P2", "P1", "A1", "P1", "A1"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    assert_eq!(rows, 4, "high-performance grid uses four bank rows");
    hp.floorplan.horizontal_blocks = horizontal;
    hp.floorplan.vertical_blocks = vertical;

    // Regenerate the signaling endpoints for the new grid.
    let h_mid = cols - 1;
    let v_mid = 4;
    retarget_signaling(&mut hp, h_mid, v_mid, cols);

    // GDDR-class interface: double the commodity data rate via a faster
    // bus clock (graphics parts spend power for bandwidth).
    let gddr_rate = BitsPerSecond::new(iface.datarate().bits_per_second() * 2.0);
    hp.spec.datarate_per_pin = gddr_rate;
    hp.spec.data_clock = Hertz::new(gddr_rate.bits_per_second() / 2.0);
    hp.spec.control_clock = hp.spec.data_clock;
    // Wider on-die clocking.
    hp.spec.clock_wires = hp.spec.clock_wires.max(4);
    // Interface logic roughly doubles (PLL-heavy high-speed I/O).
    for b in &mut hp.logic_blocks {
        if b.active_during.always || b.name.contains("FIFO") {
            b.gates *= 2;
        }
    }
    hp.name = format!("{} (high-performance partitioning)", hp.name);
    hp
}

/// A mobile LP-DDR2-style device: commodity organization with edge pads
/// — the data buses continue from the center stripe to the die edge —
/// and a standby-optimized periphery (no DLL, minimal constant current).
#[must_use]
pub fn mobile(node: &TechNode) -> DramDescription {
    let mut desc = build(&PresetSpec::for_node(node));

    // Edge pads: append an extra segment from the center stripe to the
    // die edge on every data path ("mobile DRAMs ... have edge pads to
    // which the data have to be wired from the center stripe", §II).
    let h_len = desc.floorplan.horizontal_blocks.len();
    let v_len = desc.floorplan.vertical_blocks.len();
    let edge = BlockCoord::new(0, v_len / 2);
    let center = BlockCoord::new(h_len / 2, v_len / 2);
    for sig in &mut desc.signaling.signals {
        if matches!(sig.class, SignalClass::WriteData | SignalClass::ReadData) {
            sig.segments.push(SegmentSpec::Between {
                from: center,
                to: edge,
                buffer: None,
            });
        }
    }

    // Standby optimization: no DLL (mobile parts are unterminated and
    // DLL-less), smaller constant current, gated input stage.
    desc.electrical.constant_current = Amperes::from_ma(0.8);
    for b in &mut desc.logic_blocks {
        if b.name.contains("DLL") {
            b.gates = (b.gates / 4).max(100);
        }
        if b.active_during.always {
            b.toggle_rate *= 0.6;
        }
    }
    // Mobile data rates trail commodity by one speed grade.
    let rate = BitsPerSecond::new(desc.spec.datarate_per_pin.bits_per_second() / 2.0);
    desc.spec.datarate_per_pin = rate;
    desc.spec.data_clock = Hertz::new(rate.bits_per_second() / 2.0);
    desc.spec.control_clock = desc.spec.data_clock;
    desc.name = format!("{} (mobile, edge pads)", desc.name);
    desc
}

/// Rewires the canonical signaling endpoints onto a different grid.
fn retarget_signaling(desc: &mut DramDescription, h_mid: usize, v_mid: usize, cols: usize) {
    let center = BlockCoord::new(h_mid, v_mid);
    let column_logic = BlockCoord::new((h_mid + 1).min(2 * cols - 2), v_mid - 1);
    let row_logic = BlockCoord::new((h_mid + 2).min(2 * cols - 3), 0);
    for sig in &mut desc.signaling.signals {
        for seg in &mut sig.segments {
            match seg {
                SegmentSpec::Inside { at, .. } => *at = center,
                SegmentSpec::Between { from, to, .. } => {
                    *from = center;
                    *to = match sig.class {
                        SignalClass::RowAddress => row_logic,
                        _ => column_logic,
                    };
                }
            }
        }
    }
    // Second Inside segment of the data paths sits in the column logic.
    for sig in &mut desc.signaling.signals {
        if matches!(sig.class, SignalClass::WriteData | SignalClass::ReadData) {
            if let Some(SegmentSpec::Inside { at, .. }) = sig.segments.last_mut() {
                *at = column_logic;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TechNode;
    use dram_core::{Dram, PowerState};

    fn node55() -> &'static TechNode {
        TechNode::by_feature(55.0).expect("roadmap node")
    }

    #[test]
    fn high_performance_variant_builds_and_is_partitioned() {
        let hp = Dram::new(high_performance(node55())).expect("builds");
        let commodity = Dram::new(build(&PresetSpec::for_node(node55()))).expect("builds");
        assert_eq!(hp.description().spec.banks(), 32);
        assert_eq!(commodity.description().spec.banks(), 8);
        // Shorter master wordlines per block.
        assert!(
            hp.geometry().master_wordline_length() < commodity.geometry().master_wordline_length()
        );
        // Higher peak bandwidth.
        assert!(
            hp.description().spec.peak_bandwidth().gbps()
                > commodity.description().spec.peak_bandwidth().gbps() * 1.9
        );
    }

    #[test]
    fn high_performance_buys_bandwidth_with_power() {
        // §II: graphics parts are "optimized for maximum total data
        // rate" and pay for it — higher absolute current, comparable or
        // higher energy per bit.
        let hp = Dram::new(high_performance(node55())).expect("builds");
        let commodity = Dram::new(build(&PresetSpec::for_node(node55()))).expect("builds");
        assert!(hp.idd().idd4r > commodity.idd().idd4r);
        let ratio =
            hp.energy_per_bit_streaming().joules() / commodity.energy_per_bit_streaming().joules();
        assert!((0.7..2.5).contains(&ratio), "epb ratio {ratio}");
        // The smaller page makes the random-access row overhead cheaper.
        assert!(
            hp.operation_energy(dram_core::Operation::Activate)
                .external()
                < commodity
                    .operation_energy(dram_core::Operation::Activate)
                    .external()
        );
    }

    #[test]
    fn high_performance_costs_die_area() {
        // "These optimizations always yield a higher cost per bit" (§II):
        // more partitioning means more stripe and periphery area per bit.
        let hp = Dram::new(high_performance(node55())).expect("builds");
        let commodity = Dram::new(build(&PresetSpec::for_node(node55()))).expect("builds");
        assert!(
            hp.area().array_efficiency() < commodity.area().array_efficiency(),
            "hp eff {} vs commodity {}",
            hp.area().array_efficiency(),
            commodity.area().array_efficiency()
        );
    }

    #[test]
    fn mobile_variant_cuts_standby_hard() {
        let mobile = Dram::new(mobile(node55())).expect("builds");
        let commodity = Dram::new(build(&PresetSpec::for_node(node55()))).expect("builds");
        let m_standby = mobile.state_power(PowerState::PrechargedStandby);
        let c_standby = commodity.state_power(PowerState::PrechargedStandby);
        assert!(
            m_standby.watts() < 0.5 * c_standby.watts(),
            "mobile standby {} vs commodity {}",
            m_standby,
            c_standby
        );
    }

    #[test]
    fn mobile_edge_pads_lengthen_the_data_path() {
        // The extra center-to-edge run makes each transferred bit cost
        // more in the data bus, visible in the read data path energy.
        let mobile = Dram::new(mobile(node55())).expect("builds");
        let commodity = Dram::new(build(&PresetSpec::for_node(node55()))).expect("builds");
        let bus = |d: &Dram| {
            d.operation_energy(dram_core::Operation::Read)
                .items
                .iter()
                .find(|i| i.label == "read data bus")
                .expect("read bus item")
                .external
                .picojoules()
        };
        assert!(
            bus(&mobile) > bus(&commodity),
            "mobile bus {} vs commodity {}",
            bus(&mobile),
            bus(&commodity)
        );
    }
}
