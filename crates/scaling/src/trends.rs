//! Trend series of §IV.C: voltages (Fig. 11), data rate and row timing
//! (Fig. 12), die area and energy per bit (Fig. 13).
//!
//! Each function returns one row per roadmap node, ready for the bench
//! harness to print as the figure's series.

use std::sync::Arc;

use dram_core::{Dram, EvalEngine, ModelError, ParamId, Perturbation};

use crate::node::{TechNode, ROADMAP};
use crate::presets::all_generations;

/// Builds every roadmap preset through `engine`'s memoizing cache,
/// evaluating the nodes concurrently. Rows follow [`ROADMAP`] order, so
/// the result is bit-identical to a serial walk.
///
/// # Panics
///
/// Panics if a roadmap preset fails to build — the roadmap constants are
/// validated by the preset tests, so this indicates a programming error.
#[must_use]
pub fn roadmap_models_with(engine: &EvalEngine) -> Vec<(TechNode, Arc<Dram>)> {
    let descs = all_generations();
    let models = engine.map(&descs, |d| {
        engine.model(d).expect("roadmap presets are valid")
    });
    ROADMAP.iter().copied().zip(models).collect()
}

/// [`roadmap_models_with`] on the process-wide [`EvalEngine::global`]
/// engine.
#[must_use]
pub fn roadmap_models() -> Vec<(TechNode, Arc<Dram>)> {
    roadmap_models_with(EvalEngine::global())
}

/// One row of the Fig. 11 voltage-trend series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageTrend {
    /// The node.
    pub node: TechNode,
    /// External supply voltage.
    pub vdd: f64,
    /// Internal logic voltage.
    pub vint: f64,
    /// Bitline voltage.
    pub vbl: f64,
    /// Wordline boost voltage.
    pub vpp: f64,
}

/// Fig. 11: voltage trends over the roadmap.
#[must_use]
pub fn voltage_trends() -> Vec<VoltageTrend> {
    ROADMAP
        .iter()
        .map(|n| VoltageTrend {
            node: *n,
            vdd: n.interface.vdd().volts(),
            vint: n.interface.vint().volts(),
            vbl: n.interface.vbl().volts(),
            vpp: n.interface.vpp().volts(),
        })
        .collect()
}

/// One row of the Fig. 12 data-rate and row-timing series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingTrend {
    /// The node.
    pub node: TechNode,
    /// Per-pin data rate in Mb/s.
    pub datarate_mbps: f64,
    /// Row cycle time in ns.
    pub trc_ns: f64,
    /// Activate-to-column delay in ns.
    pub trcd_ns: f64,
    /// Precharge time in ns.
    pub trp_ns: f64,
}

/// Fig. 12: device data rate and row timings over the roadmap.
#[must_use]
pub fn timing_trends() -> Vec<TimingTrend> {
    ROADMAP
        .iter()
        .map(|n| {
            let t = n.interface.timing();
            TimingTrend {
                node: *n,
                datarate_mbps: n.interface.datarate().mbps(),
                trc_ns: t.trc.nanoseconds(),
                trcd_ns: t.trcd.nanoseconds(),
                trp_ns: t.trp.nanoseconds(),
            }
        })
        .collect()
}

/// One row of the Fig. 13 die-area and energy-per-bit series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyTrend {
    /// The node.
    pub node: TechNode,
    /// Die area in mm².
    pub die_mm2: f64,
    /// Streaming (IDD4-style) energy per bit in pJ.
    pub epb_stream_pj: f64,
    /// Random-access (IDD7-style) energy per bit in pJ.
    pub epb_random_pj: f64,
}

/// Fig. 13: die area and energy per bit over the roadmap (evaluates the
/// full power model per node, concurrently on `engine`).
#[must_use]
pub fn energy_trends_with(engine: &EvalEngine) -> Vec<EnergyTrend> {
    roadmap_models_with(engine)
        .iter()
        .map(|(node, dram)| EnergyTrend {
            node: *node,
            die_mm2: dram.area().die.square_millimeters(),
            epb_stream_pj: dram.energy_per_bit_streaming().picojoules(),
            epb_random_pj: dram.energy_per_bit_random().picojoules(),
        })
        .collect()
}

/// Fig. 13: die area and energy per bit over the roadmap (evaluates the
/// full power model per node).
#[must_use]
pub fn energy_trends() -> Vec<EnergyTrend> {
    energy_trends_with(EvalEngine::global())
}

/// One row of the sensitivity-over-the-roadmap walk: how strongly each
/// selected parameter moves the mixed-workload power at one node.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityTrend {
    /// The node.
    pub node: TechNode,
    /// Baseline mixed-workload power in watts.
    pub baseline_watts: f64,
    /// Per-parameter tornado swing `|up − down|`, in the order of the
    /// `params` slice passed to [`sensitivity_trends_with`].
    pub swings: Vec<(ParamId, f64)>,
}

/// Walks the roadmap and, at every node, re-ranks the selected
/// parameters by their ±`variation` power swing — Table III's
/// "ranking stays stable across generations" claim as a series.
///
/// All perturbed evaluations run through the engine's differential fast
/// path ([`EvalEngine::evaluate_perturbations`]): per node only the
/// build phases each parameter dirties re-run, so the walk costs a
/// fraction of `2 × params × nodes` full model builds. Rows follow
/// [`ROADMAP`] order and each node's swings are reduced in `params`
/// order, so the result is bit-identical at any thread count.
///
/// # Errors
///
/// Returns [`ModelError`] if a perturbed description fails validation.
pub fn sensitivity_trends_with(
    engine: &EvalEngine,
    params: &[ParamId],
    variation: f64,
) -> Result<Vec<SensitivityTrend>, ModelError> {
    let descs = all_generations();
    let mut rows = Vec::with_capacity(descs.len());
    for (node, desc) in ROADMAP.iter().copied().zip(&descs) {
        let baseline = engine.model(desc)?.mixed_workload_power().power.watts();
        let perts: Vec<Perturbation> = params
            .iter()
            .flat_map(|&p| {
                [
                    Perturbation::single(p, 1.0 + variation),
                    Perturbation::single(p, 1.0 - variation),
                ]
            })
            .collect();
        let powers = engine.evaluate_perturbations(desc, &perts)?;
        let mut swings = Vec::with_capacity(params.len());
        for (i, &p) in params.iter().enumerate() {
            let up = powers[2 * i].clone()?.power.watts() / baseline - 1.0;
            let down = powers[2 * i + 1].clone()?.power.watts() / baseline - 1.0;
            swings.push((p, (up - down).abs()));
        }
        rows.push(SensitivityTrend {
            node,
            baseline_watts: baseline,
            swings,
        });
    }
    Ok(rows)
}

/// [`sensitivity_trends_with`] on the process-wide engine, over the
/// in-chart parameters at the paper's ±20 %.
///
/// # Errors
///
/// Returns [`ModelError`] if a perturbed description fails validation.
pub fn sensitivity_trends() -> Result<Vec<SensitivityTrend>, ModelError> {
    let params: Vec<ParamId> = ParamId::ALL
        .iter()
        .copied()
        .filter(|p| p.in_pareto_chart())
        .collect();
    sensitivity_trends_with(EvalEngine::global(), &params, 0.2)
}

/// Average per-generation energy-per-bit reduction factor over a node
/// range (Fig. 13 reports ×1.5 per generation for 2000–2010 and forecasts
/// ×1.2 for 2010–2018).
#[must_use]
pub fn energy_reduction_per_generation(trends: &[EnergyTrend], from_nm: f64, to_nm: f64) -> f64 {
    let slice: Vec<&EnergyTrend> = trends
        .iter()
        .filter(|t| t.node.feature_nm <= from_nm + 0.5 && t.node.feature_nm >= to_nm - 0.5)
        .collect();
    if slice.len() < 2 {
        return 1.0;
    }
    let first = slice.first().unwrap().epb_random_pj;
    let last = slice.last().unwrap().epb_random_pj;
    let steps = (slice.len() - 1) as f64;
    (first / last).powf(1.0 / steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_trends_decline() {
        let v = voltage_trends();
        assert_eq!(v.len(), ROADMAP.len());
        assert!(v.first().unwrap().vdd > v.last().unwrap().vdd);
        for row in &v {
            assert!(row.vpp > row.vdd);
            assert!(row.vdd >= row.vint && row.vint >= row.vbl);
        }
    }

    #[test]
    fn datarate_grows_much_faster_than_row_timing_improves() {
        let t = timing_trends();
        let rate_gain = t.last().unwrap().datarate_mbps / t.first().unwrap().datarate_mbps;
        let trc_gain = t.first().unwrap().trc_ns / t.last().unwrap().trc_ns;
        assert!(rate_gain > 40.0, "rate gain {rate_gain}");
        assert!(trc_gain < 2.0, "tRC gain {trc_gain}");
    }

    #[test]
    fn energy_per_bit_falls_and_flattens() {
        let e = energy_trends();
        // Historical segment (170 -> 44 nm): strong reduction.
        let hist = energy_reduction_per_generation(&e, 170.0, 44.0);
        // Forecast segment (44 -> 16 nm): weaker reduction — the paper's
        // headline observation (1.5x/gen vs 1.2x/gen).
        let fore = energy_reduction_per_generation(&e, 44.0, 16.0);
        assert!(hist > fore, "reduction should flatten: {hist} vs {fore}");
        assert!(hist > 1.2, "historical reduction too weak: {hist}");
        assert!(fore > 1.0, "forecast must still improve: {fore}");
        assert!(fore < 1.45, "forecast reduction too strong: {fore}");
    }

    #[test]
    fn parallel_energy_trends_match_serial_bit_for_bit() {
        let serial = energy_trends_with(&EvalEngine::new().threads(1));
        let parallel = energy_trends_with(&EvalEngine::new().threads(8));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.node, p.node);
            assert_eq!(s.die_mm2.to_bits(), p.die_mm2.to_bits());
            assert_eq!(s.epb_stream_pj.to_bits(), p.epb_stream_pj.to_bits());
            assert_eq!(s.epb_random_pj.to_bits(), p.epb_random_pj.to_bits());
        }
    }

    #[test]
    fn roadmap_walk_is_memoized() {
        let engine = EvalEngine::new().threads(2);
        let _ = roadmap_models_with(&engine);
        let misses = engine.cache_stats().misses;
        assert_eq!(misses, ROADMAP.len() as u64);
        let _ = roadmap_models_with(&engine);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, misses, "second walk must rebuild nothing");
        assert!(stats.hits >= misses);
    }

    #[test]
    fn sensitivity_walk_keeps_rail_voltages_on_top_at_every_node() {
        // Table III: the rail voltages dominate the ranking for every
        // generation, with Vint at or near the top throughout.
        let rows = sensitivity_trends().expect("roadmap presets are valid");
        assert_eq!(rows.len(), ROADMAP.len());
        for row in &rows {
            assert!(row.baseline_watts > 0.0, "{}", row.node);
            let mut ranked = row.swings.clone();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            assert!(
                matches!(ranked[0].0, dram_core::ParamId::Vint | dram_core::ParamId::Vbl),
                "{}: top is {}",
                row.node,
                ranked[0].0
            );
            let vint_rank = ranked
                .iter()
                .position(|(p, _)| *p == dram_core::ParamId::Vint)
                .unwrap();
            // The bitline-heavy DDR2 nodes push Vint down a few places,
            // but it never leaves the top of the chart.
            assert!(vint_rank < 4, "{}: Vint rank {vint_rank}", row.node);
            for (p, swing) in &row.swings {
                assert!(*swing >= 0.0, "{}: {p}", row.node);
            }
        }
    }

    #[test]
    fn sensitivity_walk_is_bit_identical_across_thread_counts() {
        let params = [
            dram_core::ParamId::Vint,
            dram_core::ParamId::BitlineCap,
            dram_core::ParamId::LogicGates,
        ];
        let serial = sensitivity_trends_with(&EvalEngine::new().threads(1), &params, 0.2)
            .expect("runs");
        let parallel = sensitivity_trends_with(&EvalEngine::new().threads(8), &params, 0.2)
            .expect("runs");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.node, p.node);
            assert_eq!(s.baseline_watts.to_bits(), p.baseline_watts.to_bits());
            for ((pa, sa), (pb, sb)) in s.swings.iter().zip(&p.swings) {
                assert_eq!(pa, pb);
                assert_eq!(sa.to_bits(), sb.to_bits(), "{}: {pa}", s.node);
            }
        }
    }

    #[test]
    fn die_area_stays_in_commodity_window() {
        for row in energy_trends() {
            assert!(
                (20.0..=90.0).contains(&row.die_mm2),
                "{}: die {} mm²",
                row.node,
                row.die_mm2
            );
        }
    }
}
