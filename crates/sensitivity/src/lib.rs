//! # dram-sensitivity
//!
//! The parameter-sensitivity analysis of Vogelsang (MICRO 2010) §IV.B:
//! vary every Table I model input by ±20 %, re-evaluate the mixed
//! activate/read/write/precharge workload, and rank the parameters by
//! their impact on total power (Fig. 10 tornado chart, Table III top-10
//! ranking).
//!
//! ```
//! use dram_core::reference::ddr3_1g_x16_55nm;
//! use dram_sensitivity::{sweep, ParamId};
//!
//! # fn main() -> Result<(), dram_core::ModelError> {
//! let s = sweep(&ddr3_1g_x16_55nm(), 0.2)?;
//! // The paper's headline: the internal voltage tops the ranking.
//! assert_eq!(s.top(1)[0].param, ParamId::Vint);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

mod sweep;

pub use dram_core::{ParamCategory, ParamId, Perturbation};
pub use sweep::{
    interaction, interaction_matrix, interaction_matrix_with,
    interaction_matrix_with_full_rebuild, interaction_with, sweep, sweep_with,
    sweep_with_full_rebuild, Interaction, InteractionMatrix, Sensitivity, Sweep,
};
