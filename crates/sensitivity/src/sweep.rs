//! The ±variation sensitivity sweep of §IV.B: perturb each parameter,
//! re-evaluate the mixed activate/read/write/precharge workload ("an
//! Idd7 pattern but with half of the read operations replaced by write
//! operations"), and rank by impact.

use dram_core::{DramDescription, EvalEngine, ModelError, Perturbation};

use crate::ParamId;

/// Sensitivity of the workload power to one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// The perturbed parameter.
    pub param: ParamId,
    /// Relative power change when the parameter is increased by the
    /// variation (e.g. `+0.12` = +12 %).
    pub up: f64,
    /// Relative power change when the parameter is decreased.
    pub down: f64,
}

impl Sensitivity {
    /// Total swing of the tornado bar: `|up − down|`. A parameter the
    /// power is directly proportional to shows a swing of twice the
    /// variation (the paper's "40 %" remark for Vdd at ±20 %).
    #[must_use]
    pub fn swing(&self) -> f64 {
        (self.up - self.down).abs()
    }
}

/// Result of a full sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The applied relative variation (0.2 = ±20 %).
    pub variation: f64,
    /// Baseline workload power in watts.
    pub baseline_watts: f64,
    /// Per-parameter sensitivities, in [`ParamId::ALL`] order.
    pub entries: Vec<Sensitivity>,
}

impl Sweep {
    /// Entries sorted by descending swing (the Pareto order of Fig. 10).
    #[must_use]
    pub fn ranked(&self) -> Vec<Sensitivity> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.swing().total_cmp(&a.swing()));
        v
    }

    /// The top `n` chart parameters (Vdd excluded, as in the paper's
    /// Fig. 10 / Table III).
    #[must_use]
    pub fn top(&self, n: usize) -> Vec<Sensitivity> {
        self.ranked()
            .into_iter()
            .filter(|s| s.param.in_pareto_chart())
            .take(n)
            .collect()
    }

    /// Looks up one parameter's sensitivity.
    #[must_use]
    pub fn of(&self, param: ParamId) -> Option<Sensitivity> {
        self.entries.iter().copied().find(|s| s.param == param)
    }

    /// Aggregate swing per Table I parameter group, as a share of the
    /// total swing (Vdd excluded, as in the chart).
    #[must_use]
    pub fn category_shares(&self) -> Vec<(crate::ParamCategory, f64)> {
        use std::collections::BTreeMap;
        let mut totals: BTreeMap<&'static str, (crate::ParamCategory, f64)> = BTreeMap::new();
        let mut grand = 0.0;
        for e in &self.entries {
            if !e.param.in_pareto_chart() {
                continue;
            }
            let cat = e.param.category();
            let key = match cat {
                crate::ParamCategory::Electrical => "electrical",
                crate::ParamCategory::Technology => "technology",
                crate::ParamCategory::Floorplan => "floorplan",
                crate::ParamCategory::Logic => "logic",
                crate::ParamCategory::Signaling => "signaling",
            };
            totals.entry(key).or_insert((cat, 0.0)).1 += e.swing();
            grand += e.swing();
        }
        totals
            .into_values()
            .map(|(cat, swing)| (cat, if grand > 0.0 { swing / grand } else { 0.0 }))
            .collect()
    }
}

/// Evaluates the sensitivity metric — mixed-workload power — through the
/// engine's memoizing model cache.
fn power_of(engine: &EvalEngine, desc: &DramDescription) -> Result<f64, ModelError> {
    Ok(engine.model(desc)?.mixed_workload_power().power.watts())
}

/// Applies one multiplicative perturbation to a fresh copy of `desc`.
fn perturbed(desc: &DramDescription, param: ParamId, factor: f64) -> DramDescription {
    let mut d = desc.clone();
    param.apply(&mut d, factor);
    d
}

/// Runs the sensitivity sweep on a device at the given relative variation
/// (the paper uses ±20 %), on the shared process-wide engine.
///
/// # Errors
///
/// Returns [`ModelError`] if the base description is invalid or a
/// perturbed description fails validation.
pub fn sweep(desc: &DramDescription, variation: f64) -> Result<Sweep, ModelError> {
    sweep_with(EvalEngine::global(), desc, variation)
}

/// [`sweep`] on an explicit engine (thread count and cache under caller
/// control).
///
/// The 2×|[`ParamId::ALL`]| perturbations evaluate through the engine's
/// differential fast path ([`EvalEngine::evaluate_perturbations`]): only
/// the build phases each parameter dirties re-run, on the
/// struct-of-arrays charge kernel. Entries are reduced in
/// [`ParamId::ALL`] order and every perturbed power is bit-identical to
/// a full rebuild, so the result matches
/// [`sweep_with_full_rebuild`] bit-for-bit at any thread count.
///
/// # Errors
///
/// Returns [`ModelError`] if the base description is invalid or a
/// perturbed description fails validation.
pub fn sweep_with(
    engine: &EvalEngine,
    desc: &DramDescription,
    variation: f64,
) -> Result<Sweep, ModelError> {
    let baseline = power_of(engine, desc)?;
    // One up and one down variant per parameter, interleaved, so the
    // result index i maps to (ParamId::ALL[i / 2], i % 2 == 0).
    let perts: Vec<Perturbation> = ParamId::ALL
        .iter()
        .flat_map(|&param| {
            [
                Perturbation::single(param, 1.0 + variation),
                Perturbation::single(param, 1.0 - variation),
            ]
        })
        .collect();
    let powers = engine.evaluate_perturbations(desc, &perts)?;

    let mut entries = Vec::with_capacity(ParamId::ALL.len());
    for (i, &param) in ParamId::ALL.iter().enumerate() {
        let up = powers[2 * i].clone()?.power.watts() / baseline - 1.0;
        let down = powers[2 * i + 1].clone()?.power.watts() / baseline - 1.0;
        entries.push(Sensitivity { param, up, down });
    }
    Ok(Sweep {
        variation,
        baseline_watts: baseline,
        entries,
    })
}

/// [`sweep_with`] through full model rebuilds (one complete
/// [`dram_core::Dram::new`] per perturbation, via the engine's model
/// cache).
///
/// This is the reference path the differential sweep is validated
/// against — benchmarks and CI compare the two for bit-identity and
/// speedup. Production callers should prefer [`sweep_with`].
///
/// # Errors
///
/// Returns [`ModelError`] if the base description is invalid or a
/// perturbed description fails validation.
pub fn sweep_with_full_rebuild(
    engine: &EvalEngine,
    desc: &DramDescription,
    variation: f64,
) -> Result<Sweep, ModelError> {
    let baseline = power_of(engine, desc)?;
    let descs: Vec<DramDescription> = ParamId::ALL
        .iter()
        .flat_map(|&param| {
            [
                perturbed(desc, param, 1.0 + variation),
                perturbed(desc, param, 1.0 - variation),
            ]
        })
        .collect();
    let powers = engine.map(&descs, |d| power_of(engine, d));

    let mut entries = Vec::with_capacity(ParamId::ALL.len());
    for (i, &param) in ParamId::ALL.iter().enumerate() {
        let up = powers[2 * i].clone()? / baseline - 1.0;
        let down = powers[2 * i + 1].clone()? / baseline - 1.0;
        entries.push(Sensitivity { param, up, down });
    }
    Ok(Sweep {
        variation,
        baseline_watts: baseline,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    fn reference_sweep() -> Sweep {
        sweep(&ddr3_1g_x16_55nm(), 0.2).expect("sweep runs")
    }

    #[test]
    fn vdd_swing_is_forty_percent() {
        // "A variation of 40% would mean that the power consumption is
        // directly proportional ... This is only the case for the external
        // supply voltage Vdd" (§IV.B).
        let s = reference_sweep();
        let vdd = s.of(ParamId::Vdd).unwrap();
        assert!(
            (vdd.swing() - 0.40).abs() < 0.02,
            "Vdd swing {}",
            vdd.swing()
        );
        // Every other parameter influences only part of the power.
        for e in &s.entries {
            if e.param != ParamId::Vdd {
                assert!(
                    e.swing() < vdd.swing() + 1e-9,
                    "{} swing {}",
                    e.param,
                    e.swing()
                );
            }
        }
    }

    #[test]
    fn vint_tops_the_chart() {
        // Table III rank 1 for every generation: internal voltage Vint.
        let s = reference_sweep();
        let top = s.top(10);
        assert_eq!(top[0].param, ParamId::Vint, "top is {:?}", top[0].param);
    }

    #[test]
    fn voltages_have_superlinear_effect() {
        // Power goes with V², so +20 % on Vint moves power more than +20 %
        // on a capacitance of the same share.
        let s = reference_sweep();
        let vint = s.of(ParamId::Vint).unwrap();
        assert!(vint.up > 0.0 && vint.down < 0.0);
        assert!(vint.swing() > s.of(ParamId::CWireSignal).unwrap().swing());
    }

    #[test]
    fn known_heavyweights_outrank_minor_knobs() {
        let s = reference_sweep();
        let swing = |p| s.of(p).unwrap().swing();
        assert!(swing(ParamId::BitlineCap) > swing(ParamId::CellCap));
        assert!(swing(ParamId::Vbl) > swing(ParamId::BlToWlShare));
        assert!(swing(ParamId::LogicGates) > swing(ParamId::PredecodeRatio));
    }

    #[test]
    fn efficiencies_move_power_inversely() {
        let s = reference_sweep();
        let eff = s.of(ParamId::EffVpp).unwrap();
        // Better pump -> less power.
        assert!(eff.up < 0.0, "eff up {}", eff.up);
        assert!(eff.down > 0.0, "eff down {}", eff.down);
    }

    #[test]
    fn ranked_is_sorted() {
        let s = reference_sweep();
        let r = s.ranked();
        for pair in r.windows(2) {
            assert!(pair[0].swing() >= pair[1].swing());
        }
        assert_eq!(r.len(), ParamId::ALL.len());
    }

    #[test]
    fn category_shares_sum_to_one() {
        let s = reference_sweep();
        let shares = s.category_shares();
        assert_eq!(shares.len(), 5);
        let total: f64 = shares.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // Electrical (the voltages) carries the largest share on DDR3.
        let electrical = shares
            .iter()
            .find(|(c, _)| *c == crate::ParamCategory::Electrical)
            .unwrap()
            .1;
        for (c, v) in &shares {
            assert!(
                electrical >= *v || *c == crate::ParamCategory::Electrical,
                "{c}"
            );
        }
    }

    #[test]
    fn baseline_is_positive() {
        let s = reference_sweep();
        assert!(s.baseline_watts > 0.05 && s.baseline_watts < 2.0);
        assert_eq!(s.variation, 0.2);
    }
}

/// Interaction of two parameters: how far the combined effect of varying
/// both deviates from composing their individual effects.
///
/// For multiplicative charge terms (`Q = C·V`) the model predicts power
/// ratios compose multiplicatively, so `interaction ≈ 0` for independent
/// parameters and grows where parameters multiply into the *same* terms
/// (e.g. a capacitance and the voltage of its rail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interaction {
    /// First parameter.
    pub a: ParamId,
    /// Second parameter.
    pub b: ParamId,
    /// Power ratio when both are increased together.
    pub joint: f64,
    /// Product of the individual power ratios.
    pub composed: f64,
}

impl Interaction {
    /// Relative deviation of the joint effect from composition:
    /// `joint/composed − 1`.
    #[must_use]
    pub fn strength(&self) -> f64 {
        self.joint / self.composed - 1.0
    }
}

/// Measures the interaction of two parameters at the given variation, on
/// the shared process-wide engine.
///
/// # Errors
///
/// Returns [`ModelError`] if any perturbed description fails validation.
pub fn interaction(
    desc: &DramDescription,
    a: ParamId,
    b: ParamId,
    variation: f64,
) -> Result<Interaction, ModelError> {
    interaction_with(EvalEngine::global(), desc, a, b, variation)
}

/// [`interaction`] on an explicit engine: the three perturbed models
/// evaluate concurrently.
///
/// # Errors
///
/// Returns [`ModelError`] if any perturbed description fails validation.
pub fn interaction_with(
    engine: &EvalEngine,
    desc: &DramDescription,
    a: ParamId,
    b: ParamId,
    variation: f64,
) -> Result<Interaction, ModelError> {
    let baseline = power_of(engine, desc)?;
    let factor = 1.0 + variation;

    let perts = [
        Perturbation::single(a, factor),
        Perturbation::single(b, factor),
        Perturbation::pair(a, factor, b, factor),
    ];
    let powers = engine.evaluate_perturbations(desc, &perts)?;
    let ra = powers[0].clone()?.power.watts() / baseline;
    let rb = powers[1].clone()?.power.watts() / baseline;
    let rab = powers[2].clone()?.power.watts() / baseline;

    Ok(Interaction {
        a,
        b,
        joint: rab,
        composed: ra * rb,
    })
}

/// The full pairwise interaction matrix over the in-chart parameters.
///
/// Until the batch engine existed this was too expensive to offer: all
/// ~N²/2 in-chart parameter pairs take ~700 model builds. On the engine
/// the single-parameter ratios are computed once and shared across every
/// pair, and the joint models evaluate in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionMatrix {
    /// The applied relative variation.
    pub variation: f64,
    /// Baseline workload power in watts.
    pub baseline_watts: f64,
    /// The parameters spanning the matrix, in [`ParamId::ALL`] order
    /// (Vdd excluded, as in the paper's Fig. 10 / Table III).
    pub params: Vec<ParamId>,
    /// One entry per unordered pair `(params[i], params[j])`, `i < j`,
    /// in lexicographic index order.
    pub entries: Vec<Interaction>,
}

impl InteractionMatrix {
    /// Looks up one pair's interaction (order-insensitive).
    #[must_use]
    pub fn of(&self, a: ParamId, b: ParamId) -> Option<Interaction> {
        self.entries
            .iter()
            .copied()
            .find(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
    }

    /// Entries sorted by descending absolute strength.
    #[must_use]
    pub fn ranked(&self) -> Vec<Interaction> {
        let mut v = self.entries.clone();
        v.sort_by(|x, y| y.strength().abs().total_cmp(&x.strength().abs()));
        v
    }

    /// The `n` most strongly interacting pairs.
    #[must_use]
    pub fn top(&self, n: usize) -> Vec<Interaction> {
        self.ranked().into_iter().take(n).collect()
    }
}

/// Computes the full pairwise interaction matrix at the given variation,
/// on the shared process-wide engine.
///
/// # Errors
///
/// Returns [`ModelError`] if any perturbed description fails validation.
pub fn interaction_matrix(
    desc: &DramDescription,
    variation: f64,
) -> Result<InteractionMatrix, ModelError> {
    interaction_matrix_with(EvalEngine::global(), desc, variation)
}

/// [`interaction_matrix`] on an explicit engine.
///
/// Every pair entry carries exactly the numbers a pairwise
/// [`interaction`] call would produce (same arithmetic, same reduction
/// order), so the matrix agrees bit-for-bit with individual calls. All
/// ~N²/2 evaluations run through the differential fast path
/// ([`EvalEngine::evaluate_perturbations`]), which re-runs only the
/// dirty build phases per pair — this is the hottest loop in the
/// workspace and the reason the fast path exists.
///
/// # Errors
///
/// Returns [`ModelError`] if any perturbed description fails validation.
pub fn interaction_matrix_with(
    engine: &EvalEngine,
    desc: &DramDescription,
    variation: f64,
) -> Result<InteractionMatrix, ModelError> {
    let baseline = power_of(engine, desc)?;
    let factor = 1.0 + variation;
    let params: Vec<ParamId> = ParamId::ALL
        .iter()
        .copied()
        .filter(|p| p.in_pareto_chart())
        .collect();

    // Single-parameter ratios, shared across every pair they appear in.
    let single_perts: Vec<Perturbation> = params
        .iter()
        .map(|&p| Perturbation::single(p, factor))
        .collect();
    let single_powers = engine.evaluate_perturbations(desc, &single_perts)?;
    let mut singles = Vec::with_capacity(params.len());
    for p in single_powers {
        singles.push(p?.power.watts() / baseline);
    }

    // Joint evaluations for every unordered pair, in parallel.
    let pairs: Vec<(usize, usize)> = (0..params.len())
        .flat_map(|i| (i + 1..params.len()).map(move |j| (i, j)))
        .collect();
    let pair_perts: Vec<Perturbation> = pairs
        .iter()
        .map(|&(i, j)| Perturbation::pair(params[i], factor, params[j], factor))
        .collect();
    let pair_powers = engine.evaluate_perturbations(desc, &pair_perts)?;

    let mut entries = Vec::with_capacity(pairs.len());
    for (&(i, j), power) in pairs.iter().zip(pair_powers) {
        entries.push(Interaction {
            a: params[i],
            b: params[j],
            joint: power?.power.watts() / baseline,
            composed: singles[i] * singles[j],
        });
    }
    Ok(InteractionMatrix {
        variation,
        baseline_watts: baseline,
        params,
        entries,
    })
}

/// [`interaction_matrix_with`] through full model rebuilds — the
/// reference path benchmarks and CI compare the differential matrix
/// against. Production callers should prefer
/// [`interaction_matrix_with`].
///
/// # Errors
///
/// Returns [`ModelError`] if any perturbed description fails validation.
pub fn interaction_matrix_with_full_rebuild(
    engine: &EvalEngine,
    desc: &DramDescription,
    variation: f64,
) -> Result<InteractionMatrix, ModelError> {
    let baseline = power_of(engine, desc)?;
    let factor = 1.0 + variation;
    let params: Vec<ParamId> = ParamId::ALL
        .iter()
        .copied()
        .filter(|p| p.in_pareto_chart())
        .collect();

    let single_descs: Vec<DramDescription> = params
        .iter()
        .map(|&p| perturbed(desc, p, factor))
        .collect();
    let single_powers = engine.map(&single_descs, |d| power_of(engine, d));
    let mut singles = Vec::with_capacity(params.len());
    for p in single_powers {
        singles.push(p? / baseline);
    }

    let pairs: Vec<(usize, usize)> = (0..params.len())
        .flat_map(|i| (i + 1..params.len()).map(move |j| (i, j)))
        .collect();
    let pair_descs: Vec<DramDescription> = pairs
        .iter()
        .map(|&(i, j)| {
            let mut d = desc.clone();
            params[i].apply(&mut d, factor);
            params[j].apply(&mut d, factor);
            d
        })
        .collect();
    let pair_powers = engine.map(&pair_descs, |d| power_of(engine, d));

    let mut entries = Vec::with_capacity(pairs.len());
    for (&(i, j), power) in pairs.iter().zip(pair_powers) {
        entries.push(Interaction {
            a: params[i],
            b: params[j],
            joint: power? / baseline,
            composed: singles[i] * singles[j],
        });
    }
    Ok(InteractionMatrix {
        variation,
        baseline_watts: baseline,
        params,
        entries,
    })
}

#[cfg(test)]
mod interaction_tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    #[test]
    fn coupled_parameters_interact_positively() {
        // Bitline capacitance and bitline voltage multiply into the same
        // charge terms: raising both beats composing the separate
        // effects.
        let desc = ddr3_1g_x16_55nm();
        let i = interaction(&desc, ParamId::BitlineCap, ParamId::Vbl, 0.2).expect("runs");
        assert!(i.strength() > 0.002, "strength {}", i.strength());
    }

    #[test]
    fn disjoint_parameters_barely_interact() {
        // The constant current sink and the bitline capacitance touch
        // disjoint terms.
        let desc = ddr3_1g_x16_55nm();
        let i =
            interaction(&desc, ParamId::ConstantCurrent, ParamId::BitlineCap, 0.2).expect("runs");
        assert!(i.strength().abs() < 0.004, "strength {}", i.strength());
    }

    #[test]
    fn interaction_is_symmetric() {
        let desc = ddr3_1g_x16_55nm();
        let ab = interaction(&desc, ParamId::Vint, ParamId::LogicGates, 0.2).expect("runs");
        let ba = interaction(&desc, ParamId::LogicGates, ParamId::Vint, 0.2).expect("runs");
        assert!((ab.joint - ba.joint).abs() < 1e-12);
        assert!((ab.strength() - ba.strength()).abs() < 1e-12);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    /// Parallel sweep output must be bit-for-bit equal to `threads(1)`,
    /// whatever the worker count.
    #[test]
    fn sweep_is_bit_identical_across_thread_counts() {
        let desc = ddr3_1g_x16_55nm();
        let serial = sweep_with(&EvalEngine::new().threads(1), &desc, 0.2).expect("runs");
        for n in [2, 4, 16] {
            let parallel = sweep_with(&EvalEngine::new().threads(n), &desc, 0.2).expect("runs");
            assert_eq!(serial.baseline_watts.to_bits(), parallel.baseline_watts.to_bits());
            for (a, b) in serial.entries.iter().zip(&parallel.entries) {
                assert_eq!(a.param, b.param);
                assert_eq!(a.up.to_bits(), b.up.to_bits(), "{} threads={n}", a.param);
                assert_eq!(a.down.to_bits(), b.down.to_bits(), "{} threads={n}", a.param);
            }
        }
    }

    /// Same for the pairwise interaction helper.
    #[test]
    fn interaction_is_bit_identical_across_thread_counts() {
        let desc = ddr3_1g_x16_55nm();
        let serial = interaction_with(
            &EvalEngine::new().threads(1),
            &desc,
            ParamId::BitlineCap,
            ParamId::Vbl,
            0.2,
        )
        .expect("runs");
        let parallel = interaction_with(
            &EvalEngine::new().threads(8),
            &desc,
            ParamId::BitlineCap,
            ParamId::Vbl,
            0.2,
        )
        .expect("runs");
        assert_eq!(serial.joint.to_bits(), parallel.joint.to_bits());
        assert_eq!(serial.composed.to_bits(), parallel.composed.to_bits());
    }

    /// A second sweep on the same engine rebuilds nothing.
    #[test]
    fn repeated_sweep_is_fully_cached() {
        let engine = EvalEngine::new();
        let desc = ddr3_1g_x16_55nm();
        let first = sweep_with(&engine, &desc, 0.2).expect("runs");
        let misses = engine.cache_stats().misses;
        let second = sweep_with(&engine, &desc, 0.2).expect("runs");
        assert_eq!(engine.cache_stats().misses, misses, "second sweep rebuilt models");
        assert_eq!(first, second);
    }

    /// The matrix spans every unordered in-chart pair exactly once.
    #[test]
    fn matrix_covers_all_in_chart_pairs() {
        let desc = ddr3_1g_x16_55nm();
        let m = interaction_matrix(&desc, 0.2).expect("runs");
        let n = ParamId::ALL.iter().filter(|p| p.in_pareto_chart()).count();
        assert_eq!(m.params.len(), n);
        assert_eq!(m.entries.len(), n * (n - 1) / 2);
        // Every pair present, order-insensitively, no duplicates.
        for (i, &a) in m.params.iter().enumerate() {
            for &b in &m.params[i + 1..] {
                let hits = m
                    .entries
                    .iter()
                    .filter(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
                    .count();
                assert_eq!(hits, 1, "{a} × {b}");
            }
        }
        assert!(m.of(ParamId::Vdd, ParamId::Vint).is_none(), "Vdd is off-chart");
    }

    /// Matrix entries agree bit-for-bit with pairwise `interaction()`.
    #[test]
    fn matrix_agrees_with_pairwise_interaction() {
        let desc = ddr3_1g_x16_55nm();
        let engine = EvalEngine::new();
        let m = interaction_matrix_with(&engine, &desc, 0.2).expect("runs");
        // Spot-check a spread of pairs (first, middle, last, and the
        // physically coupled bitline pair) against individual calls.
        let picks = [
            (m.entries[0].a, m.entries[0].b),
            (m.entries[m.entries.len() / 2].a, m.entries[m.entries.len() / 2].b),
            (m.entries[m.entries.len() - 1].a, m.entries[m.entries.len() - 1].b),
            (ParamId::BitlineCap, ParamId::Vbl),
        ];
        for (a, b) in picks {
            let pairwise = interaction_with(&engine, &desc, a, b, 0.2).expect("runs");
            let entry = m.of(a, b).expect("pair in matrix");
            assert_eq!(entry.joint.to_bits(), pairwise.joint.to_bits(), "{a} × {b}");
            assert_eq!(
                entry.composed.to_bits(),
                pairwise.composed.to_bits(),
                "{a} × {b}"
            );
        }
    }

    /// The known physics shows up in the matrix: the bitline cap/voltage
    /// coupling ranks far above a disjoint pair.
    #[test]
    fn matrix_ranks_coupled_pairs_above_disjoint_ones() {
        let desc = ddr3_1g_x16_55nm();
        let m = interaction_matrix(&desc, 0.2).expect("runs");
        let coupled = m.of(ParamId::BitlineCap, ParamId::Vbl).unwrap();
        let disjoint = m.of(ParamId::ConstantCurrent, ParamId::BitlineCap).unwrap();
        assert!(
            coupled.strength().abs() > disjoint.strength().abs(),
            "coupled {} vs disjoint {}",
            coupled.strength(),
            disjoint.strength()
        );
        let top = m.top(5);
        assert_eq!(top.len(), 5);
        for pair in top.windows(2) {
            assert!(pair[0].strength().abs() >= pair[1].strength().abs());
        }
    }

    /// The differential fast path reproduces the full-rebuild sweep
    /// bit-for-bit, at 1 and 8 threads (the tentpole identity contract).
    #[test]
    fn differential_sweep_matches_full_rebuild_bitwise() {
        let desc = ddr3_1g_x16_55nm();
        for n in [1, 8] {
            let fast = sweep_with(&EvalEngine::new().threads(n), &desc, 0.2).expect("runs");
            let full = sweep_with_full_rebuild(&EvalEngine::new().threads(n), &desc, 0.2)
                .expect("runs");
            assert_eq!(fast.baseline_watts.to_bits(), full.baseline_watts.to_bits());
            for (a, b) in fast.entries.iter().zip(&full.entries) {
                assert_eq!(a.param, b.param);
                assert_eq!(a.up.to_bits(), b.up.to_bits(), "{} threads={n}", a.param);
                assert_eq!(a.down.to_bits(), b.down.to_bits(), "{} threads={n}", a.param);
            }
        }
    }

    /// Same contract for the all-pairs interaction matrix.
    #[test]
    fn differential_matrix_matches_full_rebuild_bitwise() {
        let desc = ddr3_1g_x16_55nm();
        let fast = interaction_matrix_with(&EvalEngine::new(), &desc, 0.2).expect("runs");
        let full =
            interaction_matrix_with_full_rebuild(&EvalEngine::new(), &desc, 0.2).expect("runs");
        assert_eq!(fast.params, full.params);
        assert_eq!(fast.entries.len(), full.entries.len());
        for (a, b) in fast.entries.iter().zip(&full.entries) {
            assert_eq!((a.a, a.b), (b.a, b.b));
            assert_eq!(a.joint.to_bits(), b.joint.to_bits(), "{} × {}", a.a, a.b);
            assert_eq!(a.composed.to_bits(), b.composed.to_bits(), "{} × {}", a.a, a.b);
        }
    }

    /// The matrix itself is reproducible across thread counts.
    #[test]
    fn matrix_is_bit_identical_across_thread_counts() {
        let desc = ddr3_1g_x16_55nm();
        let serial = interaction_matrix_with(&EvalEngine::new().threads(1), &desc, 0.2)
            .expect("runs");
        let parallel = interaction_matrix_with(&EvalEngine::new().threads(4), &desc, 0.2)
            .expect("runs");
        assert_eq!(serial.entries.len(), parallel.entries.len());
        for (a, b) in serial.entries.iter().zip(&parallel.entries) {
            assert_eq!(a.a, b.a);
            assert_eq!(a.b, b.b);
            assert_eq!(a.joint.to_bits(), b.joint.to_bits(), "{} × {}", a.a, a.b);
            assert_eq!(a.composed.to_bits(), b.composed.to_bits(), "{} × {}", a.a, a.b);
        }
    }
}
