//! The ±variation sensitivity sweep of §IV.B: perturb each parameter,
//! re-evaluate the mixed activate/read/write/precharge workload ("an
//! Idd7 pattern but with half of the read operations replaced by write
//! operations"), and rank by impact.

use dram_core::{Dram, DramDescription, ModelError};

use crate::params::ParamId;

/// Sensitivity of the workload power to one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sensitivity {
    /// The perturbed parameter.
    pub param: ParamId,
    /// Relative power change when the parameter is increased by the
    /// variation (e.g. `+0.12` = +12 %).
    pub up: f64,
    /// Relative power change when the parameter is decreased.
    pub down: f64,
}

impl Sensitivity {
    /// Total swing of the tornado bar: `|up − down|`. A parameter the
    /// power is directly proportional to shows a swing of twice the
    /// variation (the paper's "40 %" remark for Vdd at ±20 %).
    #[must_use]
    pub fn swing(&self) -> f64 {
        (self.up - self.down).abs()
    }
}

/// Result of a full sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The applied relative variation (0.2 = ±20 %).
    pub variation: f64,
    /// Baseline workload power in watts.
    pub baseline_watts: f64,
    /// Per-parameter sensitivities, in [`ParamId::ALL`] order.
    pub entries: Vec<Sensitivity>,
}

impl Sweep {
    /// Entries sorted by descending swing (the Pareto order of Fig. 10).
    #[must_use]
    pub fn ranked(&self) -> Vec<Sensitivity> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.swing().total_cmp(&a.swing()));
        v
    }

    /// The top `n` chart parameters (Vdd excluded, as in the paper's
    /// Fig. 10 / Table III).
    #[must_use]
    pub fn top(&self, n: usize) -> Vec<Sensitivity> {
        self.ranked()
            .into_iter()
            .filter(|s| s.param.in_pareto_chart())
            .take(n)
            .collect()
    }

    /// Looks up one parameter's sensitivity.
    #[must_use]
    pub fn of(&self, param: ParamId) -> Option<Sensitivity> {
        self.entries.iter().copied().find(|s| s.param == param)
    }

    /// Aggregate swing per Table I parameter group, as a share of the
    /// total swing (Vdd excluded, as in the chart).
    #[must_use]
    pub fn category_shares(&self) -> Vec<(crate::ParamCategory, f64)> {
        use std::collections::BTreeMap;
        let mut totals: BTreeMap<&'static str, (crate::ParamCategory, f64)> = BTreeMap::new();
        let mut grand = 0.0;
        for e in &self.entries {
            if !e.param.in_pareto_chart() {
                continue;
            }
            let cat = e.param.category();
            let key = match cat {
                crate::ParamCategory::Electrical => "electrical",
                crate::ParamCategory::Technology => "technology",
                crate::ParamCategory::Floorplan => "floorplan",
                crate::ParamCategory::Logic => "logic",
                crate::ParamCategory::Signaling => "signaling",
            };
            totals.entry(key).or_insert((cat, 0.0)).1 += e.swing();
            grand += e.swing();
        }
        totals
            .into_values()
            .map(|(cat, swing)| (cat, if grand > 0.0 { swing / grand } else { 0.0 }))
            .collect()
    }
}

fn workload_power(desc: DramDescription) -> Result<f64, ModelError> {
    let dram = Dram::new(desc)?;
    Ok(dram.mixed_workload_power().power.watts())
}

/// Runs the sensitivity sweep on a device at the given relative variation
/// (the paper uses ±20 %).
///
/// # Errors
///
/// Returns [`ModelError`] if the base description is invalid or a
/// perturbed description fails validation.
pub fn sweep(desc: &DramDescription, variation: f64) -> Result<Sweep, ModelError> {
    let baseline = workload_power(desc.clone())?;
    let mut entries = Vec::with_capacity(ParamId::ALL.len());
    for param in ParamId::ALL {
        let mut up_desc = desc.clone();
        param.apply(&mut up_desc, 1.0 + variation);
        let up = workload_power(up_desc)? / baseline - 1.0;

        let mut down_desc = desc.clone();
        param.apply(&mut down_desc, 1.0 - variation);
        let down = workload_power(down_desc)? / baseline - 1.0;

        entries.push(Sensitivity { param, up, down });
    }
    Ok(Sweep {
        variation,
        baseline_watts: baseline,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    fn reference_sweep() -> Sweep {
        sweep(&ddr3_1g_x16_55nm(), 0.2).expect("sweep runs")
    }

    #[test]
    fn vdd_swing_is_forty_percent() {
        // "A variation of 40% would mean that the power consumption is
        // directly proportional ... This is only the case for the external
        // supply voltage Vdd" (§IV.B).
        let s = reference_sweep();
        let vdd = s.of(ParamId::Vdd).unwrap();
        assert!(
            (vdd.swing() - 0.40).abs() < 0.02,
            "Vdd swing {}",
            vdd.swing()
        );
        // Every other parameter influences only part of the power.
        for e in &s.entries {
            if e.param != ParamId::Vdd {
                assert!(
                    e.swing() < vdd.swing() + 1e-9,
                    "{} swing {}",
                    e.param,
                    e.swing()
                );
            }
        }
    }

    #[test]
    fn vint_tops_the_chart() {
        // Table III rank 1 for every generation: internal voltage Vint.
        let s = reference_sweep();
        let top = s.top(10);
        assert_eq!(top[0].param, ParamId::Vint, "top is {:?}", top[0].param);
    }

    #[test]
    fn voltages_have_superlinear_effect() {
        // Power goes with V², so +20 % on Vint moves power more than +20 %
        // on a capacitance of the same share.
        let s = reference_sweep();
        let vint = s.of(ParamId::Vint).unwrap();
        assert!(vint.up > 0.0 && vint.down < 0.0);
        assert!(vint.swing() > s.of(ParamId::CWireSignal).unwrap().swing());
    }

    #[test]
    fn known_heavyweights_outrank_minor_knobs() {
        let s = reference_sweep();
        let swing = |p| s.of(p).unwrap().swing();
        assert!(swing(ParamId::BitlineCap) > swing(ParamId::CellCap));
        assert!(swing(ParamId::Vbl) > swing(ParamId::BlToWlShare));
        assert!(swing(ParamId::LogicGates) > swing(ParamId::PredecodeRatio));
    }

    #[test]
    fn efficiencies_move_power_inversely() {
        let s = reference_sweep();
        let eff = s.of(ParamId::EffVpp).unwrap();
        // Better pump -> less power.
        assert!(eff.up < 0.0, "eff up {}", eff.up);
        assert!(eff.down > 0.0, "eff down {}", eff.down);
    }

    #[test]
    fn ranked_is_sorted() {
        let s = reference_sweep();
        let r = s.ranked();
        for pair in r.windows(2) {
            assert!(pair[0].swing() >= pair[1].swing());
        }
        assert_eq!(r.len(), ParamId::ALL.len());
    }

    #[test]
    fn category_shares_sum_to_one() {
        let s = reference_sweep();
        let shares = s.category_shares();
        assert_eq!(shares.len(), 5);
        let total: f64 = shares.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // Electrical (the voltages) carries the largest share on DDR3.
        let electrical = shares
            .iter()
            .find(|(c, _)| *c == crate::ParamCategory::Electrical)
            .unwrap()
            .1;
        for (c, v) in &shares {
            assert!(
                electrical >= *v || *c == crate::ParamCategory::Electrical,
                "{c}"
            );
        }
    }

    #[test]
    fn baseline_is_positive() {
        let s = reference_sweep();
        assert!(s.baseline_watts > 0.05 && s.baseline_watts < 2.0);
        assert_eq!(s.variation, 0.2);
    }
}

/// Interaction of two parameters: how far the combined effect of varying
/// both deviates from composing their individual effects.
///
/// For multiplicative charge terms (`Q = C·V`) the model predicts power
/// ratios compose multiplicatively, so `interaction ≈ 0` for independent
/// parameters and grows where parameters multiply into the *same* terms
/// (e.g. a capacitance and the voltage of its rail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interaction {
    /// First parameter.
    pub a: ParamId,
    /// Second parameter.
    pub b: ParamId,
    /// Power ratio when both are increased together.
    pub joint: f64,
    /// Product of the individual power ratios.
    pub composed: f64,
}

impl Interaction {
    /// Relative deviation of the joint effect from composition:
    /// `joint/composed − 1`.
    #[must_use]
    pub fn strength(&self) -> f64 {
        self.joint / self.composed - 1.0
    }
}

/// Measures the interaction of two parameters at the given variation.
///
/// # Errors
///
/// Returns [`ModelError`] if any perturbed description fails validation.
pub fn interaction(
    desc: &DramDescription,
    a: ParamId,
    b: ParamId,
    variation: f64,
) -> Result<Interaction, ModelError> {
    let baseline = workload_power(desc.clone())?;
    let factor = 1.0 + variation;

    let mut da = desc.clone();
    a.apply(&mut da, factor);
    let ra = workload_power(da)? / baseline;

    let mut db = desc.clone();
    b.apply(&mut db, factor);
    let rb = workload_power(db)? / baseline;

    let mut dab = desc.clone();
    a.apply(&mut dab, factor);
    b.apply(&mut dab, factor);
    let rab = workload_power(dab)? / baseline;

    Ok(Interaction {
        a,
        b,
        joint: rab,
        composed: ra * rb,
    })
}

#[cfg(test)]
mod interaction_tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    #[test]
    fn coupled_parameters_interact_positively() {
        // Bitline capacitance and bitline voltage multiply into the same
        // charge terms: raising both beats composing the separate
        // effects.
        let desc = ddr3_1g_x16_55nm();
        let i = interaction(&desc, ParamId::BitlineCap, ParamId::Vbl, 0.2).expect("runs");
        assert!(i.strength() > 0.002, "strength {}", i.strength());
    }

    #[test]
    fn disjoint_parameters_barely_interact() {
        // The constant current sink and the bitline capacitance touch
        // disjoint terms.
        let desc = ddr3_1g_x16_55nm();
        let i =
            interaction(&desc, ParamId::ConstantCurrent, ParamId::BitlineCap, 0.2).expect("runs");
        assert!(i.strength().abs() < 0.004, "strength {}", i.strength());
    }

    #[test]
    fn interaction_is_symmetric() {
        let desc = ddr3_1g_x16_55nm();
        let ab = interaction(&desc, ParamId::Vint, ParamId::LogicGates, 0.2).expect("runs");
        let ba = interaction(&desc, ParamId::LogicGates, ParamId::Vint, 0.2).expect("runs");
        assert!((ab.joint - ba.joint).abs() < 1e-12);
        assert!((ab.strength() - ba.strength()).abs() < 1e-12);
    }
}
