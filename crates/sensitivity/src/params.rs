//! The perturbable-parameter registry: every scalar model input of
//! Table I that the §IV.B Pareto varies, addressable by a stable
//! identifier and applied as a multiplicative factor.

use dram_core::params::DramDescription;

/// Input group of a perturbable parameter (the Table I grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamCategory {
    /// Voltage domains, efficiencies and static current.
    Electrical,
    /// Process technology parameters.
    Technology,
    /// Physical floorplan dimensions.
    Floorplan,
    /// Miscellaneous peripheral logic blocks.
    Logic,
    /// Signaling floorplan (toggle rates, re-drivers).
    Signaling,
}

impl core::fmt::Display for ParamCategory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ParamCategory::Electrical => "electrical",
            ParamCategory::Technology => "technology",
            ParamCategory::Floorplan => "floorplan",
            ParamCategory::Logic => "logic",
            ParamCategory::Signaling => "signaling",
        };
        f.write_str(s)
    }
}

/// A perturbable model parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamId {
    // --- electrical -----------------------------------------------------
    /// External supply voltage (excluded from the Fig. 10 chart: power is
    /// directly proportional to it, as the paper notes).
    Vdd,
    /// Internal logic voltage Vint.
    Vint,
    /// Bitline voltage Vbl.
    Vbl,
    /// Wordline boost voltage Vpp.
    Vpp,
    /// Vint generator efficiency.
    EffVint,
    /// Vbl generator efficiency.
    EffVbl,
    /// Vpp pump efficiency.
    EffVpp,
    /// Constant current adder.
    ConstantCurrent,
    // --- technology -------------------------------------------------------
    /// Gate oxide thickness, logic.
    ToxLogic,
    /// Gate oxide thickness, high-voltage devices.
    ToxHighVoltage,
    /// Gate oxide thickness, cell access transistor.
    ToxCell,
    /// Minimum channel length, logic.
    LminLogic,
    /// Minimum channel length, high-voltage devices.
    LminHighVoltage,
    /// Junction capacitance per width, logic.
    JunctionCapLogic,
    /// Junction capacitance per width, high-voltage.
    JunctionCapHighVoltage,
    /// Cell access transistor width.
    CellAccessWidth,
    /// Cell access transistor length.
    CellAccessLength,
    /// Bitline capacitance.
    BitlineCap,
    /// Cell capacitance.
    CellCap,
    /// Bitline-to-wordline coupling share.
    BlToWlShare,
    /// Specific wire capacitance, master wordline.
    CWireMwl,
    /// Specific wire capacitance, local wordline.
    CWireLwl,
    /// Specific wire capacitance, signaling wires.
    CWireSignal,
    /// Master wordline pre-decode ratio.
    PredecodeRatio,
    /// Master wordline decoder switching activity.
    MwlDecoderSwitching,
    /// Master wordline decoder device widths.
    MwlDecoderWidth,
    /// Wordline controller load device widths.
    WlControllerWidth,
    /// Sub-wordline driver device widths.
    SwdWidth,
    /// Sense-amplifier device widths (sense pairs, equalize, switches,
    /// set drivers).
    SenseAmpDeviceWidth,
    // --- floorplan ---------------------------------------------------------
    /// Sense-amplifier stripe width.
    SaStripeWidth,
    /// Local wordline driver stripe width.
    LwdStripeWidth,
    // --- peripheral logic ----------------------------------------------------
    /// Number of logic gates (all miscellaneous blocks).
    LogicGates,
    /// Width of NFET logic devices.
    LogicNmosWidth,
    /// Width of PFET logic devices.
    LogicPmosWidth,
    /// Logic layout (gate) density.
    LogicGateDensity,
    /// Logic wiring density.
    LogicWiringDensity,
    // --- signaling -------------------------------------------------------------
    /// Toggle rates of the signaling buses.
    SignalToggleRate,
    /// Re-driver (buffer) device widths in the signaling floorplan.
    BufferWidth,
}

impl ParamId {
    /// Every perturbable parameter.
    pub const ALL: [ParamId; 38] = [
        ParamId::Vdd,
        ParamId::Vint,
        ParamId::Vbl,
        ParamId::Vpp,
        ParamId::EffVint,
        ParamId::EffVbl,
        ParamId::EffVpp,
        ParamId::ConstantCurrent,
        ParamId::ToxLogic,
        ParamId::ToxHighVoltage,
        ParamId::ToxCell,
        ParamId::LminLogic,
        ParamId::LminHighVoltage,
        ParamId::JunctionCapLogic,
        ParamId::JunctionCapHighVoltage,
        ParamId::CellAccessWidth,
        ParamId::CellAccessLength,
        ParamId::BitlineCap,
        ParamId::CellCap,
        ParamId::BlToWlShare,
        ParamId::CWireMwl,
        ParamId::CWireLwl,
        ParamId::CWireSignal,
        ParamId::PredecodeRatio,
        ParamId::MwlDecoderSwitching,
        ParamId::MwlDecoderWidth,
        ParamId::WlControllerWidth,
        ParamId::SwdWidth,
        ParamId::SenseAmpDeviceWidth,
        ParamId::SaStripeWidth,
        ParamId::LwdStripeWidth,
        ParamId::LogicGates,
        ParamId::LogicNmosWidth,
        ParamId::LogicPmosWidth,
        ParamId::LogicGateDensity,
        ParamId::LogicWiringDensity,
        ParamId::SignalToggleRate,
        ParamId::BufferWidth,
    ];

    /// Human-readable name matching the Table III row labels where the
    /// paper names the parameter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ParamId::Vdd => "External voltage Vdd",
            ParamId::Vint => "Internal voltage Vint",
            ParamId::Vbl => "Bitline voltage",
            ParamId::Vpp => "Wordline voltage",
            ParamId::EffVint => "Generator efficiency Vint",
            ParamId::EffVbl => "Generator efficiency Vbl",
            ParamId::EffVpp => "Pump efficiency Vpp",
            ParamId::ConstantCurrent => "Constant current adder",
            ParamId::ToxLogic => "Gate oxide thickness",
            ParamId::ToxHighVoltage => "Gate oxide thickness HV",
            ParamId::ToxCell => "Gate oxide thickness cell",
            ParamId::LminLogic => "Min gate length logic",
            ParamId::LminHighVoltage => "Min gate length HV",
            ParamId::JunctionCapLogic => "Junction capacitance logic",
            ParamId::JunctionCapHighVoltage => "Junction capacitance HV",
            ParamId::CellAccessWidth => "Access transistor width",
            ParamId::CellAccessLength => "Access transistor length",
            ParamId::BitlineCap => "Bitline capacitance",
            ParamId::CellCap => "Cell capacitance",
            ParamId::BlToWlShare => "BL-to-WL coupling share",
            ParamId::CWireMwl => "Wire capacitance master wordline",
            ParamId::CWireLwl => "Wire capacitance sub-wordline",
            ParamId::CWireSignal => "Specific wire capacitance",
            ParamId::PredecodeRatio => "Pre-decode ratio",
            ParamId::MwlDecoderSwitching => "MWL decoder switching",
            ParamId::MwlDecoderWidth => "MWL decoder width",
            ParamId::WlControllerWidth => "WL controller width",
            ParamId::SwdWidth => "Sub-wordline driver width",
            ParamId::SenseAmpDeviceWidth => "Sense amplifier device width",
            ParamId::SaStripeWidth => "SA stripe width",
            ParamId::LwdStripeWidth => "LWD stripe width",
            ParamId::LogicGates => "Number of logic gates",
            ParamId::LogicNmosWidth => "Width NFET logic",
            ParamId::LogicPmosWidth => "Width PFET logic",
            ParamId::LogicGateDensity => "Logic device density",
            ParamId::LogicWiringDensity => "Logic wiring density",
            ParamId::SignalToggleRate => "Signal toggle rate",
            ParamId::BufferWidth => "Re-driver width",
        }
    }

    /// The Table I group this parameter belongs to.
    #[must_use]
    pub fn category(self) -> ParamCategory {
        match self {
            ParamId::Vdd
            | ParamId::Vint
            | ParamId::Vbl
            | ParamId::Vpp
            | ParamId::EffVint
            | ParamId::EffVbl
            | ParamId::EffVpp
            | ParamId::ConstantCurrent => ParamCategory::Electrical,
            ParamId::ToxLogic
            | ParamId::ToxHighVoltage
            | ParamId::ToxCell
            | ParamId::LminLogic
            | ParamId::LminHighVoltage
            | ParamId::JunctionCapLogic
            | ParamId::JunctionCapHighVoltage
            | ParamId::CellAccessWidth
            | ParamId::CellAccessLength
            | ParamId::BitlineCap
            | ParamId::CellCap
            | ParamId::BlToWlShare
            | ParamId::CWireMwl
            | ParamId::CWireLwl
            | ParamId::CWireSignal
            | ParamId::PredecodeRatio
            | ParamId::MwlDecoderSwitching
            | ParamId::MwlDecoderWidth
            | ParamId::WlControllerWidth
            | ParamId::SwdWidth
            | ParamId::SenseAmpDeviceWidth => ParamCategory::Technology,
            ParamId::SaStripeWidth | ParamId::LwdStripeWidth => ParamCategory::Floorplan,
            ParamId::LogicGates
            | ParamId::LogicNmosWidth
            | ParamId::LogicPmosWidth
            | ParamId::LogicGateDensity
            | ParamId::LogicWiringDensity => ParamCategory::Logic,
            ParamId::SignalToggleRate | ParamId::BufferWidth => ParamCategory::Signaling,
        }
    }

    /// Whether the Fig. 10 chart includes this parameter (the paper plots
    /// everything except the external supply, whose effect is exactly
    /// proportional).
    #[must_use]
    pub fn in_pareto_chart(self) -> bool {
        self != ParamId::Vdd
    }

    /// Applies a multiplicative factor to this parameter.
    pub fn apply(self, desc: &mut DramDescription, factor: f64) {
        let e = &mut desc.electrical;
        let t = &mut desc.technology;
        let fp = &mut desc.floorplan;
        match self {
            ParamId::Vdd => e.vdd = e.vdd * factor,
            ParamId::Vint => e.vint = e.vint * factor,
            ParamId::Vbl => e.vbl = e.vbl * factor,
            ParamId::Vpp => e.vpp = e.vpp * factor,
            ParamId::EffVint => e.eff_vint = (e.eff_vint * factor).min(1.0),
            ParamId::EffVbl => e.eff_vbl = (e.eff_vbl * factor).min(1.0),
            ParamId::EffVpp => e.eff_vpp = (e.eff_vpp * factor).min(1.0),
            ParamId::ConstantCurrent => e.constant_current = e.constant_current * factor,
            ParamId::ToxLogic => t.tox_logic = t.tox_logic * factor,
            ParamId::ToxHighVoltage => t.tox_high_voltage = t.tox_high_voltage * factor,
            ParamId::ToxCell => t.tox_cell = t.tox_cell * factor,
            ParamId::LminLogic => t.lmin_logic = t.lmin_logic * factor,
            ParamId::LminHighVoltage => t.lmin_high_voltage = t.lmin_high_voltage * factor,
            ParamId::JunctionCapLogic => {
                t.junction_cap_logic = t.junction_cap_logic * factor;
            }
            ParamId::JunctionCapHighVoltage => {
                t.junction_cap_high_voltage = t.junction_cap_high_voltage * factor;
            }
            ParamId::CellAccessWidth => t.cell_access_width = t.cell_access_width * factor,
            ParamId::CellAccessLength => t.cell_access_length = t.cell_access_length * factor,
            ParamId::BitlineCap => t.bitline_cap = t.bitline_cap * factor,
            ParamId::CellCap => t.cell_cap = t.cell_cap * factor,
            ParamId::BlToWlShare => {
                t.bl_to_wl_cap_share = (t.bl_to_wl_cap_share * factor).min(1.0);
            }
            ParamId::CWireMwl => t.c_wire_mwl = t.c_wire_mwl * factor,
            ParamId::CWireLwl => t.c_wire_lwl = t.c_wire_lwl * factor,
            ParamId::CWireSignal => t.c_wire_signal = t.c_wire_signal * factor,
            ParamId::PredecodeRatio => {
                t.mwl_predecode_ratio = (t.mwl_predecode_ratio * factor).min(1.0);
            }
            ParamId::MwlDecoderSwitching => t.mwl_decoder_switching *= factor,
            ParamId::MwlDecoderWidth => {
                t.mwl_decoder_nmos_width = t.mwl_decoder_nmos_width * factor;
                t.mwl_decoder_pmos_width = t.mwl_decoder_pmos_width * factor;
            }
            ParamId::WlControllerWidth => {
                t.wl_controller_nmos_width = t.wl_controller_nmos_width * factor;
                t.wl_controller_pmos_width = t.wl_controller_pmos_width * factor;
            }
            ParamId::SwdWidth => {
                t.swd_nmos_width = t.swd_nmos_width * factor;
                t.swd_pmos_width = t.swd_pmos_width * factor;
                t.swd_restore_nmos_width = t.swd_restore_nmos_width * factor;
            }
            ParamId::SenseAmpDeviceWidth => {
                for d in [
                    &mut t.sa_nmos_sense,
                    &mut t.sa_pmos_sense,
                    &mut t.sa_equalize,
                    &mut t.sa_bit_switch,
                    &mut t.sa_bitline_mux,
                    &mut t.sa_nset,
                    &mut t.sa_pset,
                ] {
                    d.width = d.width * factor;
                }
            }
            ParamId::SaStripeWidth => fp.sa_stripe_width = fp.sa_stripe_width * factor,
            ParamId::LwdStripeWidth => fp.lwd_stripe_width = fp.lwd_stripe_width * factor,
            ParamId::LogicGates => {
                for b in &mut desc.logic_blocks {
                    b.gates = ((f64::from(b.gates) * factor).round() as u32).max(1);
                }
            }
            ParamId::LogicNmosWidth => {
                for b in &mut desc.logic_blocks {
                    b.avg_nmos_width = b.avg_nmos_width * factor;
                }
            }
            ParamId::LogicPmosWidth => {
                for b in &mut desc.logic_blocks {
                    b.avg_pmos_width = b.avg_pmos_width * factor;
                }
            }
            ParamId::LogicGateDensity => {
                for b in &mut desc.logic_blocks {
                    b.gate_density = (b.gate_density * factor).min(1.0);
                }
            }
            ParamId::LogicWiringDensity => {
                for b in &mut desc.logic_blocks {
                    b.wiring_density = (b.wiring_density * factor).min(1.0);
                }
            }
            ParamId::SignalToggleRate => {
                for s in &mut desc.signaling.signals {
                    s.toggle_rate *= factor;
                }
            }
            ParamId::BufferWidth => {
                use dram_core::params::SegmentSpec;
                for s in &mut desc.signaling.signals {
                    for seg in &mut s.segments {
                        let buffer = match seg {
                            SegmentSpec::Between { buffer, .. }
                            | SegmentSpec::Inside { buffer, .. } => buffer,
                        };
                        if let Some(b) = buffer {
                            b.nmos_width = b.nmos_width * factor;
                            b.pmos_width = b.pmos_width * factor;
                        }
                    }
                }
            }
        }
    }
}

impl core::fmt::Display for ParamId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    #[test]
    fn all_list_is_deduplicated() {
        let mut seen = std::collections::HashSet::new();
        for p in ParamId::ALL {
            assert!(seen.insert(p), "{p} duplicated");
        }
    }

    #[test]
    fn every_parameter_changes_the_description() {
        let base = ddr3_1g_x16_55nm();
        for p in ParamId::ALL {
            let mut d = base.clone();
            p.apply(&mut d, 1.2);
            assert_ne!(d, base, "{p} had no effect");
        }
    }

    #[test]
    fn factor_one_is_identity_for_continuous_params() {
        let base = ddr3_1g_x16_55nm();
        for p in ParamId::ALL {
            if p == ParamId::LogicGates {
                continue; // rounding
            }
            let mut d = base.clone();
            p.apply(&mut d, 1.0);
            assert_eq!(d, base, "{p} not identity at factor 1");
        }
    }

    #[test]
    fn every_parameter_has_a_category() {
        use std::collections::HashMap;
        let mut counts: HashMap<ParamCategory, usize> = HashMap::new();
        for p in ParamId::ALL {
            *counts.entry(p.category()).or_default() += 1;
        }
        assert_eq!(counts.len(), 5, "all five Table I groups represented");
        assert_eq!(counts.values().sum::<usize>(), ParamId::ALL.len());
        assert_eq!(counts[&ParamCategory::Electrical], 8);
    }

    #[test]
    fn vdd_is_excluded_from_chart() {
        assert!(!ParamId::Vdd.in_pareto_chart());
        assert!(ParamId::Vint.in_pareto_chart());
        let plotted = ParamId::ALL.iter().filter(|p| p.in_pareto_chart()).count();
        assert_eq!(plotted, ParamId::ALL.len() - 1);
    }

    #[test]
    fn clamped_parameters_stay_in_range() {
        let mut d = ddr3_1g_x16_55nm();
        ParamId::EffVint.apply(&mut d, 2.0);
        assert!(d.electrical.eff_vint <= 1.0);
        ParamId::LogicGateDensity.apply(&mut d, 100.0);
        assert!(d.logic_blocks.iter().all(|b| b.gate_density <= 1.0));
    }
}
