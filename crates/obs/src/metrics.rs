//! Process-wide metric primitives: counters, gauges, the log₂-µs
//! latency histogram, and a named registry.
//!
//! Every primitive is relaxed atomics — observability must never make
//! the code it watches contend. The histogram is the one the server's
//! `/metrics` endpoint has exposed since PR 2, generalized here so any
//! crate can record latencies into the same bucket scheme and any
//! exporter can read them back.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of latency buckets: powers of two of microseconds, 1 µs up to
/// ~2 s, plus an overflow bucket.
pub const BUCKETS: usize = 23;

/// Histogram bucket for a latency in microseconds. Bucket `i` counts
/// latencies in `[2^(i-1), 2^i)` µs; bucket 0 is sub-microsecond and the
/// last bucket catches everything at or above `2^(BUCKETS-2)` µs.
#[must_use]
pub fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (usize::try_from(u64::BITS - us.leading_zeros()).expect("≤ 64")).min(BUCKETS - 1)
    }
}

/// The exclusive upper bound of bucket `i` in microseconds, or `None`
/// for the unbounded overflow bucket.
#[must_use]
pub fn bucket_upper_us(i: usize) -> Option<u64> {
    if i + 1 < BUCKETS {
        Some(1u64 << i)
    } else {
        None
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// The workspace's latency histogram: log₂ buckets of microseconds (see
/// [`bucket_index`]) plus a running sum, so exporters can derive both
/// the JSON bucket table and a Prometheus `_sum`/`_count` pair.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency.
    pub fn observe(&self, latency: Duration) {
        self.observe_us(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one latency given in microseconds.
    pub fn observe_us(&self, us: u64) {
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Per-bucket counts, index `i` per [`bucket_index`].
    #[must_use]
    pub fn counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of all observed latencies, microseconds.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }
}

/// One registered metric: the primitive plus its help text.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics with one process-wide instance.
///
/// Registration is idempotent: asking for an existing name returns the
/// already-registered primitive, so call sites can cheaply
/// `registry.counter(...)` through a `OnceLock` without coordinating.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, (Metric, String)>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry every crate shares.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers (or fetches) a counter under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry lock");
        let (metric, _) = inner
            .entry(name.to_string())
            .or_insert_with(|| (Metric::Counter(Arc::new(Counter::new())), help.to_string()));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is registered as a non-counter"),
        }
    }

    /// Registers (or fetches) a gauge under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry lock");
        let (metric, _) = inner
            .entry(name.to_string())
            .or_insert_with(|| (Metric::Gauge(Arc::new(Gauge::new())), help.to_string()));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is registered as a non-gauge"),
        }
    }

    /// Registers (or fetches) a histogram under `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry lock");
        let (metric, _) = inner
            .entry(name.to_string())
            .or_insert_with(|| (Metric::Histogram(Arc::new(Histogram::new())), help.to_string()));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is registered as a non-histogram"),
        }
    }

    /// A snapshot of every registered metric, in name order.
    #[must_use]
    pub fn metrics(&self) -> Vec<(String, Metric, String)> {
        self.inner
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(name, (metric, help))| (name.clone(), metric.clone(), help.clone()))
            .collect()
    }
}
