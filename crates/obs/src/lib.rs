//! # dram-obs
//!
//! Cross-crate observability for the dram-energy workspace: hierarchical
//! span profiling, a process-wide metrics registry, and exporters for
//! Chrome trace-event JSON and Prometheus text exposition.
//!
//! The model is a deep pipeline — description parse, geometry, device
//! capacitances, charge partitioning, power summation — and this crate
//! makes that pipeline visible from the inside without making it slower
//! from the outside:
//!
//! * [`span`] opens a named span that closes when its guard drops (even
//!   under panic). Profiling is **off by default**; disabled call sites
//!   cost one relaxed atomic load, allocate nothing and record nothing.
//! * [`Registry::global`] hands out named [`Counter`]s, [`Gauge`]s and
//!   the log₂-µs [`Histogram`] the server's `/metrics` endpoint has used
//!   since PR 2 (now generalized here).
//! * [`chrome_trace`] serializes a drained [`Profile`] into a file
//!   `chrome://tracing` / Perfetto loads; [`PromWriter`] renders metrics
//!   in Prometheus text exposition version 0.0.4.
//! * [`journal`] is the always-on flight recorder: a fixed-size,
//!   lock-light ring buffer of typed lifecycle events (accepts,
//!   dispatches, cache hits, fault fires, responses, …) written through
//!   per-thread shards with zero allocation, read back by the server's
//!   `/debug/*` endpoints. Sized 0 (the default) it costs one relaxed
//!   load per call site.
//!
//! ```
//! dram_obs::set_enabled(true);
//! {
//!     let _outer = dram_obs::span("demo.outer");
//!     let _inner = dram_obs::span("demo.inner").arg("k", 42);
//! }
//! dram_obs::set_enabled(false);
//! let profile = dram_obs::drain();
//! let trace = dram_obs::chrome_trace(&profile).to_string();
//! assert!(trace.contains("\"demo.inner\""));
//! ```
//!
//! See `docs/OBSERVABILITY.md` for the workspace's span taxonomy and
//! metric naming scheme.
#![warn(missing_docs)]

mod export;
pub mod journal;
pub mod metrics;
pub mod span;

pub use export::{chrome_trace, escape_help, escape_label, PromWriter};
pub use metrics::{bucket_index, bucket_upper_us, Counter, Gauge, Histogram, Metric, Registry, BUCKETS};
pub use span::{
    clear, drain, enabled, register_thread, rollup, set_enabled, snapshot, span, ManualSpan,
    Profile, Rollup, SpanGuard, SpanRecord, ThreadInfo,
};

#[cfg(test)]
mod tests {
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use std::time::{Duration, Instant};

    use dram_units::json::Value;

    use super::*;

    /// Span recording is process-global state; tests that enable it must
    /// not interleave. (Metrics tests don't need this.)
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK.get_or_init(|| Mutex::new(()));
        let guard = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        set_enabled(false);
        clear();
        guard
    }

    #[test]
    fn spans_nest_and_record_parents() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _outer = span("t.outer");
            {
                let _inner = span("t.inner");
            }
            let _sibling = span("t.sibling");
        }
        set_enabled(false);
        let profile = drain();
        assert_eq!(profile.spans.len(), 3);
        // Close order: inner, sibling, outer.
        let inner = &profile.spans[0];
        let sibling = &profile.spans[1];
        let outer = &profile.spans[2];
        assert_eq!(inner.name, "t.inner");
        assert_eq!(outer.name, "t.outer");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
        assert_eq!(outer.parent, 0, "outer is a root");
        assert!(inner.start_us >= outer.start_us);
        // The recording thread is registered exactly once.
        assert!(profile.threads.iter().any(|t| t.id == outer.thread));
    }

    #[test]
    fn span_guard_closes_during_panic_unwind() {
        let _x = exclusive();
        set_enabled(true);
        let result = std::panic::catch_unwind(|| {
            let _span = span("t.panicking");
            panic!("boom");
        });
        assert!(result.is_err());
        // A span opened after the unwind must not inherit the panicked
        // span as parent: the guard restored the TLS state on drop.
        {
            let _after = span("t.after");
        }
        set_enabled(false);
        let profile = drain();
        let panicking = profile.spans.iter().find(|s| s.name == "t.panicking");
        assert!(panicking.is_some(), "unwound span was still recorded");
        let after = profile.spans.iter().find(|s| s.name == "t.after").unwrap();
        assert_eq!(after.parent, 0);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _x = exclusive();
        assert!(!enabled());
        {
            let mut g = span("t.off");
            g.add_arg("k", "v");
            let _manual = ManualSpan::new("t.off.manual", Instant::now(), Instant::now())
                .arg("k", 1);
        }
        ManualSpan::new("t.off.committed", Instant::now(), Instant::now()).commit();
        assert!(drain().spans.is_empty());
    }

    #[test]
    fn manual_spans_measure_caller_intervals() {
        let _x = exclusive();
        set_enabled(true);
        let start = Instant::now();
        let end = start + Duration::from_micros(1500);
        ManualSpan::new("t.manual", start, end).arg("id", "abc").commit();
        set_enabled(false);
        let profile = drain();
        assert_eq!(profile.spans.len(), 1);
        let s = &profile.spans[0];
        assert_eq!(s.name, "t.manual");
        assert_eq!(s.dur_us, 1500);
        assert_eq!(s.args, vec![("id".into(), "abc".to_string())]);
    }

    #[test]
    fn rollup_aggregates_by_name() {
        let mk = |name: &'static str, dur_us: u64| SpanRecord {
            id: 1,
            parent: 0,
            name: name.into(),
            thread: 1,
            start_us: 0,
            dur_us,
            args: Vec::new(),
        };
        let profile = Profile {
            spans: vec![mk("a", 10), mk("b", 100), mk("a", 30)],
            threads: Vec::new(),
        };
        let rolled = rollup(&profile);
        assert_eq!(rolled.len(), 2);
        assert_eq!(rolled[0].name, "b");
        assert_eq!(rolled[1].name, "a");
        assert_eq!(rolled[1].count, 2);
        assert_eq!(rolled[1].total_us, 40);
        assert!((rolled[1].mean_us - 20.0).abs() < 1e-12);
        assert_eq!(rolled[1].max_us, 30);
    }

    #[test]
    fn chrome_trace_round_trips_through_the_workspace_parser() {
        let _x = exclusive();
        set_enabled(true);
        {
            let _outer = span("t.trace.outer").arg("quote", "a\"b\\c");
            let _inner = span("t.trace.inner");
        }
        set_enabled(false);
        let profile = drain();
        let doc = chrome_trace(&profile);
        let text = doc.to_string();
        let parsed = Value::parse(&text).expect("trace JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // Process metadata + ≥1 thread metadata + the two spans.
        assert!(events.len() >= 4, "{text}");
        let inner = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("t.trace.inner"))
            .expect("inner event present");
        assert_eq!(inner.get("ph").and_then(Value::as_str), Some("X"));
        assert!(inner.get("ts").and_then(Value::as_f64).is_some());
        assert!(inner.get("dur").and_then(Value::as_f64).is_some());
        let outer = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("t.trace.outer"))
            .expect("outer event present");
        // Parent linkage survives the round trip.
        assert_eq!(
            inner.get("args").unwrap().get("parent"),
            outer.get("args").unwrap().get("id")
        );
        // Awkward arg values survive the escaper and the parser.
        assert_eq!(
            outer.get("args").unwrap().get("quote").and_then(Value::as_str),
            Some("a\"b\\c")
        );
        // Thread metadata names the recording thread.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some("thread_name")
                && e.get("ph").and_then(Value::as_str) == Some("M")
        }));
    }

    #[test]
    fn histogram_buckets_match_the_server_scheme() {
        // Boundary semantics of the log₂-µs bucketing: bucket `i` is
        // `[2^(i-1), 2^i)` µs, exclusive upper bounds.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        for k in 0..20 {
            let v = 1u64 << k;
            let b = bucket_index(v);
            assert_eq!(b, k + 1, "2^{k}");
            assert!(v < 1u64 << b);
            assert!(v >= 1u64 << (b - 1));
        }
        // Saturation into the overflow bucket.
        let top_finite = BUCKETS - 2;
        assert_eq!(bucket_index((1u64 << top_finite) - 1), top_finite);
        assert_eq!(bucket_index(1u64 << top_finite), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_us(0), Some(1));
        assert_eq!(bucket_upper_us(BUCKETS - 2), Some(1 << (BUCKETS - 2)));
        assert_eq!(bucket_upper_us(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_tracks_counts_and_sum() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(5));
        h.observe_us(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 8);
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[bucket_index(3)], 1); // [2, 4) µs
        assert_eq!(counts[bucket_index(5)], 1); // [4, 8) µs
    }

    #[test]
    fn registry_is_idempotent_and_kind_checked() {
        let r = Registry::new();
        let a = r.counter("x_total", "help");
        let b = r.counter("x_total", "other help ignored");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same underlying counter");
        let g = r.gauge("y", "gauge help");
        g.set(1.5);
        assert!((r.gauge("y", "").get() - 1.5).abs() < 1e-12);
        let h = r.histogram("z_seconds", "hist help");
        h.observe_us(10);
        let metrics = r.metrics();
        assert_eq!(metrics.len(), 3);
        // BTreeMap: name order.
        assert_eq!(metrics[0].0, "x_total");
        assert_eq!(metrics[1].0, "y");
        assert_eq!(metrics[2].0, "z_seconds");
        assert!(std::panic::catch_unwind(|| r.gauge("x_total", "")).is_err());
    }

    #[test]
    fn prometheus_escaping_is_exact() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_help("multi\nline \\ help"), "multi\\nline \\\\ help");
    }

    #[test]
    fn prom_writer_renders_families_and_labels() {
        let mut w = PromWriter::new();
        w.counter("dram_test_total", "A counter.", 42);
        w.header("dram_routes_total", "Per-route.", "counter");
        w.sample("dram_routes_total", &[("route", "eval\"x")], 7.0);
        w.gauge("dram_ratio", "A gauge.", 0.5);
        let text = w.finish();
        assert!(text.contains("# HELP dram_test_total A counter.\n"));
        assert!(text.contains("# TYPE dram_test_total counter\n"));
        assert!(text.contains("dram_test_total 42\n"));
        assert!(text.contains("dram_routes_total{route=\"eval\\\"x\"} 7\n"));
        assert!(text.contains("# TYPE dram_ratio gauge\n"));
        assert!(text.contains("dram_ratio 0.5\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn prom_histogram_is_cumulative_in_seconds() {
        let h = Histogram::new();
        h.observe_us(1); // bucket 1: [1, 2) µs
        h.observe_us(3); // bucket 2: [2, 4) µs
        h.observe_us(u64::MAX); // overflow bucket (and a saturated sum)
        let mut w = PromWriter::new();
        w.histogram_seconds("dram_lat_seconds", "Latency.", &h);
        let text = w.finish();
        assert!(text.contains("# TYPE dram_lat_seconds histogram\n"));
        // le="0.000001" (1 µs upper bound) has seen nothing; 2 µs has 1;
        // 4 µs has 2; +Inf has all 3.
        assert!(text.contains("dram_lat_seconds_bucket{le=\"0.000001\"} 0\n"), "{text}");
        assert!(text.contains("dram_lat_seconds_bucket{le=\"0.000002\"} 1\n"), "{text}");
        assert!(text.contains("dram_lat_seconds_bucket{le=\"0.000004\"} 2\n"), "{text}");
        assert!(text.contains("dram_lat_seconds_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("dram_lat_seconds_count 3\n"), "{text}");
        // Cumulative counts never decrease.
        let mut last = 0.0;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn prom_writer_handles_empty_label_values() {
        let mut w = PromWriter::new();
        w.header("dram_edge_total", "Edge cases.", "counter");
        w.sample("dram_edge_total", &[("route", "")], 1.0);
        w.sample("dram_edge_total", &[("route", "\\\n\"")], 2.0);
        let text = w.finish();
        // An empty label value renders as route="" — present, not
        // dropped, so series identity survives.
        assert!(text.contains("dram_edge_total{route=\"\"} 1\n"), "{text}");
        assert!(
            text.contains("dram_edge_total{route=\"\\\\\\n\\\"\"} 2\n"),
            "{text}"
        );
        // Every sample line still splits into exactly name-and-value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn prom_histogram_bucket_boundary_counts_land_one_bucket_up() {
        // A sample exactly on a bucket's upper bound belongs to the NEXT
        // bucket: uppers are exclusive in the log₂-µs scheme, while
        // Prometheus `le` is inclusive — so the cumulative count at
        // le="0.000004" must NOT include a 4 µs observation.
        let h = Histogram::new();
        h.observe_us(4); // == bucket_upper_us(2); lands in bucket 3
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_upper_us(2), Some(4));
        let mut w = PromWriter::new();
        w.histogram_seconds("dram_edge_seconds", "Boundary.", &h);
        let text = w.finish();
        assert!(text.contains("dram_edge_seconds_bucket{le=\"0.000004\"} 0\n"), "{text}");
        assert!(text.contains("dram_edge_seconds_bucket{le=\"0.000008\"} 1\n"), "{text}");
        assert!(text.contains("dram_edge_seconds_bucket{le=\"+Inf\"} 1\n"), "{text}");
    }

    #[test]
    fn prom_histogram_inf_bucket_equals_count_and_sum_is_consistent() {
        let h = Histogram::new();
        for us in [0u64, 1, 2, 1024, 1_000_000] {
            h.observe_us(us);
        }
        let mut w = PromWriter::new();
        w.histogram_seconds("dram_sum_seconds", "Sum check.", &h);
        let text = w.finish();
        let value_of = |needle: &str| -> f64 {
            text.lines()
                .find(|l| l.starts_with(needle))
                .unwrap_or_else(|| panic!("{needle} missing in {text}"))
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        // +Inf cumulative count == _count == total observations.
        let inf = value_of("dram_sum_seconds_bucket{le=\"+Inf\"}");
        let count = value_of("dram_sum_seconds_count");
        assert_eq!(inf, 5.0);
        assert_eq!(count, 5.0);
        // _sum is the µs sum scaled to seconds.
        let sum = value_of("dram_sum_seconds_sum");
        assert!((sum - 1_001_027e-6).abs() < 1e-12, "sum {sum}");
        // And the cumulative bucket sequence never decreases, ending at
        // exactly the +Inf value.
        let mut last = 0.0;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
        assert_eq!(last, inf);
    }

    #[test]
    fn prom_writer_renders_a_registry() {
        let r = Registry::new();
        r.counter("reg_a_total", "A.").add(5);
        r.gauge("reg_b", "B.").set(2.5);
        r.histogram("reg_c_seconds", "C.").observe_us(7);
        let mut w = PromWriter::new();
        w.registry(&r);
        let text = w.finish();
        assert!(text.contains("reg_a_total 5\n"));
        assert!(text.contains("reg_b 2.5\n"));
        assert!(text.contains("reg_c_seconds_count 1\n"));
        let a = text.find("reg_a_total").unwrap();
        let b = text.find("reg_b").unwrap();
        let c = text.find("reg_c_seconds").unwrap();
        assert!(a < b && b < c, "registry renders in name order");
    }
}
