//! The flight recorder: a fixed-size, lock-light ring-buffer journal of
//! typed lifecycle events.
//!
//! Where spans answer "how long did this phase take?", the journal
//! answers "what happened to request X?" and "what was the server doing
//! at time T?" — always on, bounded, and cheap enough to leave recording
//! in production. Events are written into per-thread shards: the hot
//! path is one relaxed index bump plus a handful of relaxed slot stores,
//! with **zero allocation** and no lock. Memory is bounded at
//! configuration time; once a shard wraps, its oldest events are
//! overwritten.
//!
//! Sizing the journal to `0` (the default — [`configure`] has never been
//! called) disables it entirely: [`record`] is a single relaxed pointer
//! load and return, allocating nothing, which keeps permanently
//! instrumented call sites free when the recorder is off.
//!
//! Readers ([`snapshot`], [`events_for_request`]) are reconstructive,
//! not transactional: each slot carries a sequence guard written last,
//! so a read that races an in-flight write is detected and skipped
//! rather than returned torn. On a quiesced journal (the normal case
//! for a debug endpoint inspecting finished requests) snapshots are
//! exact and stable.
//!
//! Request attribution crosses crate boundaries through an ambient
//! per-thread context ([`set_context`]): the server front end sets the
//! (connection, request) pair before running a handler, and downstream
//! crates (`dram-core` cache lookups, `dram-faults` fires) record via
//! [`note`] without needing the ids threaded through their APIs.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::span;

/// The typed lifecycle events the journal records.
///
/// Connection-scoped events (everything the reactor does) carry a
/// connection id and no request id — the request does not exist yet.
/// Request-scoped events carry both. The `arg` of an [`Event`] is
/// kind-specific and documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// Connection accepted by the reactor. `arg` = raw fd.
    Accept = 1,
    /// Connection parked (registered idle) in the epoll set.
    /// `arg` = requests served on it so far.
    Park = 2,
    /// A parked connection turned readable (or hung up) and the reactor
    /// woke it for dispatch. `arg` = 0.
    Wake = 3,
    /// The reactor decided to hand the connection to the worker pool.
    /// `arg` = 0.
    Dispatch = 4,
    /// Connection pushed onto the bounded worker queue.
    /// `arg` = queue depth after the push.
    QueueEnter = 5,
    /// Connection popped off the queue by a worker.
    /// `arg` = queue wait in microseconds.
    QueueExit = 6,
    /// A worker started parsing a request — the moment the request id
    /// is born. `arg` = requests served on the connection before this.
    WorkerStart = 7,
    /// Engine model-cache hit. `arg` = 0.
    CacheHit = 8,
    /// Engine model-cache miss (a model build). `arg` = 0.
    CacheMiss = 9,
    /// Differential rebuild skipped build phases. `arg` = phases
    /// skipped by this rebuild.
    RebuildSkip = 10,
    /// A fault-injection site fired. `arg` = index into
    /// `dram_faults::SITES`.
    FaultFire = 11,
    /// Response written (or write attempted). `arg` = HTTP status.
    Response = 12,
    /// Connection closed. `arg` = requests it served.
    Close = 13,
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; 13] = [
        EventKind::Accept,
        EventKind::Park,
        EventKind::Wake,
        EventKind::Dispatch,
        EventKind::QueueEnter,
        EventKind::QueueExit,
        EventKind::WorkerStart,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::RebuildSkip,
        EventKind::FaultFire,
        EventKind::Response,
        EventKind::Close,
    ];

    /// Stable snake_case label used by `/debug/*` JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Accept => "accept",
            EventKind::Park => "park",
            EventKind::Wake => "wake",
            EventKind::Dispatch => "dispatch",
            EventKind::QueueEnter => "queue_enter",
            EventKind::QueueExit => "queue_exit",
            EventKind::WorkerStart => "worker_start",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::RebuildSkip => "rebuild_skip",
            EventKind::FaultFire => "fault_fire",
            EventKind::Response => "response",
            EventKind::Close => "close",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        EventKind::ALL.get(v.wrapping_sub(1) as usize).copied()
    }
}

/// One journal event, as read back by [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Per-shard write sequence (starts at 1). Orders events that share
    /// a timestamp and thread.
    pub seq: u64,
    /// Monotonic microseconds since the shared observability epoch
    /// (the same axis span timestamps use).
    pub ts_us: u64,
    /// Dense id of the recording thread (the span thread table).
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
    /// Connection id (`0` = not connection-scoped).
    pub conn: u64,
    /// Request sequence number (`0` = not request-scoped).
    pub request: u64,
    /// Kind-specific argument, see [`EventKind`].
    pub arg: u64,
}

/// One ring slot: a sequence guard plus the packed event. The guard is
/// written last (release); readers check it before and after reading
/// the payload so a torn racing read is skipped, never surfaced.
struct Slot {
    /// `0` = empty or mid-write; otherwise the claim sequence + 1.
    guard: AtomicU64,
    ts_us: AtomicU64,
    /// `thread << 8 | kind`.
    thread_kind: AtomicU64,
    conn: AtomicU64,
    request: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            guard: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            thread_kind: AtomicU64::new(0),
            conn: AtomicU64::new(0),
            request: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// Threads are spread over this many shards by dense thread id. Two
/// threads sharing a shard stay correct (the index bump is atomic);
/// they merely contend on one cache line instead of none.
const SHARDS: usize = 16;

struct Shard {
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// A configured journal: fixed shards, fixed capacity, no further
/// allocation after construction.
struct Journal {
    shards: Vec<Shard>,
    cap_per_shard: usize,
}

impl Journal {
    fn with_capacity(total_events: usize) -> Self {
        let cap_per_shard = total_events.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| Shard {
                head: AtomicU64::new(0),
                slots: (0..cap_per_shard).map(|_| Slot::empty()).collect(),
            })
            .collect();
        Self {
            shards,
            cap_per_shard,
        }
    }

    fn push(&self, kind: EventKind, conn: u64, request: u64, arg: u64) {
        let thread = span::current_thread_id();
        let ts_us = span::now_us();
        let shard = &self.shards[(thread as usize).wrapping_sub(1) % SHARDS];
        let n = shard.head.fetch_add(1, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let slot = &shard.slots[(n % self.cap_per_shard as u64) as usize];
        // Invalidate, write payload, publish. A reader that lands in
        // the middle sees guard 0 or a guard change and skips the slot.
        slot.guard.store(0, Ordering::Release);
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        slot.thread_kind
            .store(thread << 8 | u64::from(kind as u8), Ordering::Relaxed);
        slot.conn.store(conn, Ordering::Relaxed);
        slot.request.store(request, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.guard.store(n + 1, Ordering::Release);
    }

    fn read_all(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for slot in shard.slots.iter() {
                let guard = slot.guard.load(Ordering::Acquire);
                if guard == 0 {
                    continue;
                }
                let ts_us = slot.ts_us.load(Ordering::Relaxed);
                let thread_kind = slot.thread_kind.load(Ordering::Relaxed);
                let conn = slot.conn.load(Ordering::Relaxed);
                let request = slot.request.load(Ordering::Relaxed);
                let arg = slot.arg.load(Ordering::Relaxed);
                if slot.guard.load(Ordering::Acquire) != guard {
                    // A writer lapped us mid-read: the payload may be
                    // torn, drop it.
                    continue;
                }
                #[allow(clippy::cast_possible_truncation)]
                let Some(kind) = EventKind::from_u8(thread_kind as u8) else {
                    continue;
                };
                out.push(Event {
                    seq: guard,
                    ts_us,
                    thread: thread_kind >> 8,
                    kind,
                    conn,
                    request,
                    arg,
                });
            }
        }
        out.sort_by_key(|e| (e.ts_us, e.thread, e.seq));
        out
    }

    fn reset(&self) {
        for shard in &self.shards {
            shard.head.store(0, Ordering::Relaxed);
            for slot in shard.slots.iter() {
                slot.guard.store(0, Ordering::Release);
            }
        }
    }
}

/// The active journal; null when sized 0 (disabled). Swapped whole on
/// [`configure`] so the hot path is one pointer load.
static ACTIVE: AtomicPtr<Journal> = AtomicPtr::new(std::ptr::null_mut());

/// Serializes reconfiguration (a test-and-bench concern, never hot).
fn config_lock() -> &'static Mutex<()> {
    static LOCK: Mutex<()> = Mutex::new(());
    &LOCK
}

thread_local! {
    /// Ambient (connection, request) attribution for [`note`] call
    /// sites that don't know the ids — engine cache lookups, fault
    /// fires. Set by the server worker around each request.
    static CONTEXT: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

/// Sizes (or resizes) the journal to hold about `total_events` events
/// across its shards; `0` disables recording entirely.
///
/// Allocation happens here, once — never on the record path. The
/// previous journal, if any, is intentionally leaked: a racing writer
/// may still hold its pointer, and reconfiguration is a startup/test
/// operation, not a loop.
pub fn configure(total_events: usize) {
    let _guard = config_lock().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let new = if total_events == 0 {
        std::ptr::null_mut()
    } else {
        Box::into_raw(Box::new(Journal::with_capacity(total_events)))
    };
    ACTIVE.swap(new, Ordering::AcqRel);
}

/// Whether the journal is currently recording (sized above 0).
#[must_use]
pub fn enabled() -> bool {
    !ACTIVE.load(Ordering::Relaxed).is_null()
}

/// Total event capacity of the active journal (0 when disabled).
#[must_use]
pub fn capacity() -> usize {
    let ptr = ACTIVE.load(Ordering::Acquire);
    if ptr.is_null() {
        return 0;
    }
    let journal = unsafe { &*ptr };
    journal.cap_per_shard * SHARDS
}

/// Forgets every recorded event, keeping the configured capacity.
pub fn clear() {
    let ptr = ACTIVE.load(Ordering::Acquire);
    if !ptr.is_null() {
        unsafe { &*ptr }.reset();
    }
}

/// Records one event with explicit attribution. With the journal
/// disabled this is one relaxed load and return: no clock read, no
/// allocation, no stores.
pub fn record(kind: EventKind, conn: u64, request: u64, arg: u64) {
    let ptr = ACTIVE.load(Ordering::Acquire);
    if ptr.is_null() {
        return;
    }
    unsafe { &*ptr }.push(kind, conn, request, arg);
}

/// Records one event attributed to the calling thread's ambient
/// context ([`set_context`]) — for call sites (engine cache, fault
/// sites) that don't know which request they are serving.
pub fn note(kind: EventKind, arg: u64) {
    let ptr = ACTIVE.load(Ordering::Acquire);
    if ptr.is_null() {
        return;
    }
    let (conn, request) = CONTEXT.with(std::cell::Cell::get);
    unsafe { &*ptr }.push(kind, conn, request, arg);
}

/// Sets the calling thread's ambient (connection, request) attribution
/// for subsequent [`note`] calls. Pass `(0, 0)` to clear.
pub fn set_context(conn: u64, request: u64) {
    CONTEXT.with(|c| c.set((conn, request)));
}

/// Every event currently readable, ordered by timestamp (ties broken
/// by thread then shard sequence). Costs one pass over the ring; slots
/// raced by in-flight writers are skipped, not torn.
#[must_use]
pub fn snapshot() -> Vec<Event> {
    let ptr = ACTIVE.load(Ordering::Acquire);
    if ptr.is_null() {
        return Vec::new();
    }
    unsafe { &*ptr }.read_all()
}

/// The most recent `n` events, oldest first.
#[must_use]
pub fn recent(n: usize) -> Vec<Event> {
    let mut all = snapshot();
    if all.len() > n {
        all.drain(..all.len() - n);
    }
    all
}

/// Reconstructs the end-to-end timeline of one request: every event
/// stamped with its request sequence, joined with the connection-scoped
/// events (accept, park, wake, dispatch, queue) of the connection that
/// carried it, from the connection's accept up to the request's last
/// event. Empty when the journal holds nothing for that request (never
/// recorded, or already overwritten).
#[must_use]
pub fn events_for_request(request: u64) -> Vec<Event> {
    if request == 0 {
        return Vec::new();
    }
    let all = snapshot();
    let conn = all
        .iter()
        .find(|e| e.request == request && e.conn != 0)
        .map_or(0, |e| e.conn);
    // The request's last event bounds the window by *position* in the
    // sorted order, not raw timestamp: a park recorded in the same
    // microsecond as the response (but after it) stays outside.
    let Some(end) = all.iter().rposition(|e| e.request == request) else {
        return Vec::new();
    };
    all.into_iter()
        .take(end + 1)
        .filter(|e| {
            e.request == request || (conn != 0 && e.conn == conn && e.request == 0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The journal is process-global; tests reconfigure it and must not
    /// interleave.
    fn exclusive() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        configure(0);
        guard
    }

    #[test]
    fn disabled_journal_records_and_returns_nothing() {
        let _x = exclusive();
        assert!(!enabled());
        assert_eq!(capacity(), 0);
        record(EventKind::Accept, 1, 0, 7);
        note(EventKind::CacheHit, 0);
        assert!(snapshot().is_empty());
        assert!(events_for_request(1).is_empty());
    }

    #[test]
    fn events_round_trip_in_order() {
        let _x = exclusive();
        configure(1024);
        assert!(enabled());
        assert!(capacity() >= 1024);
        record(EventKind::Accept, 5, 0, 33);
        record(EventKind::Dispatch, 5, 0, 0);
        record(EventKind::WorkerStart, 5, 9, 0);
        record(EventKind::Response, 5, 9, 200);
        let all = snapshot();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].kind, EventKind::Accept);
        assert_eq!(all[0].conn, 5);
        assert_eq!(all[0].arg, 33);
        assert_eq!(all[3].kind, EventKind::Response);
        assert_eq!(all[3].request, 9);
        assert!(all.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        // Same-thread events share a timestamp axis and ascend by seq.
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
        configure(0);
    }

    #[test]
    fn ring_overwrites_oldest_events() {
        let _x = exclusive();
        configure(SHARDS * 4); // 4 slots per shard
        for i in 0..100u64 {
            record(EventKind::Wake, i, 0, 0);
        }
        let all = snapshot();
        // One thread → one shard → its 4 newest survive.
        assert_eq!(all.len(), 4);
        assert!(all.iter().all(|e| e.conn >= 96), "{all:?}");
        configure(0);
    }

    #[test]
    fn ambient_context_attributes_notes() {
        let _x = exclusive();
        configure(256);
        set_context(3, 12);
        note(EventKind::CacheMiss, 0);
        note(EventKind::FaultFire, 2);
        set_context(0, 0);
        note(EventKind::CacheHit, 0);
        let all = snapshot();
        let miss = all.iter().find(|e| e.kind == EventKind::CacheMiss).unwrap();
        assert_eq!((miss.conn, miss.request), (3, 12));
        let hit = all.iter().find(|e| e.kind == EventKind::CacheHit).unwrap();
        assert_eq!((hit.conn, hit.request), (0, 0));
        configure(0);
    }

    #[test]
    fn request_timeline_joins_connection_events() {
        let _x = exclusive();
        configure(1024);
        // Connection 7 serves request 40, then request 41; connection 8
        // is unrelated noise.
        record(EventKind::Accept, 7, 0, 10);
        record(EventKind::Accept, 8, 0, 11);
        record(EventKind::Dispatch, 7, 0, 0);
        record(EventKind::WorkerStart, 7, 40, 0);
        record(EventKind::CacheMiss, 7, 40, 0);
        record(EventKind::Response, 7, 40, 200);
        record(EventKind::Park, 7, 0, 1);
        record(EventKind::WorkerStart, 7, 41, 1);
        record(EventKind::Response, 7, 41, 200);
        let timeline = events_for_request(40);
        // Request 40's own events plus conn 7's accept + dispatch; the
        // later park and request 41 events are outside its window,
        // conn 8 is absent entirely.
        let kinds: Vec<EventKind> = timeline.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Accept,
                EventKind::Dispatch,
                EventKind::WorkerStart,
                EventKind::CacheMiss,
                EventKind::Response,
            ]
        );
        assert!(timeline.iter().all(|e| e.conn == 7));
        assert!(timeline.iter().all(|e| e.request == 0 || e.request == 40));
        assert!(events_for_request(999).is_empty());
        assert!(events_for_request(0).is_empty());
        configure(0);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let _x = exclusive();
        configure(SHARDS * 8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        record(EventKind::Wake, t + 1, i, t * 1_000_000 + i);
                    }
                });
            }
        });
        for e in snapshot() {
            // Every surviving event is self-consistent: its arg encodes
            // a (thread, i) pair that matches its request field.
            assert_eq!(e.arg % 1_000_000, e.request, "torn event {e:?}");
            assert!(e.conn >= 1 && e.conn <= 4, "torn event {e:?}");
        }
        configure(0);
    }

    #[test]
    fn kind_labels_are_unique_and_stable() {
        let mut labels: Vec<&str> = EventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::ALL.len());
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(200), None);
    }
}
