//! Hierarchical spans with monotonic timing and thread attribution.
//!
//! A span is opened with [`span`] and closed by dropping the returned
//! [`SpanGuard`] — including during a panic unwind, so open/close is
//! always balanced. Nesting is tracked per thread: a span opened while
//! another is live on the same thread records that span as its parent,
//! which is what turns a flat event list into the phase tree a profile
//! viewer shows.
//!
//! Profiling is **off by default** and gated by one process-wide atomic.
//! The disabled fast path is a single relaxed load: no clock read, no
//! allocation, no lock — cheap enough to leave call sites in the hottest
//! loops of the workspace permanently instrumented.

use std::borrow::Cow;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// The process-wide profiling switch. Relaxed is enough: a span missed
/// (or recorded) around the enable/disable edge is acceptable, a lock on
/// the fast path is not.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Span ids, process-wide; `0` is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Small dense thread ids (Chrome's `tid`), assigned on first span per
/// thread; [`std::thread::ThreadId`] has no stable integer form.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Id of the innermost live span on this thread (`0` = none).
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    /// This thread's dense id, once assigned.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// One completed span, as stored by the sink and returned by [`drain`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id of this span (process-wide, never `0`).
    pub id: u64,
    /// Id of the enclosing span on the same thread, `0` for roots.
    pub parent: u64,
    /// Span name, e.g. `model.geometry`.
    pub name: Cow<'static, str>,
    /// Dense id of the recording thread (Chrome `tid`).
    pub thread: u64,
    /// Start time in microseconds since the profile epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Attached key/value annotations (request ids, item counts, …).
    pub args: Vec<(Cow<'static, str>, String)>,
}

/// A thread that recorded at least one span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// The dense id used in [`SpanRecord::thread`].
    pub id: u64,
    /// The OS thread name, or `thread-<id>` when unnamed.
    pub name: String,
}

/// Everything collected since the last [`drain`]: completed spans plus
/// the threads that produced them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Completed spans in close order.
    pub spans: Vec<SpanRecord>,
    /// Threads that have recorded spans, in id order.
    pub threads: Vec<ThreadInfo>,
}

/// The global sink: one mutex, taken once per span *close* (never on the
/// disabled path, never while user code runs inside the span).
struct Sink {
    spans: Vec<SpanRecord>,
    threads: Vec<ThreadInfo>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            spans: Vec::new(),
            threads: Vec::new(),
        })
    })
}

/// The monotonic zero point all span timestamps are relative to. Fixed
/// at first use so timestamps from different threads share one axis.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whether span recording is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off. Enabling pins the profile epoch, so
/// call it before the work you want to see.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch now; spans started before enable still get
        // non-negative timestamps.
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Registers the calling thread in the dense-thread-id table right
/// away, instead of on its first recorded span.
///
/// Threads that never open a span — the server's epoll reactor lives in
/// its own loop and records journal events, not spans — would otherwise
/// appear as an anonymous `thread-<n>` (or not at all) in Chrome traces
/// and `/debug/events` output. Call this once at thread start; repeat
/// calls are no-ops. Returns the thread's dense id.
pub fn register_thread() -> u64 {
    thread_id()
}

/// Microseconds since the shared observability epoch — the same time
/// axis span timestamps use, so journal events and spans line up.
pub(crate) fn now_us() -> u64 {
    us(Instant::now().saturating_duration_since(epoch()))
}

/// The calling thread's dense id (assigning and registering it on
/// first use), for the journal's per-thread shard selection.
pub(crate) fn current_thread_id() -> u64 {
    thread_id()
}

/// This thread's dense id, assigning (and registering the thread name)
/// on first use.
fn thread_id() -> u64 {
    THREAD_ID.with(|slot| {
        let id = slot.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        slot.set(id);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{id}"), str::to_string);
        sink()
            .lock()
            .expect("span sink lock")
            .threads
            .push(ThreadInfo { id, name });
        id
    })
}

/// State of a live, recording span (absent on the disabled path).
struct ActiveSpan {
    id: u64,
    parent: u64,
    name: Cow<'static, str>,
    thread: u64,
    start: Instant,
    args: Vec<(Cow<'static, str>, String)>,
}

/// Closes its span when dropped — on every exit path, including panics.
///
/// When profiling is disabled the guard is inert: it holds no state,
/// allocates nothing and its drop is a no-op.
#[must_use = "a span lasts as long as its guard; bind it to a named local"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.active {
            Some(a) => write!(f, "SpanGuard({})", a.name),
            None => f.write_str("SpanGuard(disabled)"),
        }
    }
}

impl SpanGuard {
    /// Attaches `key=value` to the span. A no-op (the value is never
    /// rendered) when profiling is disabled.
    pub fn add_arg(&mut self, key: impl Into<Cow<'static, str>>, value: impl fmt::Display) {
        if let Some(active) = &mut self.active {
            active.args.push((key.into(), value.to_string()));
        }
    }

    /// Builder-style [`SpanGuard::add_arg`].
    pub fn arg(mut self, key: impl Into<Cow<'static, str>>, value: impl fmt::Display) -> Self {
        self.add_arg(key, value);
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let end = Instant::now();
        CURRENT_PARENT.with(|p| p.set(active.parent));
        let start_us = us(active.start.saturating_duration_since(epoch()));
        let dur_us = us(end.saturating_duration_since(active.start));
        sink().lock().expect("span sink lock").spans.push(SpanRecord {
            id: active.id,
            parent: active.parent,
            name: active.name,
            thread: active.thread,
            start_us,
            dur_us,
            args: active.args,
        });
    }
}

fn us(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Opens a span. Closes when the returned guard drops.
///
/// ```
/// let _span = dram_obs::span("model.build");
/// // ... timed work ...
/// ```
///
/// With profiling disabled (the default) this is one relaxed atomic
/// load and returns an inert guard.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_PARENT.with(|p| p.replace(id));
    SpanGuard {
        active: Some(ActiveSpan {
            id,
            parent,
            name: name.into(),
            thread: thread_id(),
            start: Instant::now(),
            args: Vec::new(),
        }),
    }
}

/// A span whose start and end were measured by the caller — for
/// intervals that cross threads, like time spent in a queue before any
/// worker touched the item. Build, annotate, then [`ManualSpan::commit`].
#[must_use = "a manual span records nothing until commit() is called"]
#[derive(Debug)]
pub struct ManualSpan {
    record: Option<SpanRecord>,
}

impl ManualSpan {
    /// A manual span from `start` to `end`, attributed to the calling
    /// thread and parented like [`span`] would be. Inert when profiling
    /// is disabled.
    pub fn new(name: impl Into<Cow<'static, str>>, start: Instant, end: Instant) -> Self {
        if !enabled() {
            return Self { record: None };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        Self {
            record: Some(SpanRecord {
                id,
                parent: CURRENT_PARENT.with(Cell::get),
                name: name.into(),
                thread: thread_id(),
                start_us: us(start.saturating_duration_since(epoch())),
                dur_us: us(end.saturating_duration_since(start)),
                args: Vec::new(),
            }),
        }
    }

    /// Attaches `key=value`; no-op when inert.
    pub fn arg(mut self, key: impl Into<Cow<'static, str>>, value: impl fmt::Display) -> Self {
        if let Some(record) = &mut self.record {
            record.args.push((key.into(), value.to_string()));
        }
        self
    }

    /// Records the span in the sink.
    pub fn commit(self) {
        if let Some(record) = self.record {
            sink().lock().expect("span sink lock").spans.push(record);
        }
    }
}

/// Takes every completed span collected so far, leaving the sink empty.
/// The thread table is cumulative (thread ids stay valid across drains)
/// and is returned as a copy.
#[must_use]
pub fn drain() -> Profile {
    let mut sink = sink().lock().expect("span sink lock");
    Profile {
        spans: std::mem::take(&mut sink.spans),
        threads: sink.threads.clone(),
    }
}

/// Copies every completed span collected so far **without** draining
/// the sink — for live introspection (the `/debug/requests` timeline
/// join) that must not steal spans from a concurrent profiling run.
#[must_use]
pub fn snapshot() -> Profile {
    let sink = sink().lock().expect("span sink lock");
    Profile {
        spans: sink.spans.clone(),
        threads: sink.threads.clone(),
    }
}

/// Discards every completed span collected so far.
pub fn clear() {
    sink().lock().expect("span sink lock").spans.clear();
}

/// Aggregate of every span sharing one name, for flat per-phase tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Rollup {
    /// The shared span name.
    pub name: String,
    /// How many spans closed under this name.
    pub count: u64,
    /// Sum of their durations, microseconds.
    pub total_us: u64,
    /// Mean duration, microseconds.
    pub mean_us: f64,
    /// Largest single duration, microseconds.
    pub max_us: u64,
}

/// Aggregates a profile by span name, largest total first.
#[must_use]
pub fn rollup(profile: &Profile) -> Vec<Rollup> {
    let mut by_name: Vec<Rollup> = Vec::new();
    for span in &profile.spans {
        match by_name.iter_mut().find(|r| r.name == span.name) {
            Some(r) => {
                r.count += 1;
                r.total_us += span.dur_us;
                r.max_us = r.max_us.max(span.dur_us);
            }
            None => by_name.push(Rollup {
                name: span.name.to_string(),
                count: 1,
                total_us: span.dur_us,
                mean_us: 0.0,
                max_us: span.dur_us,
            }),
        }
    }
    for r in &mut by_name {
        #[allow(clippy::cast_precision_loss)]
        {
            r.mean_us = r.total_us as f64 / r.count as f64;
        }
    }
    by_name.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    by_name
}
