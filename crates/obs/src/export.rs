//! Exporters: Chrome trace-event JSON for span profiles, and Prometheus
//! text exposition (version 0.0.4) for metrics.
//!
//! The trace exporter writes the subset of the [Trace Event Format] that
//! `chrome://tracing` and Perfetto load: one `M` (metadata) event naming
//! each thread, then one `X` (complete) event per span with microsecond
//! `ts`/`dur`. Everything goes through [`dram_units::json`], so a trace
//! file round-trips through the workspace's own parser.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use dram_units::json::{obj, Value};

use crate::metrics::{bucket_upper_us, Histogram, Metric, Registry, BUCKETS};
use crate::span::Profile;

/// Serializes a span profile as a Chrome trace-event document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
///
/// Span args are carried into each event's `args` object, plus the
/// span's `id`/`parent` pair so tools (and tests) can rebuild the tree
/// without relying on timestamp containment.
#[must_use]
pub fn chrome_trace(profile: &Profile) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(profile.spans.len() + profile.threads.len() + 1);
    events.push(obj(vec![
        ("ph", "M".into()),
        ("name", "process_name".into()),
        ("pid", 1u64.into()),
        ("args", obj(vec![("name", "dram-energy".into())])),
    ]));
    for t in &profile.threads {
        events.push(obj(vec![
            ("ph", "M".into()),
            ("name", "thread_name".into()),
            ("pid", 1u64.into()),
            ("tid", t.id.into()),
            ("args", obj(vec![("name", t.name.as_str().into())])),
        ]));
    }
    for s in &profile.spans {
        let mut args: Vec<(String, Value)> = vec![
            ("id".to_string(), s.id.into()),
            ("parent".to_string(), s.parent.into()),
        ];
        for (k, v) in &s.args {
            args.push((k.to_string(), v.as_str().into()));
        }
        events.push(obj(vec![
            ("ph", "X".into()),
            ("name", s.name.as_ref().into()),
            ("cat", "dram".into()),
            ("pid", 1u64.into()),
            ("tid", s.thread.into()),
            ("ts", s.start_us.into()),
            ("dur", s.dur_us.into()),
            ("args", Value::Obj(args)),
        ]));
    }
    obj(vec![
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", "ms".into()),
    ])
}

/// Escapes a Prometheus label value: backslash, double quote and
/// newline, per the text exposition format.
#[must_use]
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` text: backslash and newline only (quotes are
/// legal in help text).
#[must_use]
pub fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Incrementally builds a Prometheus text exposition (version 0.0.4)
/// document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The `Content-Type` a scrape response carrying this document must
    /// declare.
    pub const CONTENT_TYPE: &'static str = "text/plain; version=0.0.4";

    /// Writes the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is `counter`, `gauge` or `histogram`.
    pub fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Writes one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        if value.is_finite() {
            let _ = writeln!(self.out, " {value}");
        } else if value.is_nan() {
            let _ = writeln!(self.out, " NaN");
        } else if value > 0.0 {
            let _ = writeln!(self.out, " +Inf");
        } else {
            let _ = writeln!(self.out, " -Inf");
        }
    }

    /// Writes a complete single-sample counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        #[allow(clippy::cast_precision_loss)]
        self.sample(name, &[], value as f64);
    }

    /// Writes a complete single-sample gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Writes a [`Histogram`] as a Prometheus histogram family in
    /// **seconds**: cumulative `_bucket{le="..."}` lines derived from
    /// the log₂-µs buckets, then `_sum` and `_count`.
    #[allow(clippy::cast_precision_loss)]
    pub fn histogram_seconds(&mut self, name: &str, help: &str, hist: &Histogram) {
        self.header(name, help, "histogram");
        let counts = hist.counts();
        let bucket = format!("{name}_bucket");
        let mut cumulative: u64 = 0;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            match bucket_upper_us(i) {
                Some(upper_us) => {
                    let le = upper_us as f64 * 1e-6;
                    self.sample(&bucket, &[("le", &le.to_string())], cumulative as f64);
                }
                None => self.sample(&bucket, &[("le", "+Inf")], cumulative as f64),
            }
        }
        debug_assert_eq!(counts.len(), BUCKETS);
        self.sample(&format!("{name}_sum"), &[], hist.sum_us() as f64 * 1e-6);
        self.sample(&format!("{name}_count"), &[], cumulative as f64);
    }

    /// Appends every metric of a [`Registry`], in name order.
    /// Histograms are exported via [`PromWriter::histogram_seconds`].
    #[allow(clippy::cast_precision_loss)]
    pub fn registry(&mut self, registry: &Registry) {
        for (name, metric, help) in registry.metrics() {
            match metric {
                Metric::Counter(c) => self.counter(&name, &help, c.get()),
                Metric::Gauge(g) => self.gauge(&name, &help, g.get()),
                Metric::Histogram(h) => self.histogram_seconds(&name, &help, &h),
            }
        }
    }

    /// The finished document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}
