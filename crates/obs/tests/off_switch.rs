//! Proves the disabled fast path really is free: with profiling off,
//! opening/annotating/dropping spans performs **zero heap allocations**
//! and records nothing.
//!
//! Lives in its own integration-test binary so the counting global
//! allocator doesn't see allocations from unrelated tests, and so
//! nothing else can flip the global enable switch mid-measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every allocation made through the global allocator.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_profiling_allocates_nothing_and_records_nothing() {
    assert!(!dram_obs::enabled(), "profiling must start disabled");
    // Warm up everything lazy (sink, epoch) outside the measured window.
    dram_obs::clear();
    let warm_start = Instant::now();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000 {
        let mut guard = dram_obs::span("off.hot");
        guard.add_arg("i", i);
        let _typed = dram_obs::span(format_args_free(i));
        dram_obs::ManualSpan::new("off.manual", warm_start, Instant::now())
            .arg("i", i)
            .commit();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled span path must not touch the allocator"
    );
    assert!(
        dram_obs::drain().spans.is_empty(),
        "disabled span path must not record spans"
    );

    // The journal sized 0 (never configured) must be just as free:
    // every record/note/context call is a relaxed load and return.
    assert!(!dram_obs::journal::enabled(), "journal must start sized 0");
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        dram_obs::journal::record(dram_obs::journal::EventKind::Accept, i, 0, i);
        dram_obs::journal::set_context(i, i);
        dram_obs::journal::note(dram_obs::journal::EventKind::CacheHit, 0);
        dram_obs::journal::note(dram_obs::journal::EventKind::FaultFire, i);
        dram_obs::journal::set_context(0, 0);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "size-0 journal path must not touch the allocator"
    );
    assert!(
        dram_obs::journal::snapshot().is_empty(),
        "size-0 journal must record nothing"
    );
}

/// A static name per branch so the loop body itself allocates nothing.
fn format_args_free(i: u64) -> &'static str {
    if i.is_multiple_of(2) {
        "off.even"
    } else {
        "off.odd"
    }
}
