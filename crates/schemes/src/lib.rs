//! # dram-schemes
//!
//! Quantitative evaluation of the DRAM power-reduction proposals §V of
//! Vogelsang (MICRO 2010) discusses, using the charge-accounting model:
//!
//! * **Selective bitline activation** (Udipi et al. \[15\]): defer the
//!   activate until the column address is known and fire only the needed
//!   wordline segment.
//! * **Single sub-array access** (Udipi et al. \[15\]): fetch the whole
//!   cache line from one sub-array.
//! * **Segmented datalines** (Jeong et al. \[8\]): cut-offs in the center
//!   stripe minimize active dataline length.
//! * **TSV stacking** (Kang et al. \[9\]): 3-D stacking shortens global
//!   wiring and shrinks the shared periphery.
//! * **Mini-rank** (Zheng et al. \[14\]): narrow the per-access data path
//!   so fewer devices activate per cache line.
//! * **Reduced CSL ratio** (the paper's own §V sketch): re-architect the
//!   column path to an 8:1 page-to-access ratio so a 64 B line needs only
//!   a 512 B page.
//!
//! The common metric is the energy to fetch one 64-byte cache line from a
//! random row out of a rank of four x16 devices, expressed per bit, plus
//! the die-area overhead each scheme costs — §V's point being that
//! schemes touching the on-pitch stripes pay significant area.
#![warn(missing_docs)]

use dram_core::{DramDescription, EvalEngine, ModelError};
use dram_units::{Joules, SquareMeters};

pub mod ablations;
mod transforms;

pub use transforms::{apply_stacked, apply_stacked_with, Scheme};

/// Cache line size the rank-level metric fetches.
pub const CACHE_LINE_BITS: f64 = 512.0;

/// Devices forming the evaluated rank (four x16 devices = 64-bit bus).
pub const RANK_DEVICES: f64 = 4.0;

/// Evaluation result for one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeEvaluation {
    /// The evaluated scheme.
    pub scheme: Scheme,
    /// Activate + precharge energy per device row cycle after the
    /// transformation.
    pub act_pre_energy: Joules,
    /// Read energy per column access after the transformation.
    pub read_energy: Joules,
    /// Rank-level energy per cache-line bit.
    pub energy_per_bit: Joules,
    /// Relative saving versus the baseline (positive = saves energy).
    pub savings: f64,
    /// Die area after the transformation.
    pub die_area: SquareMeters,
    /// Relative die-area overhead versus baseline (positive = larger
    /// die, i.e. higher cost per bit).
    pub area_overhead: f64,
    /// Feasibility notes from the §V discussion.
    pub notes: &'static str,
}

/// Evaluates one scheme against a baseline description.
///
/// # Errors
///
/// Returns [`ModelError`] if the baseline or the transformed description
/// fails validation.
pub fn evaluate(base: &DramDescription, scheme: Scheme) -> Result<SchemeEvaluation, ModelError> {
    evaluate_with(EvalEngine::global(), base, scheme)
}

/// [`evaluate`] on an explicit engine: the baseline model is fetched from
/// the engine's memoizing cache, so repeated scheme evaluations against
/// the same baseline rebuild it only once.
///
/// # Errors
///
/// Returns [`ModelError`] if the baseline or the transformed description
/// fails validation.
pub fn evaluate_with(
    engine: &EvalEngine,
    base: &DramDescription,
    scheme: Scheme,
) -> Result<SchemeEvaluation, ModelError> {
    let base_model = engine.model(base)?;
    let baseline = transforms::rank_metrics(&base_model, Scheme::Baseline);
    let result = transforms::apply_with(engine, base, scheme)?;
    Ok(against_baseline(result, &baseline))
}

fn against_baseline(result: SchemeEvaluation, baseline: &SchemeEvaluation) -> SchemeEvaluation {
    let savings = 1.0 - result.energy_per_bit.joules() / baseline.energy_per_bit.joules();
    let area_overhead = result.die_area.square_meters() / baseline.die_area.square_meters() - 1.0;
    SchemeEvaluation {
        savings,
        area_overhead,
        ..result
    }
}

/// Evaluates the baseline and every scheme, in presentation order.
///
/// # Errors
///
/// Returns [`ModelError`] if any transformed description fails validation.
pub fn evaluate_all(base: &DramDescription) -> Result<Vec<SchemeEvaluation>, ModelError> {
    evaluate_all_with(EvalEngine::global(), base)
}

/// [`evaluate_all`] on an explicit engine: the baseline is built once and
/// shared, and the schemes are evaluated concurrently. Result order (and
/// every bit of every result) matches the serial walk.
///
/// # Errors
///
/// Returns [`ModelError`] if any transformed description fails validation.
pub fn evaluate_all_with(
    engine: &EvalEngine,
    base: &DramDescription,
) -> Result<Vec<SchemeEvaluation>, ModelError> {
    let base_model = engine.model(base)?;
    let baseline = transforms::rank_metrics(&base_model, Scheme::Baseline);
    engine
        .map(&Scheme::ALL, |&s| transforms::apply_with(engine, base, s))
        .into_iter()
        .map(|r| r.map(|result| against_baseline(result, &baseline)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    fn base() -> DramDescription {
        ddr3_1g_x16_55nm()
    }

    #[test]
    fn baseline_has_zero_savings_and_overhead() {
        let e = evaluate(&base(), Scheme::Baseline).expect("evaluates");
        assert!(e.savings.abs() < 1e-12);
        assert!(e.area_overhead.abs() < 1e-12);
        assert!(e.energy_per_bit.picojoules() > 1.0);
    }

    #[test]
    fn every_scheme_saves_energy() {
        for e in evaluate_all(&base()).expect("evaluates") {
            if e.scheme == Scheme::Baseline {
                continue;
            }
            assert!(
                e.savings > 0.0,
                "{}: expected savings, got {}",
                e.scheme.name(),
                e.savings
            );
            assert!(e.savings < 0.95, "{}: implausible savings", e.scheme.name());
        }
    }

    #[test]
    fn row_schemes_cut_activation_energy_hard() {
        let sba = evaluate(&base(), Scheme::selective_bitline_activation()).expect("evaluates");
        let baseline = evaluate(&base(), Scheme::Baseline).expect("evaluates");
        // Firing 1 of 32 sub-arrays must cut act/pre energy by an order
        // of magnitude.
        assert!(
            sba.act_pre_energy.joules() < baseline.act_pre_energy.joules() / 5.0,
            "act+pre {} vs {}",
            sba.act_pre_energy,
            baseline.act_pre_energy
        );
    }

    #[test]
    fn on_pitch_schemes_pay_area() {
        // §V: changes in the SA or LWD stripes have significant area
        // impact; center-stripe (off-pitch) changes are nearly free.
        let sba = evaluate(&base(), Scheme::selective_bitline_activation()).expect("ok");
        let ssa = evaluate(&base(), Scheme::SingleSubarrayAccess).expect("ok");
        let seg = evaluate(&base(), Scheme::SegmentedDatalines).expect("ok");
        assert!(
            sba.area_overhead > 0.01,
            "SBA overhead {}",
            sba.area_overhead
        );
        assert!(
            ssa.area_overhead > sba.area_overhead,
            "SSA must cost more than SBA"
        );
        assert!(
            seg.area_overhead < 0.01,
            "segmented datalines are off-pitch: {}",
            seg.area_overhead
        );
    }

    #[test]
    fn mini_rank_saves_mostly_activation() {
        let mr = evaluate(&base(), Scheme::MiniRank).expect("ok");
        // One device activating instead of four: large rank-level saving.
        assert!(mr.savings > 0.3, "mini-rank savings {}", mr.savings);
        // No die change on the device itself.
        assert!(mr.area_overhead.abs() < 1e-9);
    }

    #[test]
    fn reduced_csl_ratio_shrinks_page_energy() {
        let r = evaluate(&base(), Scheme::ReducedCslRatio).expect("ok");
        let b = evaluate(&base(), Scheme::Baseline).expect("ok");
        // A 4x smaller page cuts act/pre close to 4x.
        let ratio = b.act_pre_energy.joules() / r.act_pre_energy.joules();
        assert!((2.0..6.0).contains(&ratio), "act ratio {ratio}");
    }

    #[test]
    fn parallel_evaluation_matches_serial_bit_for_bit() {
        let serial = evaluate_all_with(&EvalEngine::new().threads(1), &base()).expect("ok");
        let parallel = evaluate_all_with(&EvalEngine::new().threads(8), &base()).expect("ok");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.scheme, p.scheme);
            assert_eq!(
                s.energy_per_bit.joules().to_bits(),
                p.energy_per_bit.joules().to_bits()
            );
            assert_eq!(s.savings.to_bits(), p.savings.to_bits());
            assert_eq!(s.area_overhead.to_bits(), p.area_overhead.to_bits());
        }
    }

    #[test]
    fn shared_baseline_is_built_once() {
        let engine = EvalEngine::new().threads(4);
        let _ = evaluate_all_with(&engine, &base()).expect("ok");
        let stats = engine.cache_stats();
        // The unmodified description is needed by the baseline metrics and
        // by the Baseline / SegmentedDatalines / MiniRank arms; the cache
        // serves all but the first from memory.
        assert!(stats.hits >= 3, "hits {}", stats.hits);
        // A second full evaluation rebuilds nothing.
        let misses = stats.misses;
        let _ = evaluate_all_with(&engine, &base()).expect("ok");
        assert_eq!(engine.cache_stats().misses, misses);
    }

    #[test]
    fn notes_are_present_for_all_schemes() {
        for e in evaluate_all(&base()).expect("ok") {
            assert!(!e.notes.is_empty(), "{}", e.scheme.name());
        }
    }
}
