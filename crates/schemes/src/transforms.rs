//! Scheme transformations: how each §V proposal modifies the device
//! description and/or rescales the affected charge contributors.
//!
//! Two mechanisms are used, matching how the paper evaluates proposals:
//!
//! * **Description edits** where the proposal is expressible in the
//!   Table I inputs (smaller pages, shorter periphery, narrower access) —
//!   the model then recomputes everything from first principles.
//! * **Contributor rescaling** where the proposal changes *how much of*
//!   a structure operates per command (e.g. firing 1 of 32 sub-arrays):
//!   the affected, individually-named charge items of the operation are
//!   scaled by the activation fraction.

use dram_core::{Dram, DramDescription, EvalEngine, ModelError, Operation};
use dram_units::Joules;

use crate::{SchemeEvaluation, CACHE_LINE_BITS, RANK_DEVICES};

/// A §V power-reduction scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The unmodified commodity device.
    Baseline,
    /// Udipi et al.: activate only `activated_subarrays` of the page's
    /// sub-arrays once the column address is known.
    SelectiveBitlineActivation {
        /// Sub-arrays fired per activate (1 = minimum wordline length).
        activated_subarrays: u32,
    },
    /// Udipi et al.: the whole cache line from a single sub-array.
    SingleSubarrayAccess,
    /// Jeong et al.: segmented main datalines with cut-offs.
    SegmentedDatalines,
    /// Kang et al.: TSV stacking shortens global wiring and periphery.
    TsvStacking,
    /// Zheng et al.: one narrow device serves the whole line.
    MiniRank,
    /// The paper's own sketch: 8:1 page-to-access ratio (512 B page for
    /// a 64 B line).
    ReducedCslRatio,
}

impl Scheme {
    /// All schemes in presentation order (baseline first).
    pub const ALL: [Scheme; 7] = [
        Scheme::Baseline,
        Scheme::SelectiveBitlineActivation {
            activated_subarrays: 1,
        },
        Scheme::SingleSubarrayAccess,
        Scheme::SegmentedDatalines,
        Scheme::TsvStacking,
        Scheme::MiniRank,
        Scheme::ReducedCslRatio,
    ];

    /// Canonical minimum-wordline-length selective activation.
    #[must_use]
    pub fn selective_bitline_activation() -> Self {
        Scheme::SelectiveBitlineActivation {
            activated_subarrays: 1,
        }
    }

    /// Scheme name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline commodity",
            Scheme::SelectiveBitlineActivation { .. } => "selective bitline activation",
            Scheme::SingleSubarrayAccess => "single sub-array access",
            Scheme::SegmentedDatalines => "segmented datalines",
            Scheme::TsvStacking => "TSV stacking",
            Scheme::MiniRank => "mini-rank",
            Scheme::ReducedCslRatio => "reduced CSL ratio",
        }
    }

    /// The work proposing the scheme.
    #[must_use]
    pub fn proposed_by(self) -> &'static str {
        match self {
            Scheme::Baseline => "—",
            Scheme::SelectiveBitlineActivation { .. } | Scheme::SingleSubarrayAccess => {
                "Udipi et al., ISCA 2010 [15]"
            }
            Scheme::SegmentedDatalines => "Jeong et al., ISSCC 2009 [8]",
            Scheme::TsvStacking => "Kang et al., JSSC 2010 [9]",
            Scheme::MiniRank => "Zheng et al., MICRO 2008 [14]",
            Scheme::ReducedCslRatio => "this paper, §V",
        }
    }

    fn notes(self) -> &'static str {
        match self {
            Scheme::Baseline => "reference commodity organization",
            Scheme::SelectiveBitlineActivation { .. } => {
                "needs per-segment wordline selects in the on-pitch LWD stripes; \
                 activate is deferred until the column command (latency cost)"
            }
            Scheme::SingleSubarrayAccess => {
                "requires fundamentally rebuilding the array block data path \
                 (today 64:1–128:1 CSL:MDQ); heavy on-pitch area impact"
            }
            Scheme::SegmentedDatalines => {
                "cut-offs live in the off-pitch center stripe: little area impact"
            }
            Scheme::TsvStacking => {
                "models one die of the stack; TSV process cost and yield not included"
            }
            Scheme::MiniRank => {
                "device unchanged; saving comes from activating one device per line \
                 instead of the whole rank, at longer transfer occupancy"
            }
            Scheme::ReducedCslRatio => {
                "frees dense metal-3 tracks for master datalines; needs a 512 B page \
                 organization and differential MDQ pairs"
            }
        }
    }
}

impl core::fmt::Display for Scheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Rank-level metrics of an (already transformed) model with optional
/// per-item energy scaling applied to the row path.
pub(crate) fn rank_metrics(dram: &Dram, scheme: Scheme) -> SchemeEvaluation {
    metrics_with_scaling(dram, scheme, &[], 1.0)
}

/// Labels of activate/precharge charge items that scale with the number
/// of fired sub-arrays.
const ROW_FRACTION_LABELS: [&str; 6] = [
    "local wordlines",
    "bitline sensing",
    "cell restore",
    "sense amplifier set lines",
    "set drivers",
    "equalize lines",
];

fn scaled_op_energy(dram: &Dram, op: Operation, labels: &[&str], factor: f64) -> Joules {
    dram.operation_energy(op)
        .items
        .iter()
        .map(|i| {
            if labels.contains(&i.label.as_str()) {
                i.external * factor
            } else {
                i.external
            }
        })
        .sum()
}

fn metrics_with_scaling(
    dram: &Dram,
    scheme: Scheme,
    row_labels: &[&str],
    row_factor: f64,
) -> SchemeEvaluation {
    let act = scaled_op_energy(dram, Operation::Activate, row_labels, row_factor);
    let pre = scaled_op_energy(dram, Operation::Precharge, row_labels, row_factor);
    let rd = scaled_op_energy(dram, Operation::Read, row_labels, row_factor);
    let line_energy = match scheme {
        // One narrow device does the whole line: one row cycle plus four
        // column bursts.
        Scheme::MiniRank => act + pre + rd * RANK_DEVICES,
        // All rank devices cycle a row and burst once.
        _ => (act + pre + rd) * RANK_DEVICES,
    };
    SchemeEvaluation {
        scheme,
        act_pre_energy: act + pre,
        read_energy: rd,
        energy_per_bit: line_energy / CACHE_LINE_BITS,
        savings: 0.0,
        die_area: dram.area().die,
        area_overhead: 0.0,
        notes: scheme.notes(),
    }
}

/// Applies a scheme and computes its rank metrics (savings/overhead are
/// filled in by the caller against the baseline). Test convenience on
/// the process-wide engine.
#[cfg(test)]
pub(crate) fn apply(
    base: &DramDescription,
    scheme: Scheme,
) -> Result<SchemeEvaluation, ModelError> {
    apply_with(EvalEngine::global(), base, scheme)
}

/// [`apply`] with all model construction routed through `engine`'s
/// memoizing cache, so repeated evaluations of the same variant (e.g.
/// the shared baseline) rebuild nothing.
pub(crate) fn apply_with(
    engine: &EvalEngine,
    base: &DramDescription,
    scheme: Scheme,
) -> Result<SchemeEvaluation, ModelError> {
    match scheme {
        Scheme::Baseline => {
            let dram = engine.model(base)?;
            Ok(rank_metrics(&dram, scheme))
        }
        Scheme::SelectiveBitlineActivation {
            activated_subarrays,
        } => {
            // On-pitch cost: segment selects widen the LWD stripe.
            let mut desc = base.clone();
            desc.floorplan.lwd_stripe_width = desc.floorplan.lwd_stripe_width * 1.3;
            let dram = engine.model(&desc)?;
            let sub_cols = f64::from(dram.geometry().sub_cols);
            let fraction = f64::from(activated_subarrays.max(1)).min(sub_cols) / sub_cols;
            Ok(metrics_with_scaling(
                &dram,
                scheme,
                &ROW_FRACTION_LABELS,
                fraction,
            ))
        }
        Scheme::SingleSubarrayAccess => {
            // All line bits from one sub-array: activate one segment, but
            // pay a wider SA stripe (more switches and local I/O) and a
            // wider LWD stripe.
            let mut desc = base.clone();
            desc.floorplan.sa_stripe_width = desc.floorplan.sa_stripe_width * 1.5;
            desc.floorplan.lwd_stripe_width = desc.floorplan.lwd_stripe_width * 1.3;
            let dram = engine.model(&desc)?;
            let fraction = 1.0 / f64::from(dram.geometry().sub_cols);
            Ok(metrics_with_scaling(
                &dram,
                scheme,
                &ROW_FRACTION_LABELS,
                fraction,
            ))
        }
        Scheme::SegmentedDatalines => {
            // Cut-offs halve the average driven dataline length; the
            // re-drivers remain. Net ~40 % reduction on the center-stripe
            // data bus contributions.
            let dram = engine.model(base)?;
            let labels = ["read data bus", "write data bus", "master datalines"];
            let act = dram.operation_energy(Operation::Activate).external();
            let pre = dram.operation_energy(Operation::Precharge).external();
            let rd = scaled_op_energy(&dram, Operation::Read, &labels, 0.6);
            let line = (act + pre + rd) * RANK_DEVICES;
            Ok(SchemeEvaluation {
                scheme,
                act_pre_energy: act + pre,
                read_energy: rd,
                energy_per_bit: line / CACHE_LINE_BITS,
                savings: 0.0,
                die_area: dram.area().die,
                area_overhead: 0.0,
                notes: scheme.notes(),
            })
        }
        Scheme::TsvStacking => {
            // Shared periphery collapses onto the base die: peripheral
            // blocks and re-drivers shrink, shortening every global run.
            let mut desc = base.clone();
            for sizes in [
                &mut desc.floorplan.horizontal_sizes,
                &mut desc.floorplan.vertical_sizes,
            ] {
                for v in sizes.values_mut() {
                    *v = *v * 0.6;
                }
            }
            for sig in &mut desc.signaling.signals {
                for seg in &mut sig.segments {
                    use dram_core::params::SegmentSpec;
                    let buffer = match seg {
                        SegmentSpec::Between { buffer, .. }
                        | SegmentSpec::Inside { buffer, .. } => buffer,
                    };
                    if let Some(b) = buffer {
                        b.nmos_width = b.nmos_width * 0.6;
                        b.pmos_width = b.pmos_width * 0.6;
                    }
                }
            }
            let dram = engine.model(&desc)?;
            Ok(rank_metrics(&dram, scheme))
        }
        Scheme::MiniRank => {
            let dram = engine.model(base)?;
            Ok(rank_metrics(&dram, scheme))
        }
        Scheme::ReducedCslRatio => {
            // 512 B page: two fewer column bits, two more row bits; the
            // column path carries more bits per CSL per sub-array, and the
            // denser metal-3 usage costs some SA stripe width.
            let mut desc = base.clone();
            if desc.spec.column_address_bits < 3 {
                return Err(ModelError::BadParameter {
                    name: "scheme.reduced_csl",
                    reason: "page too small to reduce further".into(),
                });
            }
            desc.spec.column_address_bits -= 2;
            desc.spec.row_address_bits += 2;
            desc.technology.bits_per_csl_per_subarray *= 4;
            desc.floorplan.sa_stripe_width = desc.floorplan.sa_stripe_width * 1.15;
            let dram = engine.model(&desc)?;
            Ok(rank_metrics(&dram, scheme))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    #[test]
    fn scheme_names_and_attribution() {
        for s in Scheme::ALL {
            assert!(!s.name().is_empty());
            assert!(!s.proposed_by().is_empty());
            assert_eq!(s.to_string(), s.name());
        }
    }

    #[test]
    fn sba_fraction_is_clamped() {
        let base = ddr3_1g_x16_55nm();
        let huge = apply(
            &base,
            Scheme::SelectiveBitlineActivation {
                activated_subarrays: 10_000,
            },
        )
        .expect("ok");
        let full = apply(&base, Scheme::Baseline).expect("ok");
        // Activating "everything" through SBA costs at least the baseline
        // row energy (plus the wider stripe).
        assert!(huge.act_pre_energy.joules() >= full.act_pre_energy.joules() * 0.99);
    }

    #[test]
    fn reduced_csl_requires_enough_column_bits() {
        let mut base = ddr3_1g_x16_55nm();
        base.spec.column_address_bits = 2;
        base.spec.row_address_bits += 8;
        assert!(apply(&base, Scheme::ReducedCslRatio).is_err());
    }

    #[test]
    fn tsv_shrinks_the_die() {
        let base = ddr3_1g_x16_55nm();
        let tsv = apply(&base, Scheme::TsvStacking).expect("ok");
        let b = apply(&base, Scheme::Baseline).expect("ok");
        assert!(tsv.die_area < b.die_area);
    }

    #[test]
    fn reduced_csl_page_is_quarter() {
        let base = ddr3_1g_x16_55nm();
        let mut desc = base.clone();
        desc.spec.column_address_bits -= 2;
        desc.spec.row_address_bits += 2;
        desc.technology.bits_per_csl_per_subarray *= 4;
        assert_eq!(desc.spec.page_bits() * 4, base.spec.page_bits());
        assert_eq!(desc.spec.density_bits(), base.spec.density_bits());
    }
}

/// Evaluates complementary §V schemes *stacked*: TSV periphery +
/// selective bitline activation + segmented datalines on the same device
/// — the "co-design" endpoint the paper's conclusion argues for.
/// (The reduced-CSL architecture is an *alternative* route to small
/// activation granularity, not a complement: stacking it on top of
/// selective activation adds its column-path cost without further row
/// savings.)
///
/// # Errors
///
/// Returns [`ModelError`] if the combined description fails validation.
pub fn apply_stacked(base: &DramDescription) -> Result<SchemeEvaluation, ModelError> {
    apply_stacked_with(EvalEngine::global(), base)
}

/// [`apply_stacked`] with model construction routed through `engine`'s
/// memoizing cache.
///
/// # Errors
///
/// Returns [`ModelError`] if the combined description fails validation.
pub fn apply_stacked_with(
    engine: &EvalEngine,
    base: &DramDescription,
) -> Result<SchemeEvaluation, ModelError> {
    // Description-level edits compose: shrink periphery (TSV), widen the
    // LWD stripes for the segment selects.
    let mut desc = base.clone();
    if desc.spec.column_address_bits < 3 {
        return Err(ModelError::BadParameter {
            name: "scheme.stacked",
            reason: "page too small for segment selects".into(),
        });
    }
    for sizes in [
        &mut desc.floorplan.horizontal_sizes,
        &mut desc.floorplan.vertical_sizes,
    ] {
        for v in sizes.values_mut() {
            *v = *v * 0.6;
        }
    }
    desc.floorplan.lwd_stripe_width = desc.floorplan.lwd_stripe_width * 1.3;

    let dram = engine.model(&desc)?;
    // Item-level effects compose on the rebuilt model: fire one
    // sub-array, segment the data buses.
    let fraction = 1.0 / f64::from(dram.geometry().sub_cols);
    let act = scaled_op_energy(&dram, Operation::Activate, &ROW_FRACTION_LABELS, fraction);
    let pre = scaled_op_energy(&dram, Operation::Precharge, &ROW_FRACTION_LABELS, fraction);
    let data_labels = ["read data bus", "write data bus", "master datalines"];
    let rd_row = scaled_op_energy(&dram, Operation::Read, &ROW_FRACTION_LABELS, fraction);
    // Apply the dataline segmentation on top of the row-scaled read.
    let rd_full = dram.operation_energy(Operation::Read).external();
    let rd_segmented = scaled_op_energy(&dram, Operation::Read, &data_labels, 0.6);
    let rd = rd_row + rd_segmented - rd_full;

    let line = (act + pre + rd) * RANK_DEVICES;
    Ok(SchemeEvaluation {
        scheme: Scheme::Baseline, // combined; labeled by the caller
        act_pre_energy: act + pre,
        read_energy: rd,
        energy_per_bit: line / CACHE_LINE_BITS,
        savings: 0.0,
        die_area: dram.area().die,
        area_overhead: 0.0,
        notes: "all §V device-level schemes stacked (co-design endpoint)",
    })
}

#[cfg(test)]
mod stacked_tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    #[test]
    fn stacked_schemes_compound() {
        let base = ddr3_1g_x16_55nm();
        let baseline = apply(&base, Scheme::Baseline).expect("ok");
        let stacked = apply_stacked(&base).expect("ok");
        let best_single = Scheme::ALL
            .iter()
            .filter(|&&s| s != Scheme::Baseline && s != Scheme::MiniRank)
            .map(|&s| apply(&base, s).expect("ok").energy_per_bit.joules())
            .fold(f64::INFINITY, f64::min);
        // Stacking beats every single device-level scheme.
        assert!(
            stacked.energy_per_bit.joules() < best_single,
            "stacked {} vs best single {}",
            stacked.energy_per_bit.picojoules(),
            best_single * 1e12
        );
        // And saves most of the baseline line energy.
        let saving = 1.0 - stacked.energy_per_bit.joules() / baseline.energy_per_bit.joules();
        assert!(saving > 0.5, "stacked saving {saving}");
    }

    #[test]
    fn stacked_requires_reducible_page() {
        let mut base = ddr3_1g_x16_55nm();
        base.spec.column_address_bits = 2;
        base.spec.row_address_bits += 8;
        assert!(apply_stacked(&base).is_err());
    }
}
