//! Ablation studies of the commodity-DRAM design choices the paper's §II
//! describes as settled: hierarchical wordlines, bitline length, cell
//! architecture, page size, and prefetch. Each ablation swaps one choice
//! and quantifies what the baseline design buys.

use dram_core::charges::ChargeModel;
use dram_core::devices::cell_access_gate;
use dram_core::geometry::Geometry;
use dram_core::{Dram, DramDescription, EvalEngine, ModelError, Operation};
use dram_units::{Joules, SquareMeters};

/// One ablation row: the design variant's cost metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// Activate + precharge energy.
    pub row_energy: Joules,
    /// Random-access energy per bit.
    pub energy_per_bit: Joules,
    /// Die area.
    pub die_area: SquareMeters,
    /// What the variant changes.
    pub detail: String,
}

fn row_for(dram: &Dram, name: impl Into<String>, detail: impl Into<String>) -> AblationRow {
    AblationRow {
        name: name.into(),
        row_energy: dram.operation_energy(Operation::Activate).external()
            + dram.operation_energy(Operation::Precharge).external(),
        energy_per_bit: dram.energy_per_bit_random(),
        die_area: dram.area().die,
        detail: detail.into(),
    }
}

/// Hierarchical vs flat wordlines (the early-1990s transition of refs
/// \[5\], \[6\]): without sub-wordline drivers, one poly wordline spans the
/// whole block, and every activate charges the gates of the *entire*
/// page row directly from the Vpp rail through one driver.
///
/// # Errors
///
/// Returns [`ModelError`] if the baseline is invalid.
pub fn wordline_hierarchy(base: &DramDescription) -> Result<Vec<AblationRow>, ModelError> {
    wordline_hierarchy_with(EvalEngine::global(), base)
}

/// [`wordline_hierarchy`] with model construction routed through
/// `engine`'s memoizing cache.
///
/// # Errors
///
/// Returns [`ModelError`] if the baseline is invalid.
pub fn wordline_hierarchy_with(
    engine: &EvalEngine,
    base: &DramDescription,
) -> Result<Vec<AblationRow>, ModelError> {
    let hierarchical = engine.model(base)?;

    // Flat wordline: same cell array, no LWD stripes. The wordline
    // becomes one poly line of block length; its capacitance is the sum
    // of all cell gates plus poly wire over the full block width.
    let mut flat_desc = base.clone();
    flat_desc.floorplan.lwd_stripe_width = dram_units::Meters::from_um(0.05);
    let geom = Geometry::new(&flat_desc)?;
    let model = ChargeModel::new(&flat_desc, &geom);
    let tech = &flat_desc.technology;
    let cells = f64::from(flat_desc.floorplan.bits_per_local_wordline) * f64::from(geom.sub_cols);
    // Unstrapped poly carries several times the strapped specific
    // capacitance; use 2x as a conservative figure.
    let c_flat =
        cell_access_gate(tech) * cells + (tech.c_wire_lwl * 2.0) * geom.master_wordline_length();
    let _ = model;
    let flat = engine.model(&flat_desc)?;

    // Replace the hierarchical wordline-system energy with the flat line.
    let e = &base.electrical;
    let q_flat = c_flat * e.vpp;
    let flat_wl_external = dram_core::VoltageDomain::Vpp.external_energy(q_flat, e);
    let wl_labels = [
        "master wordline",
        "wordline driver select",
        "local wordlines",
        "master wordline decoder",
    ];
    let act = flat.operation_energy(Operation::Activate);
    let act_flat: Joules = act
        .items
        .iter()
        .filter(|i| !wl_labels.contains(&i.label.as_str()))
        .map(|i| i.external)
        .sum::<Joules>()
        + flat_wl_external;
    let pre = flat.operation_energy(Operation::Precharge).external();

    let mut flat_row = row_for(&flat, "flat wordline (no hierarchy)", "");
    flat_row.row_energy = act_flat + pre;
    flat_row.detail = format!(
        "one {:.1} mm poly wordline, C = {:.1} pF at Vpp; RC makes this \
         unusable at commodity speeds — the real reason for the transition",
        flat.geometry().master_wordline_length().millimeters(),
        c_flat.picofarads()
    );
    // The energy_per_bit field keeps the hierarchical column path; the
    // row energy delta is the meaningful signal.
    Ok(vec![
        row_for(
            &hierarchical,
            "hierarchical wordlines (baseline)",
            "master wordline in metal, 512-cell poly segments re-driven per stripe",
        ),
        flat_row,
    ])
}

/// Bitline length: 256 vs 512 vs 1024 cells per bitline — the §II
/// trade-off between sense-amplifier stripe area and bitline charge
/// (Table II row "increase in number of cells per bitline").
///
/// # Errors
///
/// Returns [`ModelError`] if a variant is internally inconsistent.
pub fn bitline_length(base: &DramDescription) -> Result<Vec<AblationRow>, ModelError> {
    bitline_length_with(EvalEngine::global(), base)
}

/// [`bitline_length`] on an explicit engine: the variants are evaluated
/// concurrently, in deterministic order.
///
/// # Errors
///
/// Returns [`ModelError`] if a variant is internally inconsistent.
pub fn bitline_length_with(
    engine: &EvalEngine,
    base: &DramDescription,
) -> Result<Vec<AblationRow>, ModelError> {
    let base_bits = f64::from(base.floorplan.bits_per_bitline);
    let mut variants = Vec::new();
    for bits in [256u32, 512, 1024] {
        let mut desc = base.clone();
        desc.floorplan.bits_per_bitline = bits;
        // Bitline capacitance scales with its length; the cell-junction
        // part dominates, so scale linearly.
        desc.technology.bitline_cap = desc.technology.bitline_cap * (f64::from(bits) / base_bits);
        // Rows per bank must stay divisible.
        if !desc.spec.rows_per_bank().is_multiple_of(u64::from(bits)) {
            continue;
        }
        variants.push((bits, desc));
    }
    engine
        .map(&variants, |(bits, desc)| {
            let dram = engine.model(desc)?;
            let stripes = dram.geometry().sub_rows + 1;
            Ok(row_for(
                &dram,
                format!("{bits} cells per bitline"),
                format!(
                    "{stripes} SA stripes per bank, C_bl = {:.0} fF",
                    dram.description().technology.bitline_cap.femtofarads()
                ),
            ))
        })
        .into_iter()
        .collect()
}

/// Page size: the activate granularity (coladd ± k with rowadd ∓ k keeps
/// density constant) — the §V motivation quantified.
///
/// # Errors
///
/// Returns [`ModelError`] if a variant is internally inconsistent.
pub fn page_size(base: &DramDescription) -> Result<Vec<AblationRow>, ModelError> {
    page_size_with(EvalEngine::global(), base)
}

/// [`page_size`] on an explicit engine: the variants are evaluated
/// concurrently, in deterministic order.
///
/// # Errors
///
/// Returns [`ModelError`] if a variant is internally inconsistent.
pub fn page_size_with(
    engine: &EvalEngine,
    base: &DramDescription,
) -> Result<Vec<AblationRow>, ModelError> {
    let mut variants = Vec::new();
    for shift in [-2i32, -1, 0, 1] {
        let mut desc = base.clone();
        let col = i64::from(desc.spec.column_address_bits) + i64::from(shift);
        let row = i64::from(desc.spec.row_address_bits) - i64::from(shift);
        if col < 7 || row < 10 {
            continue;
        }
        desc.spec.column_address_bits = u32::try_from(col).expect("in range");
        desc.spec.row_address_bits = u32::try_from(row).expect("in range");
        if !desc
            .spec
            .page_bits()
            .is_multiple_of(u64::from(desc.floorplan.bits_per_local_wordline))
        {
            continue;
        }
        if !desc
            .spec
            .rows_per_bank()
            .is_multiple_of(u64::from(desc.floorplan.bits_per_bitline))
        {
            continue;
        }
        variants.push(desc);
    }
    engine
        .map(&variants, |desc| {
            let dram = engine.model(desc)?;
            let page = dram.description().spec.page_bits();
            Ok(row_for(
                &dram,
                format!("{} B page", page / 8),
                format!("{} sub-arrays per activate", dram.geometry().sub_cols),
            ))
        })
        .into_iter()
        .collect()
}

/// Cell architecture: folded 8F² vs open 6F² vs vertical 4F² at the same
/// node (the Table II structural transitions).
///
/// # Errors
///
/// Returns [`ModelError`] if a variant is internally inconsistent.
pub fn cell_architecture(base: &DramDescription) -> Result<Vec<AblationRow>, ModelError> {
    cell_architecture_with(EvalEngine::global(), base)
}

/// [`cell_architecture`] on an explicit engine: the variants are
/// evaluated concurrently, in deterministic order.
///
/// # Errors
///
/// Returns [`ModelError`] if a variant is internally inconsistent.
pub fn cell_architecture_with(
    engine: &EvalEngine,
    base: &DramDescription,
) -> Result<Vec<AblationRow>, ModelError> {
    use dram_core::params::BitlineArchitecture;
    // Feature size from the bitline pitch (2F in all three architectures).
    let feature = base.floorplan.bitline_pitch * 0.5;
    let mut variants = Vec::new();
    for (arch, label) in [
        (BitlineArchitecture::Folded, "folded 8F²"),
        (BitlineArchitecture::Open, "open 6F²"),
        (BitlineArchitecture::Vertical4F2, "vertical 4F²"),
    ] {
        let mut desc = base.clone();
        desc.floorplan.bitline_architecture = arch;
        // Cell pitch along the bitline: 2F for folded (cells every other
        // crossing make up the 8F²) and 4F², 3F for open 6F².
        desc.floorplan.wordline_pitch = match arch {
            BitlineArchitecture::Open => feature * 3.0,
            _ => feature * 2.0,
        };
        // Folded pairs run side by side: slightly more bitline coupling.
        if arch == BitlineArchitecture::Folded {
            desc.technology.bitline_cap = desc.technology.bitline_cap * 1.15;
        }
        variants.push((arch, label, desc));
    }
    engine
        .map(&variants, |(arch, label, desc)| {
            let dram = engine.model(desc)?;
            Ok(row_for(
                &dram,
                *label,
                format!(
                    "cell {:.0} F², array efficiency {:.0}%",
                    arch.cell_area_f2(),
                    dram.area().array_efficiency() * 100.0
                ),
            ))
        })
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_core::reference::ddr3_1g_x16_55nm;

    fn base() -> DramDescription {
        ddr3_1g_x16_55nm()
    }

    #[test]
    fn hierarchy_saves_wordline_energy_and_costs_area() {
        let rows = wordline_hierarchy(&base()).expect("runs");
        assert_eq!(rows.len(), 2);
        let (hier, flat) = (&rows[0], &rows[1]);
        // The flat wordline moves more charge at Vpp per activate...
        assert!(
            flat.row_energy > hier.row_energy,
            "flat {} vs hierarchical {}",
            flat.row_energy,
            hier.row_energy
        );
        // ...but the hierarchy costs LWD stripe area.
        assert!(hier.die_area > flat.die_area);
    }

    #[test]
    fn longer_bitlines_trade_area_for_energy() {
        let rows = bitline_length(&base()).expect("runs");
        assert_eq!(rows.len(), 3);
        // Energy grows with bitline length...
        assert!(rows[0].row_energy < rows[1].row_energy);
        assert!(rows[1].row_energy < rows[2].row_energy);
        // ...while die area shrinks (fewer SA stripes).
        assert!(rows[0].die_area > rows[1].die_area);
        assert!(rows[1].die_area > rows[2].die_area);
    }

    #[test]
    fn smaller_pages_cut_row_energy() {
        let rows = page_size(&base()).expect("runs");
        assert!(rows.len() >= 3);
        for pair in rows.windows(2) {
            assert!(
                pair[0].row_energy < pair[1].row_energy,
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn parallel_ablations_match_serial_bit_for_bit() {
        let e1 = EvalEngine::new().threads(1);
        let e8 = EvalEngine::new().threads(8);
        let runs = [
            (wordline_hierarchy_with(&e1, &base()), wordline_hierarchy_with(&e8, &base())),
            (bitline_length_with(&e1, &base()), bitline_length_with(&e8, &base())),
            (page_size_with(&e1, &base()), page_size_with(&e8, &base())),
            (cell_architecture_with(&e1, &base()), cell_architecture_with(&e8, &base())),
        ];
        for (serial, parallel) in runs {
            let (serial, parallel) = (serial.expect("ok"), parallel.expect("ok"));
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(&parallel) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    a.row_energy.joules().to_bits(),
                    b.row_energy.joules().to_bits()
                );
                assert_eq!(
                    a.energy_per_bit.joules().to_bits(),
                    b.energy_per_bit.joules().to_bits()
                );
            }
        }
    }

    #[test]
    fn denser_cells_shrink_the_die() {
        let rows = cell_architecture(&base()).expect("runs");
        assert_eq!(rows.len(), 3);
        // folded > open > 4F² in die area.
        assert!(rows[0].die_area > rows[1].die_area);
        assert!(rows[1].die_area > rows[2].die_area);
    }
}
