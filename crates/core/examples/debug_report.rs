//! Developer tool: prints the full IDD report and per-operation energy
//! itemization of the reference device (used during calibration).
//!
//! Run with: `cargo run -p dram-core --example debug_report`

use dram_core::reference::ddr3_1g_x16_55nm;
use dram_core::{Dram, Operation};

fn main() {
    let m = Dram::new(ddr3_1g_x16_55nm()).unwrap();
    let idd = m.idd();
    println!("IDD0  {}", idd.idd0);
    println!("IDD2N {}", idd.idd2n);
    println!("IDD4R {}", idd.idd4r);
    println!("IDD4W {}", idd.idd4w);
    println!("IDD5  {}", idd.idd5);
    println!("IDD7  {}", idd.idd7);
    println!("bg {}", m.background_power());
    for op in Operation::ALL {
        let e = m.operation_energy(op);
        println!(
            "== {} total {} (array share {:.2})",
            op,
            e.external(),
            e.array_share()
        );
        for i in &e.items {
            println!(
                "   {:38} {:>6} {:>12}",
                i.label,
                i.domain.to_string(),
                format!("{}", i.external)
            );
        }
    }
    println!("epb stream {}", m.energy_per_bit_streaming());
    println!("epb random {}", m.energy_per_bit_random());
    let a = m.area();
    println!(
        "die {:.1} mm2, eff {:.2}, sa {:.3}, lwd {:.3}",
        a.die.square_millimeters(),
        a.array_efficiency(),
        a.sa_share(),
        a.lwd_share()
    );
}
