//! The top-level model: validation, the Fig. 4 pipeline, datasheet
//! currents, pattern power, and energy metrics.
//!
//! [`Dram::new`] runs the whole flow of Fig. 4 up to the per-operation
//! power: parse/validate the description, resolve geometry, extract wire
//! and device capacitances, book per-operation charges, and convert them
//! to energies. Pattern power and IDD currents are then cheap queries.

use dram_units::{Amperes, Hertz, Joules, Watts};

use crate::area::AreaReport;
use crate::charges::ChargeModel;
use crate::error::ModelError;
use crate::geometry::Geometry;
use crate::params::DramDescription;
use crate::pattern::{Command, Pattern};
use crate::perturb::{BuildPhase, DirtySet};
use crate::power::{static_power, Operation, OperationEnergy};
use crate::timing::{TimedCommand, TimedPattern};

/// Process-wide count of [`Dram::new`] calls, registered once.
fn model_builds_total() -> &'static std::sync::Arc<dram_obs::Counter> {
    static COUNTER: std::sync::OnceLock<std::sync::Arc<dram_obs::Counter>> =
        std::sync::OnceLock::new();
    COUNTER.get_or_init(|| {
        dram_obs::Registry::global().counter(
            "dram_model_builds_total",
            "DRAM models built from a description (cache misses included).",
        )
    })
}

/// Process-wide count of differential rebuilds ([`Dram::rebuild_from`]
/// and the engine's perturbation fast path), registered once.
pub(crate) fn model_rebuilds_total() -> &'static std::sync::Arc<dram_obs::Counter> {
    static COUNTER: std::sync::OnceLock<std::sync::Arc<dram_obs::Counter>> =
        std::sync::OnceLock::new();
    COUNTER.get_or_init(|| {
        dram_obs::Registry::global().counter(
            "dram_model_rebuilds_total",
            "Differential model rebuilds (dirty phases only, base model reused).",
        )
    })
}

/// Process-wide count of build phases skipped by differential rebuilds
/// (phases whose outputs were reused from the base model), registered
/// once. Validation is never counted: every rebuild re-validates.
pub(crate) fn rebuild_phases_skipped_total() -> &'static std::sync::Arc<dram_obs::Counter> {
    static COUNTER: std::sync::OnceLock<std::sync::Arc<dram_obs::Counter>> =
        std::sync::OnceLock::new();
    COUNTER.get_or_init(|| {
        dram_obs::Registry::global().counter(
            "dram_rebuild_phases_skipped_total",
            "Build phases reused from the base model across differential rebuilds.",
        )
    })
}

/// Number of refresh commands that cover the whole device (JEDEC: 8192
/// per refresh window).
pub const REFRESH_COMMANDS_PER_WINDOW: u64 = 8192;

/// A validated DRAM power model.
#[derive(Debug, Clone)]
pub struct Dram {
    desc: DramDescription,
    geom: Geometry,
    activate: OperationEnergy,
    precharge: OperationEnergy,
    read: OperationEnergy,
    write: OperationEnergy,
    clock_cycle: OperationEnergy,
}

/// Average power, supply current and background share of one pattern run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSummary {
    /// Average external power.
    pub power: Watts,
    /// Average external supply current (`power / Vdd`), the quantity
    /// datasheets specify.
    pub current: Amperes,
    /// Background (clock + static) share of the power.
    pub background: Watts,
}

/// The datasheet current report (Fig. 8/9 compare IDD0, IDD4R, IDD4W).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddReport {
    /// One-bank activate/precharge loop at tRC.
    pub idd0: Amperes,
    /// One-bank activate/read/precharge loop at tRC.
    pub idd1: Amperes,
    /// Precharged standby, clock running.
    pub idd2n: Amperes,
    /// Precharge power-down (CKE low, banks closed).
    pub idd2p: Amperes,
    /// Active standby (approximated as IDD2N; the model books no DC
    /// difference between open and closed banks).
    pub idd3n: Amperes,
    /// Active power-down (CKE low, bank open).
    pub idd3p: Amperes,
    /// Seamless read bursts.
    pub idd4r: Amperes,
    /// Seamless write bursts.
    pub idd4w: Amperes,
    /// Burst refresh at tRFC.
    pub idd5: Amperes,
    /// Self-refresh.
    pub idd6: Amperes,
    /// Bank-interleaved activate/read/precharge at maximum rate.
    pub idd7: Amperes,
}

/// Names one datasheet current of an [`IddReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IddKind {
    /// Activate/precharge loop current.
    Idd0,
    /// Activate/read/precharge loop current.
    Idd1,
    /// Precharged standby current.
    Idd2n,
    /// Precharge power-down current.
    Idd2p,
    /// Active standby current.
    Idd3n,
    /// Active power-down current.
    Idd3p,
    /// Burst read current.
    Idd4r,
    /// Burst write current.
    Idd4w,
    /// Burst refresh current.
    Idd5,
    /// Self-refresh current.
    Idd6,
    /// Interleaved activate/read/precharge current.
    Idd7,
}

impl IddKind {
    /// All kinds in datasheet order.
    pub const ALL: [IddKind; 11] = [
        IddKind::Idd0,
        IddKind::Idd1,
        IddKind::Idd2n,
        IddKind::Idd2p,
        IddKind::Idd3n,
        IddKind::Idd3p,
        IddKind::Idd4r,
        IddKind::Idd4w,
        IddKind::Idd5,
        IddKind::Idd6,
        IddKind::Idd7,
    ];

    /// The datasheet symbol.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            IddKind::Idd0 => "IDD0",
            IddKind::Idd1 => "IDD1",
            IddKind::Idd2n => "IDD2N",
            IddKind::Idd2p => "IDD2P",
            IddKind::Idd3n => "IDD3N",
            IddKind::Idd3p => "IDD3P",
            IddKind::Idd4r => "IDD4R",
            IddKind::Idd4w => "IDD4W",
            IddKind::Idd5 => "IDD5",
            IddKind::Idd6 => "IDD6",
            IddKind::Idd7 => "IDD7",
        }
    }
}

impl core::fmt::Display for IddKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.symbol())
    }
}

impl IddReport {
    /// Looks up one current by kind.
    #[must_use]
    pub fn get(&self, kind: IddKind) -> Amperes {
        match kind {
            IddKind::Idd0 => self.idd0,
            IddKind::Idd1 => self.idd1,
            IddKind::Idd2n => self.idd2n,
            IddKind::Idd2p => self.idd2p,
            IddKind::Idd3n => self.idd3n,
            IddKind::Idd3p => self.idd3p,
            IddKind::Idd4r => self.idd4r,
            IddKind::Idd4w => self.idd4w,
            IddKind::Idd5 => self.idd5,
            IddKind::Idd6 => self.idd6,
            IddKind::Idd7 => self.idd7,
        }
    }
}

impl core::fmt::Display for IddReport {
    /// Renders the datasheet-style current table, one symbol per line.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for kind in IddKind::ALL {
            writeln!(
                f,
                "{:<6} {:>8.1} mA",
                kind.symbol(),
                self.get(kind).milliamperes()
            )?;
        }
        Ok(())
    }
}

impl Dram {
    /// Builds and validates the model (Fig. 4 pipeline through
    /// "calculate power of each operation").
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any parameter is out of range or the
    /// floorplan, specification and signaling are mutually inconsistent.
    pub fn new(desc: DramDescription) -> Result<Self, ModelError> {
        let _build = dram_obs::span("model.build");
        model_builds_total().inc();
        {
            let _s = dram_obs::span("model.validate");
            validate(&desc)?;
        }
        let geom = {
            let _s = dram_obs::span("model.geometry");
            Geometry::new(&desc)?
        };
        let (activate, precharge, read, write, clock_cycle) = {
            let m = {
                let _s = dram_obs::span("model.devices");
                ChargeModel::new(&desc, &geom)
            };
            let books = {
                let _s = dram_obs::span("model.charges");
                [
                    m.activate(),
                    m.precharge(),
                    m.read(),
                    m.write(),
                    m.clock_cycle(),
                ]
            };
            let _s = dram_obs::span("model.power");
            let e = &desc.electrical;
            let [act, pre, rd, wr, clk] = &books;
            (
                OperationEnergy::from_charges(Operation::Activate, act, e),
                OperationEnergy::from_charges(Operation::Precharge, pre, e),
                OperationEnergy::from_charges(Operation::Read, rd, e),
                OperationEnergy::from_charges(Operation::Write, wr, e),
                OperationEnergy::from_charges(Operation::ClockCycle, clk, e),
            )
        };
        Ok(Self {
            desc,
            geom,
            activate,
            precharge,
            read,
            write,
            clock_cycle,
        })
    }

    /// Rebuilds the model for an edited description, re-running only the
    /// dirty build phases and reusing this model's outputs for the rest.
    ///
    /// `dirty` must cover every phase whose inputs differ between
    /// `self.description()` and `desc` — [`crate::Perturbation::dirty_set`]
    /// derives exactly that for parameter edits. Phases re-run with the
    /// same code as [`Dram::new`], so the result is bit-identical to a
    /// fresh build of `desc`. Validation always re-runs (any edit can push
    /// a parameter out of range); the devices and charges phases share the
    /// charge-model construction and re-run together.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] exactly when `Dram::new(desc.clone())`
    /// would.
    pub fn rebuild_from(&self, desc: &DramDescription, dirty: DirtySet) -> Result<Self, ModelError> {
        let _build = dram_obs::span("model.rebuild").arg("dirty", dirty.len());
        model_rebuilds_total().inc();
        validate(desc)?;
        let geometry_dirty = dirty.contains(BuildPhase::Geometry);
        let geom = if geometry_dirty {
            Geometry::new(desc)?
        } else {
            self.geom.clone()
        };
        let charges_dirty =
            dirty.contains(BuildPhase::Devices) || dirty.contains(BuildPhase::Charges);
        let e = &desc.electrical;
        let (energies, skipped) = if charges_dirty {
            let m = ChargeModel::new(desc, &geom);
            let energies = (
                OperationEnergy::from_charges(Operation::Activate, &m.activate(), e),
                OperationEnergy::from_charges(Operation::Precharge, &m.precharge(), e),
                OperationEnergy::from_charges(Operation::Read, &m.read(), e),
                OperationEnergy::from_charges(Operation::Write, &m.write(), e),
                OperationEnergy::from_charges(Operation::ClockCycle, &m.clock_cycle(), e),
            );
            (energies, u64::from(!geometry_dirty))
        } else if dirty.contains(BuildPhase::Power) {
            // Charges are clean: re-run only the charge-to-energy
            // conversion on the stored ledgers.
            (
                (
                    self.activate.with_electrical(e),
                    self.precharge.with_electrical(e),
                    self.read.with_electrical(e),
                    self.write.with_electrical(e),
                    self.clock_cycle.with_electrical(e),
                ),
                3,
            )
        } else {
            (
                (
                    self.activate.clone(),
                    self.precharge.clone(),
                    self.read.clone(),
                    self.write.clone(),
                    self.clock_cycle.clone(),
                ),
                4,
            )
        };
        rebuild_phases_skipped_total().add(skipped);
        let (activate, precharge, read, write, clock_cycle) = energies;
        Ok(Self {
            desc: desc.clone(),
            geom,
            activate,
            precharge,
            read,
            write,
            clock_cycle,
        })
    }

    /// The validated description.
    #[must_use]
    pub fn description(&self) -> &DramDescription {
        &self.desc
    }

    /// The resolved geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Consumes the model, returning the description (e.g. to mutate and
    /// rebuild).
    #[must_use]
    pub fn into_description(self) -> DramDescription {
        self.desc
    }

    /// Itemized energy of one basic operation.
    #[must_use]
    pub fn operation_energy(&self, op: Operation) -> &OperationEnergy {
        match op {
            Operation::Activate => &self.activate,
            Operation::Precharge => &self.precharge,
            Operation::Read => &self.read,
            Operation::Write => &self.write,
            Operation::ClockCycle => &self.clock_cycle,
        }
    }

    /// External energy of one command occurrence (nop costs only the
    /// background cycle, which is accounted separately). CKE state
    /// transitions are free as *commands* — their cost is the time spent
    /// in the state, billed by [`Dram::state_power`]; one auto-refresh
    /// prices the activate+precharge of every row it refreshes
    /// ([`Dram::refresh_command_energy`]).
    #[must_use]
    pub fn command_energy(&self, cmd: Command) -> Joules {
        match cmd {
            Command::Activate => self.activate.external(),
            Command::Precharge => self.precharge.external(),
            Command::Read => self.read.external(),
            Command::Write => self.write.external(),
            Command::Refresh => self.refresh_command_energy(),
            Command::Nop
            | Command::PowerDownEnter
            | Command::PowerDownExit
            | Command::SelfRefreshEnter
            | Command::SelfRefreshExit => Joules::ZERO,
        }
    }

    /// Continuous background power: clock/control/always-on logic at the
    /// control clock plus the constant current sink.
    #[must_use]
    pub fn background_power(&self) -> Watts {
        self.clock_cycle.external() * self.desc.spec.control_clock
            + static_power(&self.desc.electrical)
    }

    /// Column command rate when streaming seamlessly: one command per
    /// tCCD.
    #[must_use]
    pub fn cas_rate(&self) -> Hertz {
        self.desc.spec.control_clock / f64::from(self.desc.timing.tccd_cycles.max(1))
    }

    /// Average power of a simple command loop (§III.B.4): each slot takes
    /// one control-clock cycle; command energies are spread over the loop
    /// and the background runs throughout.
    #[must_use]
    pub fn pattern_power(&self, pattern: &Pattern) -> PowerSummary {
        let f = self.desc.spec.control_clock;
        let n = pattern.len() as f64;
        let command_energy: Joules = pattern
            .slots()
            .iter()
            .map(|&c| self.command_energy(c))
            .sum();
        let background = self.background_power();
        let power = background + command_energy * f / n;
        self.summarize(power, background)
    }

    /// Like [`Self::pattern_power`], but first checks that the loop is
    /// timing-legal when issued to a single bank at the device's control
    /// clock.
    ///
    /// The paper's example `act nop wrt nop rd nop pre nop` is legal on
    /// the SDR-era devices it illustrates but much too fast for one bank
    /// at a DDR3 clock — this variant catches such mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TimingViolation`] naming the violated
    /// constraint.
    pub fn pattern_power_checked(&self, pattern: &Pattern) -> Result<PowerSummary, ModelError> {
        let commands: Vec<TimedCommand> = pattern
            .slots()
            .iter()
            .enumerate()
            .map(|(cycle, &command)| TimedCommand {
                cycle: cycle as u64,
                bank: 0,
                command,
            })
            .collect();
        let timed = TimedPattern::new(commands, pattern.len() as u64)?;
        timed.validate(
            &self.desc.timing,
            self.desc.spec.control_clock,
            self.desc.spec.banks(),
            self.desc.timing.tccd_cycles,
            crate::timing::InitialBankState::AllClosed,
        )?;
        Ok(self.pattern_power(pattern))
    }

    /// Average power of a bank-annotated timed loop.
    #[must_use]
    pub fn timed_pattern_power(&self, pattern: &TimedPattern) -> PowerSummary {
        let f = self.desc.spec.control_clock;
        let loop_time = pattern.loop_cycles() as f64 / f.hertz();
        let command_energy: Joules = pattern
            .commands()
            .iter()
            .map(|c| self.command_energy(c.command))
            .sum();
        let background = self.background_power();
        let power = background + command_energy * dram_units::Seconds::new(loop_time).to_hertz();
        self.summarize(power, background)
    }

    fn summarize(&self, power: Watts, background: Watts) -> PowerSummary {
        PowerSummary {
            power,
            current: power / self.desc.electrical.vdd,
            background,
        }
    }

    /// The standard datasheet current report.
    ///
    /// # Panics
    ///
    /// Never panics for a validated model: the standard loops are always
    /// constructible from validated timing.
    #[must_use]
    pub fn idd(&self) -> IddReport {
        let spec = &self.desc.spec;
        let timing = &self.desc.timing;
        let f = spec.control_clock;
        let vdd = self.desc.electrical.vdd;
        let background = self.background_power();
        let idd2n = background / vdd;

        let idd0 = {
            let p = TimedPattern::idd0(timing, f).expect("validated timing builds IDD0");
            self.timed_pattern_power(&p).current
        };
        let idd1 = {
            let p = TimedPattern::idd1(timing, f).expect("validated timing builds IDD1");
            self.timed_pattern_power(&p).current
        };
        let idd4r = {
            let p = TimedPattern::idd4(Command::Read, timing.tccd_cycles, spec.banks())
                .expect("validated timing builds IDD4R");
            self.timed_pattern_power(&p).current
        };
        let idd4w = {
            let p = TimedPattern::idd4(Command::Write, timing.tccd_cycles, spec.banks())
                .expect("validated timing builds IDD4W");
            self.timed_pattern_power(&p).current
        };
        let idd5 = {
            let total_rows = u64::from(spec.banks()) * spec.rows_per_bank();
            let rows_per_refresh = (total_rows / REFRESH_COMMANDS_PER_WINDOW).max(1) as f64;
            let refresh_energy =
                (self.activate.external() + self.precharge.external()) * rows_per_refresh;
            let p = background + Watts::new(refresh_energy.joules() / timing.trfc.seconds());
            p / vdd
        };
        let idd7 = {
            let p = TimedPattern::idd7(timing, f, spec.banks(), timing.tccd_cycles)
                .expect("validated timing builds IDD7");
            self.timed_pattern_power(&p).current
        };

        let idd2p = self.state_power(crate::lowpower::PowerState::PrechargePowerDown) / vdd;
        let idd6 = self.state_power(crate::lowpower::PowerState::SelfRefresh) / vdd;

        IddReport {
            idd0,
            idd1,
            idd2n,
            idd2p,
            idd3n: idd2n,
            idd3p: idd2p,
            idd4r,
            idd4w,
            idd5,
            idd6,
            idd7,
        }
    }

    /// The paper's sensitivity workload: an IDD7-style interleaved loop
    /// "but with half of the read operations replaced by write operations"
    /// (§IV.B).
    ///
    /// # Panics
    ///
    /// Never panics for a validated model.
    #[must_use]
    pub fn mixed_workload(&self) -> TimedPattern {
        let spec = &self.desc.spec;
        let timing = &self.desc.timing;
        let base = TimedPattern::idd7(timing, spec.control_clock, spec.banks(), timing.tccd_cycles)
            .expect("validated timing builds IDD7");
        let commands: Vec<TimedCommand> = base
            .commands()
            .iter()
            .map(|c| {
                if c.command == Command::Read && c.bank % 2 == 1 {
                    TimedCommand {
                        command: Command::Write,
                        ..*c
                    }
                } else {
                    *c
                }
            })
            .collect();
        TimedPattern::new(commands, base.loop_cycles()).expect("same loop stays valid")
    }

    /// Power of the mixed activate/read/write/precharge workload used for
    /// the sensitivity Pareto (Fig. 10, Table III).
    #[must_use]
    pub fn mixed_workload_power(&self) -> PowerSummary {
        self.timed_pattern_power(&self.mixed_workload())
    }

    /// Energy per transferred bit while streaming column accesses with the
    /// row already open (the paper's IDD4-style metric: "only the energy
    /// of the read and write in the DRAM logic and data wiring").
    #[must_use]
    pub fn energy_per_bit_streaming(&self) -> Joules {
        let e_per_access = (self.read.external() + self.write.external()) * 0.5;
        e_per_access / f64::from(self.desc.spec.bits_per_column_access())
    }

    /// Energy per transferred bit under the random-access IDD7-style
    /// workload (activate/precharge interleaved with the column stream,
    /// "to more closely replicate power consumption in a system").
    /// Includes the background power share.
    #[must_use]
    pub fn energy_per_bit_random(&self) -> Joules {
        let spec = &self.desc.spec;
        let timing = &self.desc.timing;
        let pattern =
            TimedPattern::idd7(timing, spec.control_clock, spec.banks(), timing.tccd_cycles)
                .expect("validated timing builds IDD7");
        let summary = self.timed_pattern_power(&pattern);
        let bits_per_loop =
            pattern.count(Command::Read) as f64 * f64::from(spec.bits_per_column_access());
        let loop_time = pattern.loop_cycles() as f64 / spec.control_clock.hertz();
        let rate = dram_units::BitsPerSecond::new(bits_per_loop / loop_time);
        summary.power / rate
    }

    /// Die area breakdown.
    #[must_use]
    pub fn area(&self) -> AreaReport {
        AreaReport::new(&self.desc, &self.geom)
    }
}

/// Validates parameter ranges that the geometry pass does not cover.
pub(crate) fn validate(desc: &DramDescription) -> Result<(), ModelError> {
    let e = &desc.electrical;
    let bad = |name: &'static str, reason: String| ModelError::BadParameter { name, reason };

    for (name, v) in [
        ("electrical.vdd", e.vdd),
        ("electrical.vint", e.vint),
        ("electrical.vbl", e.vbl),
        ("electrical.vpp", e.vpp),
    ] {
        if !(v.volts() > 0.0 && v.is_finite()) {
            return Err(bad(name, format!("voltage {v} must be positive")));
        }
    }
    if e.vpp <= e.vbl {
        return Err(bad(
            "electrical.vpp",
            format!(
                "wordline boost {} must exceed the bitline voltage {} for full write-back",
                e.vpp, e.vbl
            ),
        ));
    }
    for (name, eff) in [
        ("electrical.eff_vint", e.eff_vint),
        ("electrical.eff_vbl", e.eff_vbl),
        ("electrical.eff_vpp", e.eff_vpp),
    ] {
        if !(eff > 0.0 && eff <= 1.0) {
            return Err(bad(name, format!("efficiency {eff} must be in (0, 1]")));
        }
    }
    if e.constant_current.amperes() < 0.0 {
        return Err(bad(
            "electrical.constant_current",
            "must be non-negative".into(),
        ));
    }

    let s = &desc.spec;
    if s.io_width == 0 || s.prefetch == 0 || s.burst_length == 0 {
        return Err(bad(
            "spec",
            "io_width, prefetch and burst_length must be positive".into(),
        ));
    }
    if s.control_clock.hertz() <= 0.0 || s.data_clock.hertz() <= 0.0 {
        return Err(bad(
            "spec.clock",
            "clock frequencies must be positive".into(),
        ));
    }
    if s.datarate_per_pin.bits_per_second() <= 0.0 {
        return Err(bad("spec.datarate_per_pin", "must be positive".into()));
    }

    let t = &desc.timing;
    for (name, v) in [
        ("timing.trc", t.trc),
        ("timing.tras", t.tras),
        ("timing.trp", t.trp),
        ("timing.trcd", t.trcd),
        ("timing.trrd", t.trrd),
        ("timing.tfaw", t.tfaw),
        ("timing.trfc", t.trfc),
        ("timing.trefi", t.trefi),
    ] {
        if v.seconds() <= 0.0 {
            return Err(bad(name, "must be positive".into()));
        }
    }
    if t.trc < t.tras {
        return Err(bad("timing.trc", "row cycle must cover tRAS".into()));
    }
    if t.tfaw < t.trrd {
        return Err(bad(
            "timing.tfaw",
            "four-activate window cannot be shorter than tRRD".into(),
        ));
    }
    if t.tccd_cycles == 0 {
        return Err(bad("timing.tccd_cycles", "must be positive".into()));
    }

    let tech = &desc.technology;
    if tech.bitline_cap.farads() <= 0.0 || tech.cell_cap.farads() <= 0.0 {
        return Err(bad(
            "technology",
            "bitline and cell capacitance must be positive".into(),
        ));
    }
    if !(0.0..=1.0).contains(&tech.bl_to_wl_cap_share) {
        return Err(bad(
            "technology.bl_to_wl_cap_share",
            "must be in 0..=1".into(),
        ));
    }
    if tech.bits_per_csl_per_subarray == 0 {
        return Err(bad(
            "technology.bits_per_csl_per_subarray",
            "must be positive".into(),
        ));
    }
    for (name, m) in [
        ("technology.tox_logic", tech.tox_logic),
        ("technology.tox_high_voltage", tech.tox_high_voltage),
        ("technology.tox_cell", tech.tox_cell),
        ("technology.lmin_logic", tech.lmin_logic),
        ("technology.lmin_high_voltage", tech.lmin_high_voltage),
        ("floorplan.wordline_pitch", desc.floorplan.wordline_pitch),
        ("floorplan.bitline_pitch", desc.floorplan.bitline_pitch),
    ] {
        if m.meters() <= 0.0 {
            return Err(bad(name, "must be positive".into()));
        }
    }

    for b in &desc.logic_blocks {
        if !(b.gate_density > 0.0 && b.gate_density <= 1.0) {
            return Err(bad(
                "logic_block.gate_density",
                format!("`{}` out of (0,1]", b.name),
            ));
        }
        if b.toggle_rate < 0.0 {
            return Err(bad(
                "logic_block.toggle_rate",
                format!("`{}` negative", b.name),
            ));
        }
    }
    for sig in &desc.signaling.signals {
        if sig.toggle_rate < 0.0 {
            return Err(bad(
                "signaling.toggle_rate",
                format!("`{}` negative", sig.name),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    fn model() -> Dram {
        Dram::new(ddr3_1g_x16_55nm()).expect("reference builds")
    }

    #[test]
    fn rebuild_from_equals_fresh_build_per_dirty_tier() {
        use crate::perturb::{ParamId, Perturbation};
        let base = model();
        // One representative parameter per dirty tier: geometry, devices,
        // charges, power, and the empty set.
        for (param, factor) in [
            (ParamId::SaStripeWidth, 1.3),
            (ParamId::SenseAmpDeviceWidth, 1.2),
            (ParamId::BitlineCap, 0.8),
            (ParamId::EffVpp, 0.9),
            (ParamId::ConstantCurrent, 1.5),
        ] {
            let pert = Perturbation::single(param, factor);
            let mut desc = ddr3_1g_x16_55nm();
            pert.apply(&mut desc);
            let fresh = Dram::new(desc.clone()).expect("perturbed builds");
            let diff = base
                .rebuild_from(&desc, pert.dirty_set())
                .expect("rebuild succeeds");
            assert_eq!(diff.geometry(), fresh.geometry(), "{param}");
            for op in Operation::ALL {
                assert_eq!(
                    diff.operation_energy(op),
                    fresh.operation_energy(op),
                    "{param} {op}"
                );
            }
            let (a, b) = (diff.mixed_workload_power(), fresh.mixed_workload_power());
            assert_eq!(a.power.watts().to_bits(), b.power.watts().to_bits(), "{param}");
        }
    }

    #[test]
    fn rebuild_from_revalidates_unconditionally() {
        use crate::perturb::{ParamId, Perturbation};
        let base = model();
        // EffVpp only dirties the power phase, but pushing it negative
        // must still be rejected by the always-on validation.
        let pert = Perturbation::single(ParamId::EffVpp, -1.0);
        let mut desc = ddr3_1g_x16_55nm();
        pert.apply(&mut desc);
        assert!(base.rebuild_from(&desc, pert.dirty_set()).is_err());
    }

    #[test]
    fn idd_report_has_datasheet_shape() {
        let m = model();
        let idd = m.idd();
        // Ordering constraints every real datasheet satisfies.
        assert!(
            idd.idd0 > idd.idd2n,
            "IDD0 {} vs IDD2N {}",
            idd.idd0,
            idd.idd2n
        );
        assert!(idd.idd4r > idd.idd0);
        assert!(idd.idd4w > idd.idd0);
        assert!(idd.idd7 > idd.idd0);
        assert!(idd.idd5 > idd.idd2n);
        // Magnitudes: DDR3 x16 class (broad guards; the datasheet crate
        // compares against the vendor corpus).
        let ma = |a: Amperes| a.milliamperes();
        assert!(
            ma(idd.idd2n) > 5.0 && ma(idd.idd2n) < 60.0,
            "IDD2N {}",
            idd.idd2n
        );
        assert!(
            ma(idd.idd0) > 25.0 && ma(idd.idd0) < 120.0,
            "IDD0 {}",
            idd.idd0
        );
        assert!(
            ma(idd.idd4r) > 60.0 && ma(idd.idd4r) < 300.0,
            "IDD4R {}",
            idd.idd4r
        );
        assert!(
            ma(idd.idd4w) > 60.0 && ma(idd.idd4w) < 300.0,
            "IDD4W {}",
            idd.idd4w
        );
    }

    #[test]
    fn pattern_power_matches_manual_mix() {
        let m = model();
        let p = Pattern::paper_example();
        let summary = m.pattern_power(&p);
        let f = m.description().spec.control_clock;
        let manual = m.background_power()
            + (m.command_energy(Command::Activate)
                + m.command_energy(Command::Write)
                + m.command_energy(Command::Read)
                + m.command_energy(Command::Precharge))
                * f
                / 8.0;
        assert!((summary.power.watts() - manual.watts()).abs() < 1e-12);
        assert!(summary.power > summary.background);
    }

    #[test]
    fn idd_kind_lookup_and_display() {
        let m = model();
        let idd = m.idd();
        for kind in IddKind::ALL {
            assert!(idd.get(kind).amperes() > 0.0, "{kind}");
        }
        assert_eq!(idd.get(IddKind::Idd0), idd.idd0);
        assert_eq!(idd.get(IddKind::Idd7), idd.idd7);
        let table = idd.to_string();
        assert!(table.contains("IDD4R"));
        assert!(table.contains("IDD6"));
        assert_eq!(table.lines().count(), IddKind::ALL.len());
    }

    #[test]
    fn checked_pattern_rejects_too_fast_loops() {
        // The paper's 8-slot example at a DDR3-1600 clock squeezes a full
        // row cycle into 10 ns — physically impossible for one bank.
        let m = model();
        let p = Pattern::paper_example();
        let err = m.pattern_power_checked(&p).unwrap_err();
        assert!(matches!(err, ModelError::TimingViolation { .. }), "{err}");

        // At an SDR-era clock (and burst occupancy) the same loop is
        // legal — the configuration the paper's example illustrates.
        let mut desc = ddr3_1g_x16_55nm();
        desc.spec.control_clock = dram_units::Hertz::from_mhz(100.0);
        desc.spec.data_clock = desc.spec.control_clock;
        desc.spec.prefetch = 4;
        desc.spec.burst_length = 4;
        desc.timing.tccd_cycles = 2;
        let slow = Dram::new(desc).expect("valid");
        let summary = slow.pattern_power_checked(&p).expect("legal at 100 MHz");
        assert!(summary.power > summary.background);
    }

    #[test]
    fn all_nop_pattern_is_background_only() {
        let m = model();
        let p = Pattern::parse("nop nop nop nop").expect("parses");
        let s = m.pattern_power(&p);
        assert!((s.power.watts() - m.background_power().watts()).abs() < 1e-15);
    }

    #[test]
    fn energy_per_bit_ordering_and_magnitude() {
        let m = model();
        let streaming = m.energy_per_bit_streaming();
        let random = m.energy_per_bit_random();
        // Random access pays activate/precharge on top of the stream.
        assert!(random > streaming);
        // DDR3-class core energy: a few pJ/bit streaming, tens random.
        let pj = streaming.picojoules();
        assert!(pj > 0.5 && pj < 20.0, "streaming {pj} pJ/bit");
        let pj = random.picojoules();
        assert!(pj > 2.0 && pj < 100.0, "random {pj} pJ/bit");
    }

    #[test]
    fn mixed_workload_has_reads_and_writes() {
        let m = model();
        let p = m.mixed_workload();
        assert!(p.count(Command::Read) > 0);
        assert!(p.count(Command::Write) > 0);
        assert_eq!(
            p.count(Command::Read) + p.count(Command::Write),
            p.count(Command::Activate)
        );
        let s = m.mixed_workload_power();
        assert!(s.power > m.background_power());
    }

    #[test]
    fn validation_rejects_bad_electrical() {
        let mut d = ddr3_1g_x16_55nm();
        d.electrical.eff_vpp = 0.0;
        assert!(matches!(Dram::new(d), Err(ModelError::BadParameter { .. })));

        let mut d = ddr3_1g_x16_55nm();
        d.electrical.vpp = dram_units::Volts::new(1.0); // below Vbl
        assert!(Dram::new(d).is_err());

        let mut d = ddr3_1g_x16_55nm();
        d.timing.trc = dram_units::Seconds::from_ns(10.0); // < tRAS
        assert!(Dram::new(d).is_err());
    }

    #[test]
    fn background_power_is_tens_of_milliwatts() {
        let m = model();
        let mw = m.background_power().milliwatts();
        assert!(mw > 10.0 && mw < 100.0, "background {mw} mW");
    }

    #[test]
    fn higher_voltage_means_more_power() {
        let m = model();
        let base = m.mixed_workload_power().power;
        let mut d = ddr3_1g_x16_55nm();
        d.electrical.vint = dram_units::Volts::new(d.electrical.vint.volts() * 1.2);
        let m2 = Dram::new(d).expect("builds");
        assert!(m2.mixed_workload_power().power > base);
    }
}

/// Summary of the key extracted capacitances (Fig. 4, step "Calculate
/// wire and device capacitances") — the intermediate artifact between
/// the description and the charge ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitanceReport {
    /// One local wordline (cell gates + poly wire + driver junctions +
    /// coupling share).
    pub local_wordline: dram_units::Farads,
    /// One master wordline (metal wire + driver-stripe input gates +
    /// decoder junctions).
    pub master_wordline: dram_units::Farads,
    /// One column select line across its shared blocks.
    pub column_select: dram_units::Farads,
    /// One bitline (description input, echoed for completeness).
    pub bitline: dram_units::Farads,
    /// One storage cell (description input).
    pub cell: dram_units::Farads,
    /// Per-wire capacitance of each signaling path, `(name, capacitance)`.
    pub signal_paths: Vec<(String, dram_units::Farads)>,
}

impl Dram {
    /// Extracts the capacitance summary for this device.
    #[must_use]
    pub fn capacitances(&self) -> CapacitanceReport {
        let m = ChargeModel::new(&self.desc, &self.geom);
        CapacitanceReport {
            local_wordline: m.local_wordline_capacitance(),
            master_wordline: m.master_wordline_capacitance(),
            column_select: m.column_select_capacitance(),
            bitline: self.desc.technology.bitline_cap,
            cell: self.desc.technology.cell_cap,
            signal_paths: self
                .desc
                .signaling
                .signals
                .iter()
                .map(|s| (s.name.clone(), m.path_capacitance_per_wire(s)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod capacitance_tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    #[test]
    fn capacitance_report_is_consistent() {
        let dram = Dram::new(ddr3_1g_x16_55nm()).expect("valid");
        let c = dram.capacitances();
        // Hierarchy: cell < LWL < MWL; CSL in the MWL class.
        assert!(c.cell < c.local_wordline);
        assert!(c.local_wordline < c.master_wordline);
        assert!(c.column_select.femtofarads() > 100.0);
        assert_eq!(c.bitline, dram.description().technology.bitline_cap);
        // Every declared signal has a path capacitance.
        assert_eq!(
            c.signal_paths.len(),
            dram.description().signaling.signals.len()
        );
        for (name, cap) in &c.signal_paths {
            assert!(cap.femtofarads() > 1.0, "{name}: {cap}");
        }
    }
}
