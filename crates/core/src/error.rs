//! Error type for model construction and validation.

use crate::params::{Axis, BlockCoord};

/// Error building a [`crate::Dram`] model from a
/// [`crate::DramDescription`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A peripheral block type appears in the floorplan sequence but has no
    /// size entry.
    MissingBlockSize {
        /// Block type name.
        name: String,
        /// Axis on which the size is missing.
        axis: Axis,
    },
    /// The floorplan has no array blocks on one of the axes.
    NoArrayBlocks,
    /// The number of banks implied by the floorplan grid does not match
    /// `2^bank_address_bits` from the specification.
    BankCountMismatch {
        /// Banks in the floorplan grid.
        floorplan: u32,
        /// Banks per the specification.
        spec: u32,
    },
    /// Page bits are not divisible by bits per local wordline (the page
    /// must map onto an integer number of sub-arrays).
    PageNotDivisible {
        /// Page size in bits.
        page_bits: u64,
        /// Cells per local wordline.
        bits_per_lwl: u32,
    },
    /// Rows per bank are not divisible by bits per bitline.
    RowsNotDivisible {
        /// Rows per bank.
        rows: u64,
        /// Cells per bitline.
        bits_per_bitline: u32,
    },
    /// The floorplan stores fewer or more bits than the specification
    /// addresses.
    CapacityMismatch {
        /// Bits implied by floorplan (banks × sub-arrays × cells).
        floorplan_bits: u64,
        /// Bits addressed by the specification.
        spec_bits: u64,
    },
    /// A parameter is out of its physical range.
    BadParameter {
        /// Dotted parameter path, e.g. `"electrical.vdd"`.
        name: &'static str,
        /// What is wrong.
        reason: String,
    },
    /// A signal segment references a block coordinate outside the floorplan
    /// grid.
    CoordOutOfRange {
        /// The offending coordinate.
        coord: BlockCoord,
        /// Grid extent (columns, rows).
        grid: (usize, usize),
    },
    /// A pattern is empty or otherwise unusable.
    EmptyPattern,
    /// Evaluation of this item panicked; the panic was isolated to the
    /// item instead of tearing down the whole batch.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A pattern violates a timing constraint.
    TimingViolation {
        /// Description of the violated constraint.
        message: String,
    },
}

impl core::fmt::Display for ModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelError::MissingBlockSize { name, axis } => {
                let axis = match axis {
                    Axis::Horizontal => "horizontal",
                    Axis::Vertical => "vertical",
                };
                write!(f, "no {axis} size given for peripheral block type `{name}`")
            }
            ModelError::NoArrayBlocks => {
                write!(f, "floorplan contains no array blocks on at least one axis")
            }
            ModelError::BankCountMismatch { floorplan, spec } => write!(
                f,
                "floorplan grid has {floorplan} banks but the specification addresses {spec}"
            ),
            ModelError::PageNotDivisible { page_bits, bits_per_lwl } => write!(
                f,
                "page of {page_bits} bits does not divide into local wordlines of {bits_per_lwl} cells"
            ),
            ModelError::RowsNotDivisible { rows, bits_per_bitline } => write!(
                f,
                "{rows} rows per bank do not divide into bitlines of {bits_per_bitline} cells"
            ),
            ModelError::CapacityMismatch { floorplan_bits, spec_bits } => write!(
                f,
                "floorplan stores {floorplan_bits} bits but the specification addresses {spec_bits}"
            ),
            ModelError::BadParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            ModelError::CoordOutOfRange { coord, grid } => write!(
                f,
                "block coordinate {coord} outside the {}x{} floorplan grid",
                grid.0, grid.1
            ),
            ModelError::EmptyPattern => write!(f, "operation pattern is empty"),
            ModelError::Panicked { message } => {
                write!(f, "evaluation panicked: {message}")
            }
            ModelError::TimingViolation { message } => {
                write!(f, "pattern violates timing: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::MissingBlockSize {
            name: "P2".into(),
            axis: Axis::Vertical,
        };
        assert_eq!(
            e.to_string(),
            "no vertical size given for peripheral block type `P2`"
        );
        let e = ModelError::BankCountMismatch {
            floorplan: 4,
            spec: 8,
        };
        assert!(e.to_string().contains("4 banks"));
        assert!(e.to_string().contains("addresses 8"));
        let e = ModelError::CoordOutOfRange {
            coord: BlockCoord::new(9, 9),
            grid: (7, 5),
        };
        assert!(e.to_string().contains("9_9"));
        assert!(e.to_string().contains("7x5"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ModelError>();
    }
}
