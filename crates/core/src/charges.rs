//! Charge accounting per basic operation (Fig. 4, step "Determine charge
//! associated with activate, precharge, read and write operation").
//!
//! The model partitions each operation into named charge/discharge events.
//! For each event it records the charge drawn from one of the four voltage
//! domains; [`crate::power`] later converts domain charge into external
//! supply energy via the rail voltage and generator efficiency.
//!
//! Accounting convention: an item's `charge` is the charge the rail
//! *delivers* for the event. A capacitor swung rail-to-rail draws `C·V`
//! when it charges and nothing when it discharges, so a full
//! activate/precharge cycle books `C·V` once (on the edge that charges).
//! The bitline midlevel precharge is adiabatic (true and complement are
//! shorted), exactly as §III.A notes, and therefore books no charge.

use dram_units::{Coulombs, Farads, Joules, Meters, Volts};

use crate::devices::{
    cell_access_gate, gate_capacitance, junction_capacitance, BufferLoads, SenseAmpLoads,
    WordlineDriverLoads,
};
use crate::geometry::Geometry;
use crate::params::{
    ActiveDuring, DeviceGeometry, DramDescription, Electrical, LogicBlock, SegmentSpec,
    SignalClass, SignalSpec, WireCount,
};
use crate::voltage::VoltageDomain;

/// Average fraction of cells storing the level that must be restored
/// against the rail during activation (random data).
pub const DATA_ACTIVITY: f64 = 0.5;

/// Wire-length-per-gate factor for miscellaneous logic blocks: average
/// local routing per gate, as a multiple of the gate-area square root.
pub const LOGIC_WIRE_FACTOR: f64 = 7.0;

/// Functional group of a charge contributor; used for breakdown reports
/// and the array-vs-periphery share analysis of §IV.B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContributorGroup {
    /// Master and local wordlines, drivers, decoders.
    Wordlines,
    /// Bitline sensing and cell restore.
    Bitlines,
    /// Sense-amplifier control (set lines, equalize).
    SenseAmps,
    /// Row-path peripheral logic.
    RowLogic,
    /// Column-path peripheral logic.
    ColumnLogic,
    /// Local/master datalines and the center-stripe data buses.
    DataPath,
    /// Address buses and predecode wiring.
    AddressBus,
    /// Clock distribution and control bus.
    ClockControl,
    /// Miscellaneous always-on peripheral logic.
    PeripheralLogic,
}

impl ContributorGroup {
    /// All groups, in display order.
    pub const ALL: [ContributorGroup; 9] = [
        ContributorGroup::Wordlines,
        ContributorGroup::Bitlines,
        ContributorGroup::SenseAmps,
        ContributorGroup::RowLogic,
        ContributorGroup::ColumnLogic,
        ContributorGroup::DataPath,
        ContributorGroup::AddressBus,
        ContributorGroup::ClockControl,
        ContributorGroup::PeripheralLogic,
    ];

    /// Whether the group belongs to the cell-array side of the die (the
    /// paper's §IV.B observes power shifting away from these groups over
    /// generations).
    #[must_use]
    pub fn is_array_related(self) -> bool {
        matches!(
            self,
            ContributorGroup::Wordlines | ContributorGroup::Bitlines | ContributorGroup::SenseAmps
        )
    }
}

impl core::fmt::Display for ContributorGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ContributorGroup::Wordlines => "wordlines",
            ContributorGroup::Bitlines => "bitlines",
            ContributorGroup::SenseAmps => "sense amps",
            ContributorGroup::RowLogic => "row logic",
            ContributorGroup::ColumnLogic => "column logic",
            ContributorGroup::DataPath => "data path",
            ContributorGroup::AddressBus => "address bus",
            ContributorGroup::ClockControl => "clock/control",
            ContributorGroup::PeripheralLogic => "peripheral logic",
        };
        f.write_str(s)
    }
}

/// One named charge contribution of an operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargeItem {
    /// Human-readable contributor name.
    pub label: String,
    /// Functional group.
    pub group: ContributorGroup,
    /// Domain the charge is drawn from.
    pub domain: VoltageDomain,
    /// Charge delivered by the rail for one occurrence of the operation.
    pub charge: Coulombs,
}

/// All charge contributions of one basic operation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OperationCharges {
    /// Individual contributors.
    pub items: Vec<ChargeItem>,
}

impl OperationCharges {
    /// Total charge drawn from one domain.
    #[must_use]
    pub fn domain_charge(&self, domain: VoltageDomain) -> Coulombs {
        self.items
            .iter()
            .filter(|i| i.domain == domain)
            .map(|i| i.charge)
            .sum()
    }

    /// Total charge drawn from one contributor group (across domains;
    /// charges at different rails are not physically commensurable, but the
    /// per-group *energy* computed downstream is — this raw sum is only
    /// used by tests).
    #[must_use]
    pub fn group_charge(&self, group: ContributorGroup) -> Coulombs {
        self.items
            .iter()
            .filter(|i| i.group == group)
            .map(|i| i.charge)
            .sum()
    }

    fn push(
        &mut self,
        label: impl Into<String>,
        group: ContributorGroup,
        domain: VoltageDomain,
        charge: Coulombs,
    ) {
        let label = label.into();
        debug_assert!(
            charge.coulombs() >= 0.0,
            "negative charge for `{label}`: {charge:?}"
        );
        self.items.push(ChargeItem {
            label,
            group,
            domain,
            charge,
        });
    }
}

/// Label of a charge event before materialization. The itemized ledger
/// turns it into a `String`; the batch kernel drops it, so the hot path
/// never allocates.
#[derive(Debug, Clone, Copy)]
enum ChargeLabel<'a> {
    /// A fixed contributor name.
    Static(&'static str),
    /// A per-block logic item, labelled `logic: {name}`.
    Logic(&'a str),
}

impl ChargeLabel<'_> {
    fn materialize(self) -> String {
        match self {
            ChargeLabel::Static(s) => s.to_string(),
            ChargeLabel::Logic(name) => format!("logic: {name}"),
        }
    }
}

/// Destination of the charge events one operation emits. The emit
/// functions below book every event exactly once through this trait, so
/// the itemized ledger ([`OperationCharges`]) and the struct-of-arrays
/// kernel ([`ChargeBatch`]) are fed the *same* charges by construction.
trait ChargeSink {
    fn push(
        &mut self,
        label: ChargeLabel<'_>,
        group: ContributorGroup,
        domain: VoltageDomain,
        charge: Coulombs,
    );
}

impl ChargeSink for OperationCharges {
    fn push(
        &mut self,
        label: ChargeLabel<'_>,
        group: ContributorGroup,
        domain: VoltageDomain,
        charge: Coulombs,
    ) {
        OperationCharges::push(self, label.materialize(), group, domain, charge);
    }
}

/// Index of a domain in the flat rail tables of [`ChargeBatch`]; follows
/// [`VoltageDomain::ALL`] order (Vpp, Vbl, Vint, Vdd).
fn domain_code(domain: VoltageDomain) -> u8 {
    match domain {
        VoltageDomain::Vpp => 0,
        VoltageDomain::Vbl => 1,
        VoltageDomain::Vint => 2,
        VoltageDomain::Vdd => 3,
    }
}

struct BatchSink<'b> {
    q: &'b mut Vec<f64>,
    domain: &'b mut Vec<u8>,
}

impl ChargeSink for BatchSink<'_> {
    fn push(
        &mut self,
        label: ChargeLabel<'_>,
        _group: ContributorGroup,
        domain: VoltageDomain,
        charge: Coulombs,
    ) {
        debug_assert!(
            charge.coulombs() >= 0.0,
            "negative charge for `{}`: {charge:?}",
            label.materialize()
        );
        self.q.push(charge.coulombs());
        self.domain.push(domain_code(domain));
    }
}

/// Struct-of-arrays charge ledger over all five operations of one device:
/// contiguous f64 charge lanes plus a parallel rail-code lane, segmented
/// by operation in [`crate::Operation::ALL`] order.
///
/// This is the sweep-kernel representation: [`ChargeBatch::fill`] books
/// the exact charges of [`ChargeModel`]'s itemized operations without
/// label allocation, and [`ChargeBatch::op_externals`] converts the lanes
/// to external energy for any [`Electrical`] operating point. Conversion
/// is elementwise over the lanes; the per-operation reduction deliberately
/// stays in ledger order so the result is bit-identical to summing
/// [`crate::OperationEnergy`] items (no float reassociation).
#[derive(Debug, Clone, Default)]
pub struct ChargeBatch {
    q: Vec<f64>,
    domain: Vec<u8>,
    ends: [usize; 5],
}

impl ChargeBatch {
    /// Books the charges of every operation of `model`, reusing existing
    /// lane capacity.
    pub fn fill(&mut self, model: &ChargeModel<'_>) {
        self.q.clear();
        self.domain.clear();
        let mut ends = [0usize; 5];
        {
            let mut sink = BatchSink {
                q: &mut self.q,
                domain: &mut self.domain,
            };
            model.emit_activate(&mut sink);
            ends[0] = sink.q.len();
            model.emit_precharge(&mut sink);
            ends[1] = sink.q.len();
            model.emit_read(&mut sink);
            ends[2] = sink.q.len();
            model.emit_write(&mut sink);
            ends[3] = sink.q.len();
            model.emit_clock_cycle(&mut sink);
            ends[4] = sink.q.len();
        }
        self.ends = ends;
    }

    /// A filled batch for `model`.
    #[must_use]
    pub fn from_model(model: &ChargeModel<'_>) -> Self {
        let mut batch = Self::default();
        batch.fill(model);
        batch
    }

    /// Total number of booked charge events across all operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the batch holds no events (i.e. was never filled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// External (supply) energy of each operation at the given operating
    /// point, in [`crate::Operation::ALL`] order.
    ///
    /// Each event converts as `(q · Vdd) / η(domain)` — exactly
    /// [`VoltageDomain::external_energy`] — and events sum in ledger
    /// order, so every value is bit-identical to
    /// `OperationEnergy::from_charges(..).external()`.
    #[must_use]
    pub fn op_externals(&self, e: &Electrical) -> [Joules; 5] {
        let vdd = e.vdd.volts();
        let effs = [e.eff_vpp, e.eff_vbl, e.eff_vint, 1.0];
        let mut out = [Joules::ZERO; 5];
        let mut start = 0usize;
        for (op, end) in self.ends.into_iter().enumerate() {
            let mut acc = 0.0;
            for k in start..end {
                acc += (self.q[k] * vdd) / effs[usize::from(self.domain[k])];
            }
            out[op] = Joules::new(acc);
            start = end;
        }
        out
    }
}

/// Precomputed loads and geometry for charge evaluation of one device.
#[derive(Debug, Clone)]
pub struct ChargeModel<'a> {
    desc: &'a DramDescription,
    geom: &'a Geometry,
    sa: SenseAmpLoads,
    lwd: WordlineDriverLoads,
}

impl<'a> ChargeModel<'a> {
    /// Builds the charge model from a description and its resolved
    /// geometry.
    #[must_use]
    pub fn new(desc: &'a DramDescription, geom: &'a Geometry) -> Self {
        let folded = desc.floorplan.bitline_architecture.has_bitline_mux();
        Self {
            desc,
            geom,
            sa: SenseAmpLoads::new(&desc.technology, folded),
            lwd: WordlineDriverLoads::new(&desc.technology),
        }
    }

    /// The sense-amplifier loads in use.
    #[must_use]
    pub fn sense_amp_loads(&self) -> SenseAmpLoads {
        self.sa
    }

    /// The local wordline driver loads in use.
    #[must_use]
    pub fn wordline_driver_loads(&self) -> WordlineDriverLoads {
        self.lwd
    }

    // ------------------------------------------------------------------
    // signaling floorplan helpers
    // ------------------------------------------------------------------

    /// Number of parallel wires of a signal path.
    #[must_use]
    pub fn wire_count(&self, wires: WireCount) -> u32 {
        let s = &self.desc.spec;
        match wires {
            WireCount::Explicit(n) => n,
            WireCount::PerIo => s.io_width,
            WireCount::RowAddressBits => s.row_address_bits,
            WireCount::ColumnAddressBits => s.column_address_bits,
            WireCount::BankAddressBits => s.bank_address_bits,
            WireCount::ControlSignals => s.control_signals,
            WireCount::ClockWires => s.clock_wires,
        }
    }

    /// Per-wire capacitance of a signal path: wire segments at the general
    /// signaling capacitance plus the loads of every inserted re-driver.
    #[must_use]
    pub fn path_capacitance_per_wire(&self, spec: &SignalSpec) -> Farads {
        let tech = &self.desc.technology;
        spec.segments
            .iter()
            .map(|seg| {
                let wire = tech.c_wire_signal * self.geom.segment_length(seg);
                let buffer = match seg {
                    SegmentSpec::Between { buffer, .. } | SegmentSpec::Inside { buffer, .. } => {
                        buffer
                            .map(|b| BufferLoads::new(b, tech).total())
                            .unwrap_or(Farads::ZERO)
                    }
                };
                wire + buffer
            })
            .sum()
    }

    /// Charge one *event* (command, clock cycle) moves on a path: all
    /// wires, weighted by the toggle rate, swung to Vint.
    #[must_use]
    pub fn path_charge_per_event(&self, spec: &SignalSpec) -> Coulombs {
        let c = self.path_capacitance_per_wire(spec) * f64::from(self.wire_count(spec.wires));
        (c * self.vint()) * spec.toggle_rate
    }

    /// Charge one transferred *bit* moves on a data path: the per-wire
    /// path capacitance, weighted by the toggle rate, swung to Vint. (128
    /// core wires at 1/8 rate move the same charge per bit as 16 interface
    /// wires at full rate, so per-bit accounting absorbs the serialization
    /// ratio.)
    #[must_use]
    pub fn path_charge_per_bit(&self, spec: &SignalSpec) -> Coulombs {
        (self.path_capacitance_per_wire(spec) * self.vint()) * spec.toggle_rate
    }

    fn class_charge_per_event(&self, class: SignalClass) -> Coulombs {
        self.desc
            .signaling
            .of_class(class)
            .map(|s| self.path_charge_per_event(s))
            .sum()
    }

    fn class_charge_per_bit(&self, class: SignalClass) -> Coulombs {
        self.desc
            .signaling
            .of_class(class)
            .map(|s| self.path_charge_per_bit(s))
            .sum()
    }

    // ------------------------------------------------------------------
    // logic block helpers
    // ------------------------------------------------------------------

    /// Total switched capacitance of a miscellaneous logic block: device
    /// capacitance of its gates plus local wiring estimated from the block
    /// area (§III.B.5).
    #[must_use]
    pub fn logic_block_capacitance(&self, b: &LogicBlock) -> Farads {
        let tech = &self.desc.technology;
        let l = tech.lmin_logic;
        let cg_n = gate_capacitance(
            DeviceGeometry {
                width: b.avg_nmos_width,
                length: l,
            },
            tech.tox_logic,
        );
        let cg_p = gate_capacitance(
            DeviceGeometry {
                width: b.avg_pmos_width,
                length: l,
            },
            tech.tox_logic,
        );
        let cj_n = junction_capacitance(b.avg_nmos_width, tech.junction_cap_logic);
        let cj_p = junction_capacitance(b.avg_pmos_width, tech.junction_cap_logic);
        // Per gate: `transistors_per_gate` devices, alternating N and P.
        let device_per_gate = (cg_n + cg_p + cj_n + cj_p) * (b.transistors_per_gate / 2.0);

        // Block area from gate count, average device footprint, and layout
        // density; local wiring per gate grows with the gate pitch.
        let avg_width = (b.avg_nmos_width + b.avg_pmos_width) * 0.5;
        let footprint = avg_width * l;
        let area_per_gate = footprint * (b.transistors_per_gate / b.gate_density);
        let gate_pitch = Meters::new(area_per_gate.square_meters().sqrt());
        let wire_per_gate = gate_pitch * (LOGIC_WIRE_FACTOR * b.wiring_density);
        let wire_cap_per_gate = tech.c_wire_signal * wire_per_gate;

        (device_per_gate + wire_cap_per_gate) * f64::from(b.gates)
    }

    /// Emits one charge item per logic block matching `filter`, for one
    /// triggering event (one command, or one clock cycle for background
    /// blocks). Itemizing per block keeps the §III.B.5 fit parameters
    /// visible in every breakdown.
    fn emit_logic_items(
        &self,
        sink: &mut impl ChargeSink,
        group: ContributorGroup,
        filter: impl Fn(&ActiveDuring) -> bool,
    ) {
        for b in self
            .desc
            .logic_blocks
            .iter()
            .filter(|b| filter(&b.active_during))
        {
            let q = (self.logic_block_capacitance(b) * self.vint()) * b.toggle_rate;
            sink.push(ChargeLabel::Logic(&b.name), group, VoltageDomain::Vint, q);
        }
    }

    fn vint(&self) -> Volts {
        self.desc.electrical.vint
    }

    fn vbl(&self) -> Volts {
        self.desc.electrical.vbl
    }

    fn vpp(&self) -> Volts {
        self.desc.electrical.vpp
    }

    // ------------------------------------------------------------------
    // array helpers
    // ------------------------------------------------------------------

    /// Capacitance of one local wordline: cell access gates, poly wire,
    /// driver junctions, and the share of bitline capacitance coupling to
    /// the wordline.
    #[must_use]
    pub fn local_wordline_capacitance(&self) -> Farads {
        let tech = &self.desc.technology;
        let fp = &self.desc.floorplan;
        let cells = f64::from(fp.bits_per_local_wordline);
        let gates = cell_access_gate(tech) * cells;
        let wire = tech.c_wire_lwl * self.geom.local_wordline_length();
        // Each wordline/bitline crossing carries its bitline's coupling
        // share divided over that bitline's cells.
        let coupling =
            tech.bitline_cap * (tech.bl_to_wl_cap_share * cells / f64::from(fp.bits_per_bitline));
        gates + wire + self.lwd.output_junction + coupling
    }

    /// Capacitance of one master wordline: metal wire, the input gates of
    /// every local wordline driver stripe it crosses, and its decoder
    /// junctions.
    #[must_use]
    pub fn master_wordline_capacitance(&self) -> Farads {
        let tech = &self.desc.technology;
        let wire = tech.c_wire_mwl * self.geom.master_wordline_length();
        let stripes = f64::from(self.geom.sub_cols + 1);
        let driver_gates = self.lwd.input_gate * stripes;
        let decoder_junction =
            junction_capacitance(tech.mwl_decoder_nmos_width, tech.junction_cap_high_voltage)
                + junction_capacitance(tech.mwl_decoder_pmos_width, tech.junction_cap_high_voltage);
        wire + driver_gates + decoder_junction
    }

    /// Capacitance of one column select line across `blocks_per_csl`
    /// blocks: metal wire plus the bit-switch gates it drives in every
    /// sense-amplifier stripe it crosses.
    #[must_use]
    pub fn column_select_capacitance(&self) -> Farads {
        let fp = &self.desc.floorplan;
        let tech = &self.desc.technology;
        let blocks = f64::from(fp.blocks_per_csl.max(1));
        let wire = tech.c_wire_signal * self.geom.column_select_length(fp.blocks_per_csl);
        let stripes = f64::from(self.geom.sub_rows + 1) * blocks;
        let gates = self.sa.bit_switch_gate * (f64::from(tech.bits_per_csl_per_subarray) * stripes);
        wire + gates
    }

    // ------------------------------------------------------------------
    // operations
    // ------------------------------------------------------------------

    /// Charges of one activate command: row addressing, wordline system,
    /// bitline sensing and cell restore, sense-amp set, and row logic.
    #[must_use]
    pub fn activate(&self) -> OperationCharges {
        let mut op = OperationCharges::default();
        self.emit_activate(&mut op);
        op
    }

    fn emit_activate(&self, sink: &mut impl ChargeSink) {
        let tech = &self.desc.technology;
        let spec = &self.desc.spec;
        let page = spec.page_bits() as f64;
        let sub_cols = f64::from(self.geom.sub_cols);

        // --- addressing -------------------------------------------------
        sink.push(
            ChargeLabel::Static("row address bus"),
            ContributorGroup::AddressBus,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::RowAddress),
        );
        sink.push(
            ChargeLabel::Static("bank address bus"),
            ContributorGroup::AddressBus,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::BankAddress),
        );
        sink.push(
            ChargeLabel::Static("command on control bus"),
            ContributorGroup::ClockControl,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::Control),
        );
        // Predecode wires run the height of the row-logic stripe.
        let predecode_wires = tech.mwl_predecode_ratio * 2.0 * f64::from(spec.row_address_bits);
        let c_predecode = tech.c_wire_signal * self.geom.block_along_bl * predecode_wires;
        sink.push(
            ChargeLabel::Static("row predecode wires"),
            ContributorGroup::AddressBus,
            VoltageDomain::Vint,
            c_predecode * self.vint(),
        );

        // --- wordline system ---------------------------------------------
        let l_hv = tech.lmin_high_voltage;
        let dec_gates = gate_capacitance(
            DeviceGeometry {
                width: tech.mwl_decoder_nmos_width,
                length: l_hv,
            },
            tech.tox_high_voltage,
        ) + gate_capacitance(
            DeviceGeometry {
                width: tech.mwl_decoder_pmos_width,
                length: l_hv,
            },
            tech.tox_high_voltage,
        );
        sink.push(
            ChargeLabel::Static("master wordline decoder"),
            ContributorGroup::Wordlines,
            VoltageDomain::Vpp,
            (dec_gates * tech.mwl_decoder_switching) * self.vpp(),
        );
        sink.push(
            ChargeLabel::Static("master wordline"),
            ContributorGroup::Wordlines,
            VoltageDomain::Vpp,
            self.master_wordline_capacitance() * self.vpp(),
        );
        // Wordline driver select (phase) lines: a wire along the block and
        // the controller load devices in every driver stripe.
        let ctrl_gates = gate_capacitance(
            DeviceGeometry {
                width: tech.wl_controller_nmos_width,
                length: l_hv,
            },
            tech.tox_high_voltage,
        ) + gate_capacitance(
            DeviceGeometry {
                width: tech.wl_controller_pmos_width,
                length: l_hv,
            },
            tech.tox_high_voltage,
        );
        let c_select =
            tech.c_wire_signal * self.geom.master_wordline_length() + ctrl_gates * (sub_cols + 1.0);
        sink.push(
            ChargeLabel::Static("wordline driver select"),
            ContributorGroup::Wordlines,
            VoltageDomain::Vpp,
            c_select * self.vpp(),
        );
        sink.push(
            ChargeLabel::Static("local wordlines"),
            ContributorGroup::Wordlines,
            VoltageDomain::Vpp,
            (self.local_wordline_capacitance() * sub_cols) * self.vpp(),
        );

        // --- bitline sensing ----------------------------------------------
        // One bitline of each sensed pair charges from the equalize
        // midlevel to Vbl.
        let half_vbl = self.vbl() * 0.5;
        sink.push(
            ChargeLabel::Static("bitline sensing"),
            ContributorGroup::Bitlines,
            VoltageDomain::Vbl,
            (tech.bitline_cap * page) * half_vbl,
        );
        sink.push(
            ChargeLabel::Static("cell restore"),
            ContributorGroup::Bitlines,
            VoltageDomain::Vbl,
            (tech.cell_cap * (page * DATA_ACTIVITY)) * half_vbl,
        );

        // --- sense amplifier set ------------------------------------------
        let set_junction = (self.sa.nset_junction + self.sa.pset_junction) * page;
        let set_wires = tech.c_wire_signal * self.geom.master_wordline_length() * 2.0;
        sink.push(
            ChargeLabel::Static("sense amplifier set lines"),
            ContributorGroup::SenseAmps,
            VoltageDomain::Vbl,
            (set_junction + set_wires) * half_vbl,
        );
        // One set-driver pair per activated stripe segment, two stripes
        // (above/below) per sub-array.
        sink.push(
            ChargeLabel::Static("set drivers"),
            ContributorGroup::SenseAmps,
            VoltageDomain::Vint,
            (self.sa.set_driver_gate * (2.0 * sub_cols)) * self.vint(),
        );

        // --- row logic -----------------------------------------------------
        self.emit_logic_items(sink, ContributorGroup::RowLogic, |a| a.activate);
    }

    /// Charges of one precharge command: equalize line recharge, decoder
    /// deselect, and row logic. Bitline equalization itself is adiabatic
    /// (pair shorting) and books nothing.
    #[must_use]
    pub fn precharge(&self) -> OperationCharges {
        let mut op = OperationCharges::default();
        self.emit_precharge(&mut op);
        op
    }

    fn emit_precharge(&self, sink: &mut impl ChargeSink) {
        let tech = &self.desc.technology;
        let spec = &self.desc.spec;
        let page = spec.page_bits() as f64;
        let sub_cols = f64::from(self.geom.sub_cols);

        // Equalize lines rise back to Vpp over the whole page.
        let eq_gates = self.sa.equalize_gate * page;
        let eq_wires = tech.c_wire_signal * (self.geom.local_dataline_length() * (2.0 * sub_cols));
        sink.push(
            ChargeLabel::Static("equalize lines"),
            ContributorGroup::SenseAmps,
            VoltageDomain::Vpp,
            (eq_gates + eq_wires) * self.vpp(),
        );

        // Decoder deselect switching (about half an activate's decoder
        // activity).
        let l_hv = tech.lmin_high_voltage;
        let dec_gates = gate_capacitance(
            DeviceGeometry {
                width: tech.mwl_decoder_nmos_width,
                length: l_hv,
            },
            tech.tox_high_voltage,
        ) + gate_capacitance(
            DeviceGeometry {
                width: tech.mwl_decoder_pmos_width,
                length: l_hv,
            },
            tech.tox_high_voltage,
        );
        sink.push(
            ChargeLabel::Static("master wordline decoder deselect"),
            ContributorGroup::Wordlines,
            VoltageDomain::Vpp,
            (dec_gates * (0.5 * tech.mwl_decoder_switching)) * self.vpp(),
        );

        sink.push(
            ChargeLabel::Static("bank address bus"),
            ContributorGroup::AddressBus,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::BankAddress),
        );
        sink.push(
            ChargeLabel::Static("command on control bus"),
            ContributorGroup::ClockControl,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::Control),
        );
        self.emit_logic_items(sink, ContributorGroup::RowLogic, |a| a.precharge);
    }

    /// Shared column-access charges (read and write): column addressing,
    /// column select line, local and master datalines, column logic.
    fn column_common(&self, sink: &mut impl ChargeSink) {
        let tech = &self.desc.technology;
        let spec = &self.desc.spec;
        let bits = f64::from(spec.bits_per_column_access());

        sink.push(
            ChargeLabel::Static("column address bus"),
            ContributorGroup::AddressBus,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::ColumnAddress),
        );
        sink.push(
            ChargeLabel::Static("bank address bus"),
            ContributorGroup::AddressBus,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::BankAddress),
        );
        sink.push(
            ChargeLabel::Static("command on control bus"),
            ContributorGroup::ClockControl,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::Control),
        );
        sink.push(
            ChargeLabel::Static("column select line"),
            ContributorGroup::ColumnLogic,
            VoltageDomain::Vint,
            self.column_select_capacitance() * self.vint(),
        );
        // Local datalines: short differential runs in the sense-amplifier
        // stripe at the array voltage; one line of each pair swings.
        let c_ldq =
            tech.c_wire_signal * self.geom.local_dataline_length() + self.sa.bit_switch_gate; // switch junctions ≈ gate-order load
        sink.push(
            ChargeLabel::Static("local datalines"),
            ContributorGroup::DataPath,
            VoltageDomain::Vbl,
            (c_ldq * bits) * self.vbl(),
        );
        // Master datalines: long differential pairs to the column logic;
        // precharged, so one line swings for every transferred bit.
        let c_mdq = tech.c_wire_signal * self.geom.master_dataline_length();
        sink.push(
            ChargeLabel::Static("master datalines"),
            ContributorGroup::DataPath,
            VoltageDomain::Vint,
            (c_mdq * bits) * self.vint(),
        );
    }

    /// Charges of one read command transferring `io_width × prefetch`
    /// bits.
    #[must_use]
    pub fn read(&self) -> OperationCharges {
        let mut op = OperationCharges::default();
        self.emit_read(&mut op);
        op
    }

    fn emit_read(&self, sink: &mut impl ChargeSink) {
        let bits = f64::from(self.desc.spec.bits_per_column_access());
        self.column_common(sink);
        sink.push(
            ChargeLabel::Static("read data bus"),
            ContributorGroup::DataPath,
            VoltageDomain::Vint,
            self.class_charge_per_bit(SignalClass::ReadData) * bits,
        );
        self.emit_logic_items(sink, ContributorGroup::ColumnLogic, |a| a.read);
    }

    /// Charges of one write command transferring `io_width × prefetch`
    /// bits: the read path plus flipping the written sense amplifiers,
    /// bitlines and cells.
    #[must_use]
    pub fn write(&self) -> OperationCharges {
        let mut op = OperationCharges::default();
        self.emit_write(&mut op);
        op
    }

    fn emit_write(&self, sink: &mut impl ChargeSink) {
        let tech = &self.desc.technology;
        let bits = f64::from(self.desc.spec.bits_per_column_access());
        self.column_common(sink);
        sink.push(
            ChargeLabel::Static("write data bus"),
            ContributorGroup::DataPath,
            VoltageDomain::Vint,
            self.class_charge_per_bit(SignalClass::WriteData) * bits,
        );
        // Half the written bits flip their sense amplifier: the newly-high
        // bitline charges rail-to-rail, and the cell is rewritten.
        let flips = bits * DATA_ACTIVITY;
        sink.push(
            ChargeLabel::Static("bitline write flip"),
            ContributorGroup::Bitlines,
            VoltageDomain::Vbl,
            ((tech.bitline_cap + tech.cell_cap) * flips) * self.vbl(),
        );
        self.emit_logic_items(sink, ContributorGroup::ColumnLogic, |a| a.write);
    }

    /// Background charges of one control-clock cycle: clock distribution,
    /// idle command/address input activity, and always-on logic. This is
    /// what a device burns every cycle regardless of commands.
    #[must_use]
    pub fn clock_cycle(&self) -> OperationCharges {
        let mut op = OperationCharges::default();
        self.emit_clock_cycle(&mut op);
        op
    }

    fn emit_clock_cycle(&self, sink: &mut impl ChargeSink) {
        sink.push(
            ChargeLabel::Static("clock distribution"),
            ContributorGroup::ClockControl,
            VoltageDomain::Vint,
            self.class_charge_per_event(SignalClass::Clock),
        );
        self.emit_logic_items(sink, ContributorGroup::PeripheralLogic, |a| a.always);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    fn model_fixture() -> (DramDescription, Geometry) {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("reference is valid");
        (desc, geom)
    }

    #[test]
    fn activate_is_dominated_by_bitlines() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let act = m.activate();
        let bl = act.group_charge(ContributorGroup::Bitlines);
        let wl = act.group_charge(ContributorGroup::Wordlines);
        assert!(bl.coulombs() > 0.0 && wl.coulombs() > 0.0);
        // 16 K bitlines at ~65 fF half-swing dwarf 32 local wordlines.
        assert!(bl > wl);
        // Order of magnitude: hundreds of picocoulombs on Vbl.
        let q_vbl = act.domain_charge(VoltageDomain::Vbl).coulombs();
        assert!(q_vbl > 2e-10 && q_vbl < 3e-9, "Vbl activate charge {q_vbl}");
    }

    #[test]
    fn local_wordline_capacitance_magnitude() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let c = m.local_wordline_capacitance().femtofarads();
        // Wire + 512 cell gates + coupling: of order 100 fF.
        assert!(c > 40.0 && c < 400.0, "LWL cap {c} fF");
    }

    #[test]
    fn master_wordline_capacitance_magnitude() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let c = m.master_wordline_capacitance().femtofarads();
        // ~2 mm of metal plus 33 driver stripes: of order 500 fF.
        assert!(c > 200.0 && c < 2000.0, "MWL cap {c} fF");
    }

    #[test]
    fn read_and_write_share_column_path() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let rd = m.read();
        let wr = m.write();
        // Both carry the column select line item.
        assert!(rd.items.iter().any(|i| i.label == "column select line"));
        assert!(wr.items.iter().any(|i| i.label == "column select line"));
        // Writes additionally flip bitlines.
        assert!(wr.items.iter().any(|i| i.label == "bitline write flip"));
        assert!(!rd.items.iter().any(|i| i.label == "bitline write flip"));
        // The flip makes a write move more Vbl charge than a read.
        assert!(wr.domain_charge(VoltageDomain::Vbl) > rd.domain_charge(VoltageDomain::Vbl));
    }

    #[test]
    fn precharge_books_equalize_on_vpp() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let pre = m.precharge();
        let eq = pre
            .items
            .iter()
            .find(|i| i.label == "equalize lines")
            .expect("equalize present");
        assert_eq!(eq.domain, VoltageDomain::Vpp);
        assert!(eq.charge.coulombs() > 0.0);
        // Precharge is much cheaper than activate (equalize is adiabatic).
        let act = m.activate();
        let e = |op: &OperationCharges| -> f64 {
            VoltageDomain::ALL
                .iter()
                .map(|&d| op.domain_charge(d).coulombs() * d.voltage(&desc.electrical).volts())
                .sum()
        };
        assert!(e(&pre) < 0.5 * e(&act));
    }

    #[test]
    fn clock_cycle_is_small_next_to_operations() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let nop = m.clock_cycle();
        let act = m.activate();
        assert!(nop.domain_charge(VoltageDomain::Vint) < act.domain_charge(VoltageDomain::Vbl));
        assert!(nop.items.iter().all(|i| i.charge.coulombs() >= 0.0));
    }

    #[test]
    fn charges_scale_with_page_size() {
        // Doubling the page (wider IO at same column bits) must roughly
        // double activate bitline charge.
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let base = m.activate().group_charge(ContributorGroup::Bitlines);

        let mut desc2 = ddr3_1g_x16_55nm();
        desc2.spec.row_address_bits -= 1; // keep density constant
        desc2.spec.column_address_bits += 1;
        let geom2 = Geometry::new(&desc2).expect("valid");
        let m2 = ChargeModel::new(&desc2, &geom2);
        let doubled = m2.activate().group_charge(ContributorGroup::Bitlines);
        let ratio = doubled.coulombs() / base.coulombs();
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn logic_block_capacitance_scales_with_gates() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let mut b = desc.logic_blocks[0].clone();
        let c1 = m.logic_block_capacitance(&b);
        b.gates *= 2;
        let c2 = m.logic_block_capacitance(&b);
        assert!((c2.farads() / c1.farads() - 2.0).abs() < 1e-9);
    }

    /// Golden tests: the headline ledger items match their closed-form
    /// expressions exactly (the spec of §III's charge accounting).
    #[test]
    fn bitline_sensing_matches_closed_form() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let act = m.activate();
        let item = act
            .items
            .iter()
            .find(|i| i.label == "bitline sensing")
            .expect("present");
        // Q = page · C_bl · V_bl/2
        let expected = desc.spec.page_bits() as f64
            * desc.technology.bitline_cap.farads()
            * desc.electrical.vbl.volts()
            / 2.0;
        assert!(
            (item.charge.coulombs() - expected).abs() < 1e-18,
            "{} vs {expected}",
            item.charge.coulombs()
        );
        assert_eq!(item.domain, VoltageDomain::Vbl);
    }

    #[test]
    fn cell_restore_matches_closed_form() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let act = m.activate();
        let item = act
            .items
            .iter()
            .find(|i| i.label == "cell restore")
            .expect("present");
        // Q = page · α · C_cell · V_bl/2
        let expected = desc.spec.page_bits() as f64
            * DATA_ACTIVITY
            * desc.technology.cell_cap.farads()
            * desc.electrical.vbl.volts()
            / 2.0;
        assert!((item.charge.coulombs() - expected).abs() < 1e-18);
    }

    #[test]
    fn write_flip_matches_closed_form() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let wr = m.write();
        let item = wr
            .items
            .iter()
            .find(|i| i.label == "bitline write flip")
            .expect("present");
        // Q = bits · α · (C_bl + C_cell) · V_bl
        let expected = f64::from(desc.spec.bits_per_column_access())
            * DATA_ACTIVITY
            * (desc.technology.bitline_cap.farads() + desc.technology.cell_cap.farads())
            * desc.electrical.vbl.volts();
        assert!((item.charge.coulombs() - expected).abs() < 1e-18);
    }

    #[test]
    fn master_dataline_charge_matches_closed_form() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let rd = m.read();
        let item = rd
            .items
            .iter()
            .find(|i| i.label == "master datalines")
            .expect("present");
        // Q = bits · c_sig · L_mdq · V_int
        let expected = f64::from(desc.spec.bits_per_column_access())
            * desc.technology.c_wire_signal.farads_per_meter()
            * geom.master_dataline_length().meters()
            * desc.electrical.vint.volts();
        assert!(
            (item.charge.coulombs() - expected).abs() < 1e-18,
            "{} vs {expected}",
            item.charge.coulombs()
        );
    }

    #[test]
    fn csl_capacitance_scales_with_shared_blocks() {
        let desc1 = ddr3_1g_x16_55nm();
        let geom1 = Geometry::new(&desc1).expect("valid");
        let m1 = ChargeModel::new(&desc1, &geom1);
        let c1 = m1.column_select_capacitance();

        let mut desc2 = ddr3_1g_x16_55nm();
        desc2.floorplan.blocks_per_csl = 2;
        let geom2 = Geometry::new(&desc2).expect("valid");
        let m2 = ChargeModel::new(&desc2, &geom2);
        let c2 = m2.column_select_capacitance();
        // Wire and gates both double with the shared span.
        assert!((c2.farads() / c1.farads() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clock_charge_scales_with_wire_count() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let base = m.clock_cycle().domain_charge(VoltageDomain::Vint);

        let mut desc2 = ddr3_1g_x16_55nm();
        desc2.spec.clock_wires *= 2;
        let geom2 = Geometry::new(&desc2).expect("valid");
        let m2 = ChargeModel::new(&desc2, &geom2);
        let doubled = m2.clock_cycle().domain_charge(VoltageDomain::Vint);
        // Only the clock-path share doubles; total must strictly grow.
        assert!(doubled > base);
        assert!(doubled.coulombs() < base.coulombs() * 2.0);
    }

    #[test]
    fn path_charge_per_event_is_wires_times_per_bit() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        for sig in &desc.signaling.signals {
            let per_event = m.path_charge_per_event(sig).coulombs();
            let per_bit = m.path_charge_per_bit(sig).coulombs();
            let wires = f64::from(m.wire_count(sig.wires));
            assert!(
                (per_event - per_bit * wires).abs() < 1e-18,
                "signal {}",
                sig.name
            );
        }
    }

    #[test]
    fn logic_items_are_itemized_by_block_name() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let rd = m.read();
        let logic_items: Vec<_> = rd
            .items
            .iter()
            .filter(|i| i.label.starts_with("logic: "))
            .collect();
        // All column-op blocks appear individually.
        let expected = desc
            .logic_blocks
            .iter()
            .filter(|b| b.active_during.read)
            .count();
        assert_eq!(logic_items.len(), expected);
        assert!(logic_items
            .iter()
            .any(|i| i.label.contains("column control")));
    }

    #[test]
    fn bl_to_wl_coupling_adds_to_local_wordline() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let with = m.local_wordline_capacitance();

        let mut desc2 = ddr3_1g_x16_55nm();
        desc2.technology.bl_to_wl_cap_share = 0.0;
        let geom2 = Geometry::new(&desc2).expect("valid");
        let m2 = ChargeModel::new(&desc2, &geom2);
        let without = m2.local_wordline_capacitance();
        let delta_ff = with.femtofarads() - without.femtofarads();
        // 0.15 share of a 70 fF bitline over 512/512 cells: 10.5 fF.
        assert!(
            (delta_ff - 10.5).abs() < 0.2,
            "coupling delta {delta_ff} fF"
        );
    }

    #[test]
    fn charge_batch_matches_itemized_ledger_bitwise() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let batch = ChargeBatch::from_model(&m);
        let ops = [
            m.activate(),
            m.precharge(),
            m.read(),
            m.write(),
            m.clock_cycle(),
        ];
        assert_eq!(
            batch.len(),
            ops.iter().map(|o| o.items.len()).sum::<usize>()
        );
        assert!(!batch.is_empty());
        let ext = batch.op_externals(&desc.electrical);
        for (i, op) in ops.iter().enumerate() {
            let expected: Joules = op
                .items
                .iter()
                .map(|it| it.domain.external_energy(it.charge, &desc.electrical))
                .sum();
            assert_eq!(
                ext[i].joules().to_bits(),
                expected.joules().to_bits(),
                "operation #{i} external energy differs"
            );
        }
    }

    #[test]
    fn charge_batch_refill_is_idempotent() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        let mut batch = ChargeBatch::from_model(&m);
        let first = batch.op_externals(&desc.electrical);
        batch.fill(&m);
        let second = batch.op_externals(&desc.electrical);
        for (a, b) in first.iter().zip(second.iter()) {
            assert_eq!(a.joules().to_bits(), b.joules().to_bits());
        }
    }

    #[test]
    fn wire_count_resolution() {
        let (desc, geom) = model_fixture();
        let m = ChargeModel::new(&desc, &geom);
        assert_eq!(m.wire_count(WireCount::PerIo), 16);
        assert_eq!(m.wire_count(WireCount::RowAddressBits), 13);
        assert_eq!(m.wire_count(WireCount::ColumnAddressBits), 10);
        assert_eq!(m.wire_count(WireCount::BankAddressBits), 3);
        assert_eq!(m.wire_count(WireCount::ControlSignals), 10);
        assert_eq!(m.wire_count(WireCount::ClockWires), 2);
        assert_eq!(m.wire_count(WireCount::Explicit(7)), 7);
    }
}
