//! The four voltage domains of a DRAM (§III.A) and conversion of
//! internally moved charge to external supply power.
//!
//! Wordlines are boosted to Vpp above Vdd; the array is written at the
//! bitline voltage Vbl; most circuitry runs at Vint; the external Vdd
//! feeds the interface logic and the pumps/generators deriving the other
//! rails. Each derived rail has a generator efficiency: external input
//! power is internal power divided by that efficiency.

use dram_units::{Coulombs, Joules, Volts, Watts};

use crate::params::Electrical;

/// One of the four modeled voltage domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoltageDomain {
    /// Boosted wordline voltage (charge-pumped above Vdd).
    Vpp,
    /// Bitline / cell array voltage.
    Vbl,
    /// Internal logic voltage (regulated from or tied to Vdd).
    Vint,
    /// External supply voltage (interface circuitry, constant sinks).
    Vdd,
}

impl VoltageDomain {
    /// All domains, in display order.
    pub const ALL: [VoltageDomain; 4] = [
        VoltageDomain::Vpp,
        VoltageDomain::Vbl,
        VoltageDomain::Vint,
        VoltageDomain::Vdd,
    ];

    /// The rail voltage of this domain.
    #[must_use]
    pub fn voltage(self, e: &Electrical) -> Volts {
        match self {
            VoltageDomain::Vpp => e.vpp,
            VoltageDomain::Vbl => e.vbl,
            VoltageDomain::Vint => e.vint,
            VoltageDomain::Vdd => e.vdd,
        }
    }

    /// Generator/pump efficiency converting external power into this rail
    /// (1.0 for the external rail itself).
    #[must_use]
    pub fn efficiency(self, e: &Electrical) -> f64 {
        match self {
            VoltageDomain::Vpp => e.eff_vpp,
            VoltageDomain::Vbl => e.eff_vbl,
            VoltageDomain::Vint => e.eff_vint,
            VoltageDomain::Vdd => 1.0,
        }
    }

    /// External supply energy needed to deliver charge `q` out of this
    /// rail.
    ///
    /// Following the paper's accounting ("the power of each basic
    /// operation is calculated by multiplying the current with the
    /// external supply voltage and in case of derived voltages the
    /// generator or pump efficiency factor"), generators are
    /// charge-transfer devices: the efficiency is the ratio of output to
    /// input *charge*, and all input charge is drawn at Vdd. Hence
    /// `E = Q·V_dd/η` for derived rails and `E = Q·V_dd` for the external
    /// rail itself — which makes total power exactly proportional to the
    /// external voltage, as §IV.B observes.
    #[must_use]
    pub fn external_energy(self, q: Coulombs, e: &Electrical) -> Joules {
        (q * e.vdd) / self.efficiency(e)
    }

    /// Internal (rail-side) energy for charge `q`: `Q·V`.
    #[must_use]
    pub fn internal_energy(self, q: Coulombs, e: &Electrical) -> Joules {
        q * self.voltage(e)
    }
}

impl core::fmt::Display for VoltageDomain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            VoltageDomain::Vpp => "Vpp",
            VoltageDomain::Vbl => "Vbl",
            VoltageDomain::Vint => "Vint",
            VoltageDomain::Vdd => "Vdd",
        };
        f.write_str(s)
    }
}

/// Converts external power to the external supply current a datasheet
/// would report (`I = P / Vdd`).
#[must_use]
pub fn external_current(p: Watts, e: &Electrical) -> dram_units::Amperes {
    p / e.vdd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    #[test]
    fn domain_voltages_and_efficiencies() {
        let e = ddr3_1g_x16_55nm().electrical;
        assert_eq!(VoltageDomain::Vpp.voltage(&e).volts(), 2.9);
        assert_eq!(VoltageDomain::Vbl.voltage(&e).volts(), 1.2);
        assert_eq!(VoltageDomain::Vint.voltage(&e).volts(), 1.3);
        assert_eq!(VoltageDomain::Vdd.voltage(&e).volts(), 1.5);
        assert_eq!(VoltageDomain::Vdd.efficiency(&e), 1.0);
        assert!(VoltageDomain::Vpp.efficiency(&e) < VoltageDomain::Vint.efficiency(&e));
    }

    #[test]
    fn external_energy_includes_pump_loss() {
        let e = ddr3_1g_x16_55nm().electrical;
        let q = Coulombs::new(1.0e-12);
        let internal = VoltageDomain::Vpp.internal_energy(q, &e);
        let external = VoltageDomain::Vpp.external_energy(q, &e);
        assert!((internal.picojoules() - 2.9).abs() < 1e-9);
        // Charge-transfer accounting: input charge Q/η drawn at Vdd.
        assert!((external.picojoules() - 1.5 / 0.21).abs() < 1e-9);
        assert!(external > internal);
        // The external rail has no conversion loss.
        let ext_dd = VoltageDomain::Vdd.external_energy(q, &e);
        let int_dd = VoltageDomain::Vdd.internal_energy(q, &e);
        assert_eq!(ext_dd, int_dd);
    }

    #[test]
    fn external_power_is_proportional_to_vdd() {
        // §IV.B: only Vdd moves total power exactly proportionally.
        let mut e = ddr3_1g_x16_55nm().electrical;
        let q = Coulombs::new(1.0e-12);
        let base: f64 = VoltageDomain::ALL
            .iter()
            .map(|d| d.external_energy(q, &e).joules())
            .sum();
        e.vdd = e.vdd * 1.2;
        let scaled: f64 = VoltageDomain::ALL
            .iter()
            .map(|d| d.external_energy(q, &e).joules())
            .sum();
        assert!((scaled / base - 1.2).abs() < 1e-12);
    }

    #[test]
    fn current_from_power() {
        let e = ddr3_1g_x16_55nm().electrical;
        let i = external_current(Watts::from_mw(150.0), &e);
        assert!((i.milliamperes() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn display_names() {
        assert_eq!(VoltageDomain::Vpp.to_string(), "Vpp");
        assert_eq!(VoltageDomain::Vdd.to_string(), "Vdd");
    }
}
