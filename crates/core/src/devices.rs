//! Device capacitance models (§III.B.2–3).
//!
//! The paper computes device loads as "the sum of gate and junction
//! capacitance", with gate capacitance "calculated from gate area and
//! equivalent dielectric thickness" and junction capacitance "calculated
//! from junction width and specific junction capacitance per width". This
//! module implements exactly those two formulas plus the composite loads of
//! the bitline sense-amplifier (Fig. 2) and the local wordline driver
//! (Fig. 3).

use dram_units::{Farads, FaradsPerMeter, FaradsPerSquareMeter, Meters};

use crate::params::{BufferDevice, DeviceGeometry, Technology};

/// Permittivity of SiO₂ (3.9 · ε₀) in F/m; oxide thicknesses in the
/// description are SiO₂-equivalent, so this one constant covers high-k
/// stacks too.
pub const EPS_SIO2: f64 = 3.45e-11;

/// Fringe/overlap allowance applied to plate gate capacitance. Thin-oxide
/// MOS gates carry roughly 20 % extra capacitance from overlap and fringing
/// fields beyond the parallel-plate term.
pub const GATE_FRINGE_FACTOR: f64 = 1.2;

/// Areal gate capacitance of an oxide of the given equivalent thickness.
///
/// # Examples
///
/// ```
/// use dram_core::devices::oxide_capacitance;
/// use dram_units::Meters;
/// let cox = oxide_capacitance(Meters::from_nm(4.0));
/// assert!((cox.ff_per_um2() - 8.625).abs() < 1e-3);
/// ```
#[must_use]
pub fn oxide_capacitance(tox: Meters) -> FaradsPerSquareMeter {
    debug_assert!(tox.meters() > 0.0, "oxide thickness must be positive");
    FaradsPerSquareMeter::new(EPS_SIO2 / tox.meters())
}

/// Gate capacitance of a device: plate capacitance `ε/t_ox · W · L` with
/// the fringe allowance of [`GATE_FRINGE_FACTOR`].
#[must_use]
pub fn gate_capacitance(device: DeviceGeometry, tox: Meters) -> Farads {
    oxide_capacitance(tox) * device.gate_area() * GATE_FRINGE_FACTOR
}

/// Junction (source/drain) capacitance of a device of the given gate
/// width, using the technology's specific junction capacitance per width.
#[must_use]
pub fn junction_capacitance(width: Meters, cj_per_width: FaradsPerMeter) -> Farads {
    cj_per_width * width
}

/// Capacitive loads of one bitline sense-amplifier (Fig. 2).
///
/// The paper's typical stripe has 11 transistors per bitline pair: the
/// NMOS and PMOS sense pairs (2+2), three equalize devices, two bit
/// switches, and — folded bitline only — two bitline multiplexers; the
/// NSET/PSET set drivers are shared per stripe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmpLoads {
    /// Gate load of the equalize signal per sense-amplifier (three
    /// devices). The equalize line swings the full wordline voltage.
    pub equalize_gate: Farads,
    /// Junction load contributed per sense-amplifier to the common NSET
    /// node (two NMOS sense-pair junctions).
    pub nset_junction: Farads,
    /// Junction load contributed per sense-amplifier to the common PSET
    /// node (two PMOS sense-pair junctions).
    pub pset_junction: Farads,
    /// Gate load of the column-select (bit switch) input per
    /// sense-amplifier (two devices).
    pub bit_switch_gate: Farads,
    /// Gate load of the bitline multiplexer select per sense-amplifier
    /// (two devices; zero for open-bitline architectures).
    pub bitline_mux_gate: Farads,
    /// Junction load each sense-amplifier adds to its bitline pair
    /// (sense pairs, equalize, bit switch) — part of the bitline
    /// capacitance budget; reported for breakdown purposes.
    pub bitline_junction: Farads,
    /// Gate capacitance of one set driver pair (NSET + PSET device),
    /// shared per stripe.
    pub set_driver_gate: Farads,
}

impl SenseAmpLoads {
    /// Computes the sense-amplifier loads from the technology description.
    #[must_use]
    pub fn new(tech: &Technology, folded: bool) -> Self {
        let cj = tech.junction_cap_logic;
        let equalize_gate = gate_capacitance(tech.sa_equalize, tech.tox_high_voltage) * 3.0;
        let nset_junction = junction_capacitance(tech.sa_nmos_sense.width, cj) * 2.0;
        let pset_junction = junction_capacitance(tech.sa_pmos_sense.width, cj) * 2.0;
        let bit_switch_gate = gate_capacitance(tech.sa_bit_switch, tech.tox_logic) * 2.0;
        let bitline_mux_gate = if folded {
            gate_capacitance(tech.sa_bitline_mux, tech.tox_high_voltage) * 2.0
        } else {
            Farads::ZERO
        };
        let bitline_junction = junction_capacitance(tech.sa_nmos_sense.width, cj)
            + junction_capacitance(tech.sa_pmos_sense.width, cj)
            + junction_capacitance(tech.sa_equalize.width, cj)
            + junction_capacitance(tech.sa_bit_switch.width, cj);
        let set_driver_gate = gate_capacitance(tech.sa_nset, tech.tox_logic)
            + gate_capacitance(tech.sa_pset, tech.tox_logic);
        Self {
            equalize_gate,
            nset_junction,
            pset_junction,
            bit_switch_gate,
            bitline_mux_gate,
            bitline_junction,
            set_driver_gate,
        }
    }
}

/// Capacitive loads of one local (sub-)wordline driver (Fig. 3): a CMOS
/// driver with a restore (keeper) NMOS, three transistors per local
/// wordline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordlineDriverLoads {
    /// Gate load the driver presents to the master wordline (PMOS + NMOS +
    /// restore gates, all high-voltage devices).
    pub input_gate: Farads,
    /// Junction load the driver adds to the local wordline it drives.
    pub output_junction: Farads,
}

impl WordlineDriverLoads {
    /// Computes the local wordline driver loads from the technology.
    #[must_use]
    pub fn new(tech: &Technology) -> Self {
        let l = tech.lmin_high_voltage;
        let gate = |w: Meters| {
            gate_capacitance(
                DeviceGeometry {
                    width: w,
                    length: l,
                },
                tech.tox_high_voltage,
            )
        };
        let input_gate = gate(tech.swd_nmos_width)
            + gate(tech.swd_pmos_width)
            + gate(tech.swd_restore_nmos_width);
        let cj = tech.junction_cap_high_voltage;
        let output_junction = junction_capacitance(tech.swd_nmos_width, cj)
            + junction_capacitance(tech.swd_pmos_width, cj)
            + junction_capacitance(tech.swd_restore_nmos_width, cj);
        Self {
            input_gate,
            output_junction,
        }
    }
}

/// Input and output load of a signal re-driver (buffer) in a wire segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferLoads {
    /// Gate capacitance seen by the upstream segment.
    pub input_gate: Farads,
    /// Junction capacitance added to the downstream segment.
    pub output_junction: Farads,
}

impl BufferLoads {
    /// Computes buffer loads using logic devices at minimum length.
    #[must_use]
    pub fn new(buffer: BufferDevice, tech: &Technology) -> Self {
        let l = tech.lmin_logic;
        let gate = |w: Meters| {
            gate_capacitance(
                DeviceGeometry {
                    width: w,
                    length: l,
                },
                tech.tox_logic,
            )
        };
        let input_gate = gate(buffer.nmos_width) + gate(buffer.pmos_width);
        let output_junction = junction_capacitance(buffer.nmos_width, tech.junction_cap_logic)
            + junction_capacitance(buffer.pmos_width, tech.junction_cap_logic);
        Self {
            input_gate,
            output_junction,
        }
    }

    /// Total load a buffer contributes to a bus (input + output side).
    #[must_use]
    pub fn total(self) -> Farads {
        self.input_gate + self.output_junction
    }
}

/// Gate capacitance of one DRAM cell access transistor, the dominant
/// device load on a local wordline.
#[must_use]
pub fn cell_access_gate(tech: &Technology) -> Farads {
    gate_capacitance(
        DeviceGeometry {
            width: tech.cell_access_width,
            length: tech.cell_access_length,
        },
        tech.tox_cell,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    #[test]
    fn oxide_capacitance_is_inverse_in_thickness() {
        let thin = oxide_capacitance(Meters::from_nm(4.0));
        let thick = oxide_capacitance(Meters::from_nm(8.0));
        assert!((thin.ff_per_um2() / thick.ff_per_um2() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gate_capacitance_scales_with_area() {
        let tox = Meters::from_nm(5.0);
        let small = gate_capacitance(DeviceGeometry::from_um(0.5, 0.1), tox);
        let big = gate_capacitance(DeviceGeometry::from_um(1.0, 0.1), tox);
        assert!((big.femtofarads() / small.femtofarads() - 2.0).abs() < 1e-9);
        // Order of magnitude: ~0.4 fF for a 0.5/0.1 µm device at 5 nm.
        assert!(small.femtofarads() > 0.2 && small.femtofarads() < 0.8);
    }

    #[test]
    fn junction_capacitance_is_linear_in_width() {
        let cj = FaradsPerMeter::from_ff_per_um(1.0);
        let c = junction_capacitance(Meters::from_um(0.7), cj);
        assert!((c.femtofarads() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn sense_amp_loads_are_positive_and_small() {
        let desc = ddr3_1g_x16_55nm();
        let sa = SenseAmpLoads::new(&desc.technology, false);
        assert!(sa.equalize_gate.femtofarads() > 0.05);
        assert!(sa.equalize_gate.femtofarads() < 2.0);
        assert!(sa.nset_junction.femtofarads() > 0.1);
        assert!(sa.bit_switch_gate.femtofarads() > 0.05);
        assert_eq!(sa.bitline_mux_gate, Farads::ZERO);
        let folded = SenseAmpLoads::new(&desc.technology, true);
        assert!(folded.bitline_mux_gate.femtofarads() > 0.0);
    }

    #[test]
    fn wordline_driver_load_is_about_a_femtofarad() {
        let desc = ddr3_1g_x16_55nm();
        let lwd = WordlineDriverLoads::new(&desc.technology);
        let ff = lwd.input_gate.femtofarads();
        assert!(ff > 0.3 && ff < 5.0, "LWD input gate {ff} fF out of range");
        assert!(lwd.output_junction.femtofarads() > 0.3);
    }

    #[test]
    fn cell_access_gate_is_tens_of_attofarads() {
        let desc = ddr3_1g_x16_55nm();
        let c = cell_access_gate(&desc.technology);
        let ff = c.femtofarads();
        assert!(ff > 0.01 && ff < 0.2, "cell gate {ff} fF out of range");
    }

    #[test]
    fn buffer_loads() {
        let desc = ddr3_1g_x16_55nm();
        let buf = BufferDevice {
            nmos_width: Meters::from_um(9.6),
            pmos_width: Meters::from_um(19.2),
        };
        let loads = BufferLoads::new(buf, &desc.technology);
        assert!(loads.input_gate > Farads::ZERO);
        assert!(loads.output_junction > Farads::ZERO);
        assert_eq!(
            loads.total().femtofarads(),
            (loads.input_gate + loads.output_junction).femtofarads()
        );
        // A 19.2/9.6 µm buffer pair presents tens of fF.
        assert!(loads.total().femtofarads() > 10.0);
        assert!(loads.total().femtofarads() < 100.0);
    }
}
