//! Operation patterns (§III.B.4).
//!
//! A pattern is "a series of commands which is assumed to repeat in a
//! continuous loop", one command per control-clock cycle. The paper's
//! example `Pattern loop= act nop wrt nop rd nop pre nop` is eight slots:
//! the device power is the slot-weighted mix of the command powers plus
//! the ever-present clock/background power.

use crate::error::ModelError;

/// One slot of a command pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Row activate (`act`).
    Activate,
    /// Row precharge (`pre`).
    Precharge,
    /// Column read (`rd`).
    Read,
    /// Column write (`wrt`).
    Write,
    /// No operation (`nop`).
    Nop,
    /// CKE-low power-down entry (`pde`): the clock tree gates off and
    /// the device holds at IDD2P/IDD3P until [`Command::PowerDownExit`].
    PowerDownEnter,
    /// CKE-high power-down exit (`pdx`).
    PowerDownExit,
    /// Self-refresh entry (`sre`): CKE low with the device refreshing
    /// itself from its internal oscillator (IDD6).
    SelfRefreshEnter,
    /// Self-refresh exit (`srx`).
    SelfRefreshExit,
    /// One auto-refresh command (`ref`), refreshing a batch of rows.
    Refresh,
}

impl Command {
    /// All commands, in display order.
    pub const ALL: [Command; 10] = [
        Command::Activate,
        Command::Precharge,
        Command::Read,
        Command::Write,
        Command::Nop,
        Command::PowerDownEnter,
        Command::PowerDownExit,
        Command::SelfRefreshEnter,
        Command::SelfRefreshExit,
        Command::Refresh,
    ];

    /// The mnemonic used in pattern strings (the paper's spelling).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Command::Activate => "act",
            Command::Precharge => "pre",
            Command::Read => "rd",
            Command::Write => "wrt",
            Command::Nop => "nop",
            Command::PowerDownEnter => "pde",
            Command::PowerDownExit => "pdx",
            Command::SelfRefreshEnter => "sre",
            Command::SelfRefreshExit => "srx",
            Command::Refresh => "ref",
        }
    }

    /// Parses one mnemonic. Accepts the paper's spellings plus common
    /// aliases (`read`, `write`, `wr`, `activate`, `precharge`).
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "act" | "activate" => Some(Command::Activate),
            "pre" | "precharge" => Some(Command::Precharge),
            "rd" | "read" => Some(Command::Read),
            "wrt" | "wr" | "write" => Some(Command::Write),
            "nop" | "-" => Some(Command::Nop),
            "pde" => Some(Command::PowerDownEnter),
            "pdx" => Some(Command::PowerDownExit),
            "sre" => Some(Command::SelfRefreshEnter),
            "srx" => Some(Command::SelfRefreshExit),
            "ref" => Some(Command::Refresh),
            _ => None,
        }
    }

    /// Whether this command only moves the CKE power state (power-down
    /// and self-refresh entries/exits) — no row or column work, so the
    /// charge model prices it at zero and the state machine bills the
    /// *time* spent in the state instead.
    #[must_use]
    pub fn is_state_transition(self) -> bool {
        matches!(
            self,
            Command::PowerDownEnter
                | Command::PowerDownExit
                | Command::SelfRefreshEnter
                | Command::SelfRefreshExit
        )
    }
}

impl core::fmt::Display for Command {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A repeating command loop, one command per control-clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    slots: Vec<Command>,
}

impl Pattern {
    /// Creates a pattern from explicit slots.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPattern`] if `slots` is empty.
    pub fn new(slots: Vec<Command>) -> Result<Self, ModelError> {
        if slots.is_empty() {
            return Err(ModelError::EmptyPattern);
        }
        Ok(Self { slots })
    }

    /// Parses a whitespace-separated pattern string, e.g. the paper's
    /// `"act nop wrt nop rd nop pre nop"`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::BadParameter`] naming the unknown token, or
    /// [`ModelError::EmptyPattern`] for an empty string.
    ///
    /// # Examples
    ///
    /// ```
    /// use dram_core::pattern::{Command, Pattern};
    /// # fn main() -> Result<(), dram_core::ModelError> {
    /// let p = Pattern::parse("act nop wrt nop rd nop pre nop")?;
    /// assert_eq!(p.len(), 8);
    /// assert_eq!(p.share(Command::Nop), 0.5);
    /// # Ok(())
    /// # }
    /// ```
    pub fn parse(text: &str) -> Result<Self, ModelError> {
        let slots = text
            .split_whitespace()
            .map(|tok| {
                Command::from_mnemonic(tok).ok_or_else(|| ModelError::BadParameter {
                    name: "pattern",
                    reason: format!("unknown command `{tok}`"),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(slots)
    }

    /// The paper's verification pattern: one activate, write, read and
    /// precharge in eight cycles.
    #[must_use]
    pub fn paper_example() -> Self {
        Self {
            slots: vec![
                Command::Activate,
                Command::Nop,
                Command::Write,
                Command::Nop,
                Command::Read,
                Command::Nop,
                Command::Precharge,
                Command::Nop,
            ],
        }
    }

    /// The command slots.
    #[must_use]
    pub fn slots(&self) -> &[Command] {
        &self.slots
    }

    /// Number of slots in the loop.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pattern has no slots (never true for a constructed
    /// pattern).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of slots holding `cmd`.
    #[must_use]
    pub fn count(&self, cmd: Command) -> usize {
        self.slots.iter().filter(|&&c| c == cmd).count()
    }

    /// Fraction of slots holding `cmd`.
    #[must_use]
    pub fn share(&self, cmd: Command) -> f64 {
        self.count(cmd) as f64 / self.slots.len() as f64
    }
}

impl core::fmt::Display for Pattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut first = true;
        for c in &self.slots {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl core::str::FromStr for Pattern {
    type Err = ModelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_example() {
        let p = Pattern::parse("act nop wrt nop rd nop pre nop").expect("parses");
        assert_eq!(p, Pattern::paper_example());
        assert_eq!(p.len(), 8);
        assert_eq!(p.count(Command::Activate), 1);
        assert_eq!(p.count(Command::Nop), 4);
        assert!((p.share(Command::Activate) - 0.125).abs() < 1e-12);
        assert!((p.share(Command::Nop) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parse_aliases_and_case() {
        let p = Pattern::parse("ACT Read WRITE wr PRE -").expect("parses");
        assert_eq!(
            p.slots(),
            &[
                Command::Activate,
                Command::Read,
                Command::Write,
                Command::Write,
                Command::Precharge,
                Command::Nop
            ]
        );
    }

    #[test]
    fn parse_rejects_unknown_token() {
        let err = Pattern::parse("act refresh").unwrap_err();
        assert!(err.to_string().contains("refresh"));
    }

    #[test]
    fn empty_pattern_is_rejected() {
        assert_eq!(Pattern::parse("").unwrap_err(), ModelError::EmptyPattern);
        assert_eq!(Pattern::new(vec![]).unwrap_err(), ModelError::EmptyPattern);
    }

    #[test]
    fn display_roundtrips() {
        let p = Pattern::paper_example();
        let text = p.to_string();
        assert_eq!(text, "act nop wrt nop rd nop pre nop");
        let back: Pattern = text.parse().expect("roundtrip");
        assert_eq!(back, p);
    }

    #[test]
    fn mnemonic_roundtrip_for_all_commands() {
        for cmd in Command::ALL {
            assert_eq!(Command::from_mnemonic(cmd.mnemonic()), Some(cmd));
        }
        assert_eq!(Command::from_mnemonic("bogus"), None);
    }

    #[test]
    fn state_transitions_are_classified() {
        assert!(Command::PowerDownEnter.is_state_transition());
        assert!(Command::SelfRefreshExit.is_state_transition());
        assert!(!Command::Refresh.is_state_transition());
        assert!(!Command::Activate.is_state_transition());
        assert!(!Command::Nop.is_state_transition());
        assert_eq!(Command::from_mnemonic("REF"), Some(Command::Refresh));
    }
}
