//! Parallel batch evaluation with memoized model construction.
//!
//! Every analysis in the workspace — sensitivity sweeps, roadmap walks,
//! scheme ablations, report regeneration — reduces to "build a [`Dram`]
//! per description variant and read numbers off it". This module gives
//! those loops two shared mechanisms:
//!
//! * [`EvalEngine::map`], a scoped-thread worker pool (no external
//!   dependency; the workspace must stay resolvable offline) with a
//!   chunked work queue. Results are placed **per input index**, never
//!   first-come-first-serve, so parallel output is bit-identical to the
//!   serial path whatever the thread interleaving. `threads(1)` runs the
//!   plain serial loop with no pool at all.
//! * [`ModelCache`], a memoizing store keyed by a content hash of the
//!   full [`DramDescription`] (floats hashed by bit pattern) that
//!   returns [`Arc<Dram>`]. Baselines shared by sweep, interaction,
//!   ablation and report code are built once per process instead of once
//!   per call site. Hash collisions are resolved by full structural
//!   comparison, so a collision can cost a lookup, never correctness.
//!
//! ```
//! use dram_core::batch::EvalEngine;
//! use dram_core::reference::ddr3_1g_x16_55nm;
//!
//! let engine = EvalEngine::new();
//! let descs = vec![ddr3_1g_x16_55nm(); 4];
//! let models = engine.evaluate_many(&descs);
//! assert!(models.iter().all(|m| m.is_ok()));
//! // Identical descriptions share one cached model.
//! assert_eq!(engine.cache_stats().misses, 1);
//! ```

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use dram_units::{Joules, Seconds};

use crate::charges::{ChargeBatch, ChargeModel};
use crate::geometry::Geometry;
use crate::params::{
    ActiveDuring, DramDescription, Electrical, LogicBlock, PhysicalFloorplan, SegmentSpec,
    SignalingFloorplan, Specification, Technology, Timing, WireCount,
};
use crate::pattern::Command;
use crate::perturb::{BuildPhase, Perturbation};
use crate::power::static_power;
use crate::{Dram, ModelError, PowerSummary};

/// Hashes an `f64` by bit pattern (`-0.0` and `0.0` hash differently;
/// that only risks a duplicate cache entry, never a wrong hit).
fn hash_f64<H: Hasher>(h: &mut H, v: f64) {
    h.write_u64(v.to_bits());
}

fn hash_floorplan<H: Hasher>(h: &mut H, fp: &PhysicalFloorplan) {
    fp.bitline_direction.hash(h);
    fp.bits_per_bitline.hash(h);
    fp.bits_per_local_wordline.hash(h);
    fp.bitline_architecture.hash(h);
    fp.blocks_per_csl.hash(h);
    hash_f64(h, fp.wordline_pitch.meters());
    hash_f64(h, fp.bitline_pitch.meters());
    hash_f64(h, fp.sa_stripe_width.meters());
    hash_f64(h, fp.lwd_stripe_width.meters());
    fp.horizontal_blocks.hash(h);
    fp.vertical_blocks.hash(h);
    // BTreeMap iterates in key order: deterministic.
    for (name, size) in &fp.horizontal_sizes {
        name.hash(h);
        hash_f64(h, size.meters());
    }
    for (name, size) in &fp.vertical_sizes {
        name.hash(h);
        hash_f64(h, size.meters());
    }
}

fn hash_signaling<H: Hasher>(h: &mut H, sig: &SignalingFloorplan) {
    h.write_usize(sig.signals.len());
    for s in &sig.signals {
        s.name.hash(h);
        s.class.hash(h);
        match s.wires {
            WireCount::Explicit(n) => (0u8, n).hash(h),
            WireCount::PerIo => 1u8.hash(h),
            WireCount::RowAddressBits => 2u8.hash(h),
            WireCount::ColumnAddressBits => 3u8.hash(h),
            WireCount::BankAddressBits => 4u8.hash(h),
            WireCount::ControlSignals => 5u8.hash(h),
            WireCount::ClockWires => 6u8.hash(h),
        }
        hash_f64(h, s.toggle_rate);
        h.write_usize(s.segments.len());
        for seg in &s.segments {
            match seg {
                SegmentSpec::Between { from, to, buffer } => {
                    0u8.hash(h);
                    from.hash(h);
                    to.hash(h);
                    h.write_u8(u8::from(buffer.is_some()));
                    if let Some(b) = buffer {
                        hash_f64(h, b.nmos_width.meters());
                        hash_f64(h, b.pmos_width.meters());
                    }
                }
                SegmentSpec::Inside {
                    at,
                    fraction,
                    dir,
                    buffer,
                    mux,
                } => {
                    1u8.hash(h);
                    at.hash(h);
                    hash_f64(h, *fraction);
                    dir.hash(h);
                    h.write_u8(u8::from(buffer.is_some()));
                    if let Some(b) = buffer {
                        hash_f64(h, b.nmos_width.meters());
                        hash_f64(h, b.pmos_width.meters());
                    }
                    mux.hash(h);
                }
            }
        }
    }
}

fn hash_technology<H: Hasher>(h: &mut H, t: &Technology) {
    for v in [
        t.tox_logic.meters(),
        t.tox_high_voltage.meters(),
        t.tox_cell.meters(),
        t.lmin_logic.meters(),
        t.junction_cap_logic.farads_per_meter(),
        t.lmin_high_voltage.meters(),
        t.junction_cap_high_voltage.farads_per_meter(),
        t.cell_access_length.meters(),
        t.cell_access_width.meters(),
        t.bitline_cap.farads(),
        t.cell_cap.farads(),
        t.bl_to_wl_cap_share,
        t.c_wire_mwl.farads_per_meter(),
        t.mwl_predecode_ratio,
        t.mwl_decoder_nmos_width.meters(),
        t.mwl_decoder_pmos_width.meters(),
        t.mwl_decoder_switching,
        t.wl_controller_nmos_width.meters(),
        t.wl_controller_pmos_width.meters(),
        t.swd_nmos_width.meters(),
        t.swd_pmos_width.meters(),
        t.swd_restore_nmos_width.meters(),
        t.c_wire_lwl.farads_per_meter(),
        t.c_wire_signal.farads_per_meter(),
    ] {
        hash_f64(h, v);
    }
    t.bits_per_csl_per_subarray.hash(h);
    for d in [
        t.sa_nmos_sense,
        t.sa_pmos_sense,
        t.sa_equalize,
        t.sa_bit_switch,
        t.sa_bitline_mux,
        t.sa_nset,
        t.sa_pset,
    ] {
        hash_f64(h, d.width.meters());
        hash_f64(h, d.length.meters());
    }
}

fn hash_electrical<H: Hasher>(h: &mut H, e: &Electrical) {
    for v in [
        e.vdd.volts(),
        e.vint.volts(),
        e.vbl.volts(),
        e.vpp.volts(),
        e.eff_vint,
        e.eff_vbl,
        e.eff_vpp,
        e.constant_current.amperes(),
    ] {
        hash_f64(h, v);
    }
}

fn hash_spec<H: Hasher>(h: &mut H, s: &Specification) {
    s.io_width.hash(h);
    hash_f64(h, s.datarate_per_pin.bits_per_second());
    s.clock_wires.hash(h);
    hash_f64(h, s.data_clock.hertz());
    hash_f64(h, s.control_clock.hertz());
    s.bank_address_bits.hash(h);
    s.row_address_bits.hash(h);
    s.column_address_bits.hash(h);
    s.control_signals.hash(h);
    s.prefetch.hash(h);
    s.burst_length.hash(h);
}

fn hash_timing<H: Hasher>(h: &mut H, t: &Timing) {
    for v in [
        t.trc.seconds(),
        t.tras.seconds(),
        t.trp.seconds(),
        t.trcd.seconds(),
        t.trrd.seconds(),
        t.tfaw.seconds(),
        t.trfc.seconds(),
        t.trefi.seconds(),
    ] {
        hash_f64(h, v);
    }
    t.tccd_cycles.hash(h);
}

fn hash_logic_block<H: Hasher>(h: &mut H, b: &LogicBlock) {
    b.name.hash(h);
    b.gates.hash(h);
    hash_f64(h, b.avg_nmos_width.meters());
    hash_f64(h, b.avg_pmos_width.meters());
    hash_f64(h, b.transistors_per_gate);
    hash_f64(h, b.gate_density);
    hash_f64(h, b.wiring_density);
    let ActiveDuring {
        always,
        activate,
        precharge,
        read,
        write,
    } = b.active_during;
    (always, activate, precharge, read, write).hash(h);
    hash_f64(h, b.toggle_rate);
}

/// A [`Hasher`] with a pinned algorithm (64-bit FNV-1a) and pinned
/// integer encodings (fixed-width little-endian; `usize`/`isize` widened
/// to 64 bits). Unlike [`DefaultHasher`], whose keys are only guaranteed
/// stable within one process, `StableHasher` produces the same digest
/// for the same byte stream in every process, on every platform — the
/// property [`content_key`] needs so a router and its backend pool agree
/// on ring placement without exchanging hashes.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl StableHasher {
    /// FNV-1a offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher(Self::OFFSET)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    // usize/isize are widened to 64 bits so 32- and 64-bit builds hash
    // identically.
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as u64);
    }
}

/// Walks every field of a description into `h`, floats by bit pattern.
fn hash_description<H: Hasher>(h: &mut H, desc: &DramDescription) {
    desc.name.hash(h);
    hash_floorplan(h, &desc.floorplan);
    hash_signaling(h, &desc.signaling);
    hash_technology(h, &desc.technology);
    hash_electrical(h, &desc.electrical);
    hash_spec(h, &desc.spec);
    hash_timing(h, &desc.timing);
    h.write_usize(desc.logic_blocks.len());
    for b in &desc.logic_blocks {
        hash_logic_block(h, b);
    }
}

/// The description's *content key*: a cross-process-stable 64-bit digest
/// over every field, with floats hashed by bit pattern. Two descriptions
/// that compare equal key equal; the converse is enforced by structural
/// comparison at cache-lookup time.
///
/// This is the shard-routing key: `dram-route` hashes it onto the
/// consistent-hash ring and [`ModelCache`] buckets by it, so a given
/// device always lands on the node whose model cache is hot for it. The
/// algorithm (FNV-1a via [`StableHasher`], fixed field walk) is part of
/// the on-the-wire contract — a silent change re-maps every ring slice —
/// and is pinned by a golden-value test.
#[must_use]
pub fn content_key(desc: &DramDescription) -> u64 {
    let mut h = StableHasher::new();
    hash_description(&mut h, desc);
    h.finish()
}

/// Content hash over every field of a description, with floats hashed by
/// bit pattern. Two descriptions that compare equal hash equal; the
/// converse is enforced by structural comparison at lookup time.
///
/// Since the router tier landed this is simply [`content_key`] — the
/// cache and the shard ring must agree on keying, so both use the same
/// stable digest (a `DefaultHasher` key would differ across processes
/// and defeat cache affinity).
#[must_use]
pub fn content_hash(desc: &DramDescription) -> u64 {
    content_key(desc)
}

/// Hit/miss counters of a [`ModelCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a model.
    pub misses: u64,
}

/// A point-in-time view of an [`EvalEngine`], cheap to take on a shared
/// (e.g. [`EvalEngine::global`]) instance.
///
/// This is the shape a metrics endpoint wants: counters plus sizing, no
/// references into the engine, safe to serialize after the lock is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineSnapshot {
    /// Lookups served from the model cache.
    pub hits: u64,
    /// Lookups that had to build a model.
    pub misses: u64,
    /// Models currently held by the cache.
    pub entries: usize,
    /// Configured worker-thread count.
    pub threads: usize,
    /// Lookups answered from the negative (known-bad) cache.
    pub error_hits: u64,
    /// Known-bad descriptions currently memoized.
    pub error_entries: usize,
}

impl EngineSnapshot {
    /// Cache hit rate in `[0, 1]`; `0` before any lookup.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One hash bucket: every cached description whose content hash collides.
type Bucket = Vec<(DramDescription, Arc<Dram>)>;

/// Capacity of the negative cache: enough to absorb a retry storm of
/// known-bad descriptions, small enough that a hostile client cycling
/// unique bad inputs cannot grow memory without bound.
const ERROR_CACHE_CAP: usize = 256;

/// Bounded FIFO of validation failures, keyed like the positive cache
/// (content hash, collision-checked structurally). Only *validation*
/// errors land here — a panic caught around an evaluation is transient
/// by definition and must not be memoized.
#[derive(Debug, Default)]
struct ErrorCache {
    buckets: HashMap<u64, Vec<(DramDescription, ModelError)>>,
    /// Insertion order of keys, one entry per cached error, for FIFO
    /// eviction at [`ERROR_CACHE_CAP`].
    order: VecDeque<u64>,
}

impl ErrorCache {
    fn lookup(&self, key: u64, desc: &DramDescription) -> Option<ModelError> {
        self.buckets
            .get(&key)?
            .iter()
            .find(|(d, _)| d == desc)
            .map(|(_, e)| e.clone())
    }

    fn remember(&mut self, key: u64, desc: &DramDescription, err: &ModelError) {
        let bucket = self.buckets.entry(key).or_default();
        if bucket.iter().any(|(d, _)| d == desc) {
            return;
        }
        bucket.push((desc.clone(), err.clone()));
        self.order.push_back(key);
        while self.order.len() > ERROR_CACHE_CAP {
            let evict = self.order.pop_front().expect("order non-empty");
            if let Some(bucket) = self.buckets.get_mut(&evict) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                }
                if bucket.is_empty() {
                    self.buckets.remove(&evict);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.order.len()
    }
}

/// A memoizing store of built models keyed by description content.
///
/// Thread-safe; lookups hold the lock only for the bucket scan, model
/// construction runs outside it so concurrent builders do not serialize.
/// Validation failures are memoized too, in a bounded negative cache, so
/// a client retrying a known-bad description fails fast instead of
/// re-running validation each time.
///
/// Locks are poison-tolerant: request handling upstream catches panics,
/// so a panic unwinding past a lock holder must not turn every later
/// cache access into a second panic.
#[derive(Debug, Default)]
pub struct ModelCache {
    buckets: Mutex<HashMap<u64, Bucket>>,
    errors: Mutex<ErrorCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    error_hits: AtomicU64,
}

impl ModelCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached model for `desc`, building and inserting it on
    /// first sight.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the description fails validation.
    pub fn get_or_build(&self, desc: &DramDescription) -> Result<Arc<Dram>, ModelError> {
        self.get_or_build_traced(desc).map(|(model, _)| model)
    }

    /// Like [`ModelCache::get_or_build`], but also reports whether the
    /// lookup was a cache hit (`true`) or had to build (`false`).
    ///
    /// This is the per-call hook a serving front end needs to attribute
    /// cache activity to individual requests — the aggregate
    /// [`ModelCache::stats`] counters cannot distinguish concurrent
    /// callers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the description fails validation.
    pub fn get_or_build_traced(
        &self,
        desc: &DramDescription,
    ) -> Result<(Arc<Dram>, bool), ModelError> {
        let key = content_hash(desc);
        let cached = {
            let _s = dram_obs::span("engine.cache_lookup");
            self.lookup(key, desc)
        };
        if let Some(hit) = cached {
            self.hits.fetch_add(1, Ordering::Relaxed);
            dram_obs::journal::note(dram_obs::journal::EventKind::CacheHit, 0);
            return Ok((hit, true));
        }
        let known_bad = self
            .errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .lookup(key, desc);
        if let Some(err) = known_bad {
            self.error_hits.fetch_add(1, Ordering::Relaxed);
            return Err(err);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        dram_obs::journal::note(dram_obs::journal::EventKind::CacheMiss, 0);
        // Fault site outside every lock: an injected build panic unwinds
        // without poisoning either cache map.
        dram_faults::trip("engine.build");
        let built = match Dram::new(desc.clone()) {
            Ok(model) => Arc::new(model),
            Err(err) => {
                self.errors
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remember(key, desc, &err);
                return Err(err);
            }
        };
        let mut buckets = self.buckets.lock().unwrap_or_else(PoisonError::into_inner);
        let bucket = buckets.entry(key).or_default();
        // A concurrent builder may have won the race; keep its model so
        // every caller shares one allocation. This call still built a
        // model, so it reports a miss either way.
        if let Some((_, existing)) = bucket.iter().find(|(d, _)| d == desc) {
            return Ok((Arc::clone(existing), false));
        }
        bucket.push((desc.clone(), Arc::clone(&built)));
        Ok((built, false))
    }

    fn lookup(&self, key: u64, desc: &DramDescription) -> Option<Arc<Dram>> {
        let buckets = self.buckets.lock().unwrap_or_else(PoisonError::into_inner);
        buckets
            .get(&key)?
            .iter()
            .find(|(d, _)| d == desc)
            .map(|(_, m)| Arc::clone(m))
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Lookups answered from the negative cache (fail-fast rejections of
    /// descriptions already known bad).
    #[must_use]
    pub fn error_hits(&self) -> u64 {
        self.error_hits.load(Ordering::Relaxed)
    }

    /// Known-bad descriptions currently memoized.
    #[must_use]
    pub fn error_len(&self) -> usize {
        self.errors
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Drops every cached model and memoized error and resets the
    /// counters.
    pub fn clear(&self) {
        self.buckets
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        *self.errors.lock().unwrap_or_else(PoisonError::into_inner) = ErrorCache::default();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.error_hits.store(0, Ordering::Relaxed);
    }

    /// Number of cached models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A batch-evaluation engine: worker pool plus model cache.
///
/// Construct once, share by reference. The thread count defaults to the
/// machine's available parallelism; [`EvalEngine::threads`] overrides it
/// and `threads(1)` selects the plain serial loop (no pool, no queue).
#[derive(Debug)]
pub struct EvalEngine {
    threads: usize,
    cache: ModelCache,
}

impl Default for EvalEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalEngine {
    /// An engine sized to the machine's available parallelism.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        Self {
            threads,
            cache: ModelCache::new(),
        }
    }

    /// Overrides the worker count. `1` selects the serial path; values
    /// above the input length are clamped per call.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// The engine's model cache.
    #[must_use]
    pub fn cache(&self) -> &ModelCache {
        &self.cache
    }

    /// Hit/miss counters of the model cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// A point-in-time snapshot of the engine: cache counters, cache
    /// size and thread count. Works on any shared reference, so the
    /// process-wide [`EvalEngine::global`] instance can feed a metrics
    /// endpoint without owning the engine.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot {
        let stats = self.cache.stats();
        EngineSnapshot {
            hits: stats.hits,
            misses: stats.misses,
            entries: self.cache.len(),
            threads: self.threads,
            error_hits: self.cache.error_hits(),
            error_entries: self.cache.error_len(),
        }
    }

    /// Builds (or fetches) the model for one description.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the description fails validation.
    pub fn model(&self, desc: &DramDescription) -> Result<Arc<Dram>, ModelError> {
        self.cache.get_or_build(desc)
    }

    /// Like [`EvalEngine::model`], but also reports whether the model
    /// came from the cache (`true`) or was built by this call (`false`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the description fails validation.
    pub fn model_traced(
        &self,
        desc: &DramDescription,
    ) -> Result<(Arc<Dram>, bool), ModelError> {
        self.cache.get_or_build_traced(desc)
    }

    /// Builds models for a batch of descriptions, in parallel, memoized.
    ///
    /// `out[i]` is the model for `descs[i]`; order is the input order
    /// regardless of thread count. Duplicate descriptions share one
    /// cached model.
    ///
    /// A panic while evaluating one item is isolated to that item: it
    /// becomes [`ModelError::Panicked`] in that slot, the rest of the
    /// batch completes normally. (The lower-level [`EvalEngine::map`]
    /// keeps the propagate-panics contract for library callers.)
    pub fn evaluate_many(
        &self,
        descs: &[DramDescription],
    ) -> Vec<Result<Arc<Dram>, ModelError>> {
        let _s = dram_obs::span("engine.evaluate_many").arg("items", descs.len());
        self.map(descs, |d| {
            isolate(|| {
                dram_faults::trip("engine.worker");
                self.cache.get_or_build(d)
            })
        })
    }

    /// [`EvalEngine::evaluate_many`] with per-item cache-hit reporting:
    /// `out[i]` carries the model for `descs[i]` plus whether it was a
    /// cache hit, in input order regardless of thread count. Panics are
    /// isolated per item exactly like [`EvalEngine::evaluate_many`].
    pub fn evaluate_many_traced(
        &self,
        descs: &[DramDescription],
    ) -> Vec<Result<(Arc<Dram>, bool), ModelError>> {
        let _s = dram_obs::span("engine.evaluate_many").arg("items", descs.len());
        self.map(descs, |d| {
            isolate(|| {
                dram_faults::trip("engine.worker");
                self.cache.get_or_build_traced(d)
            })
        })
    }

    /// Evaluates the mixed-workload power of a batch of perturbed
    /// descriptions via differential rebuilds — the sweep fast path.
    ///
    /// The base model is built (or fetched) through the cache once; each
    /// perturbation then re-runs only the build phases its
    /// [`Perturbation::dirty_set`] marks dirty, on the struct-of-arrays
    /// charge kernel ([`ChargeBatch`]), with no per-item description
    /// hashing, ledger allocation or cache traffic. Every `out[i]` is
    /// bit-identical to
    /// `Dram::new(perturbed_desc)?.mixed_workload_power()` — phases re-run
    /// with the same arithmetic in the same order — and input order is
    /// preserved regardless of thread count.
    ///
    /// Per-item failures (validation of an over-perturbed description,
    /// a worker panic) land in that item's slot; the batch completes.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the *base* description fails to build.
    pub fn evaluate_perturbations(
        &self,
        base: &DramDescription,
        perts: &[Perturbation],
    ) -> Result<Vec<Result<PowerSummary, ModelError>>, ModelError> {
        let _s = dram_obs::span("engine.evaluate_perturbations").arg("items", perts.len());
        let base_model = self.cache.get_or_build(base)?;
        // The mixed workload is built from spec and timing, which no
        // ParamId edits; the command sequence and loop rate are shared by
        // the whole batch.
        let pattern = base_model.mixed_workload();
        let commands: Vec<Command> = pattern.commands().iter().map(|c| c.command).collect();
        let f = base.spec.control_clock;
        let loop_time = pattern.loop_cycles() as f64 / f.hertz();
        let rate = Seconds::new(loop_time).to_hertz();
        let base_batch = ChargeBatch::from_model(&ChargeModel::new(
            base_model.description(),
            base_model.geometry(),
        ));

        thread_local! {
            static SCRATCH: RefCell<Option<(DramDescription, ChargeBatch)>> =
                const { RefCell::new(None) };
        }

        Ok(self.map(perts, |pert| {
            isolate(|| {
                dram_faults::trip("engine.worker");
                SCRATCH.with(|cell| {
                    let mut slot = cell.borrow_mut();
                    let (desc, batch) = slot
                        .get_or_insert_with(|| (base.clone(), ChargeBatch::default()));
                    let _span =
                        dram_obs::span("model.rebuild").arg("edits", pert.edits().len());
                    crate::model::model_rebuilds_total().inc();
                    desc.clone_from(base);
                    pert.apply(desc);
                    let dirty = pert.dirty_set();
                    crate::model::validate(desc)?;
                    let geometry_dirty = dirty.contains(BuildPhase::Geometry);
                    let owned_geom;
                    let geom = if geometry_dirty {
                        owned_geom = Geometry::new(desc)?;
                        &owned_geom
                    } else {
                        base_model.geometry()
                    };
                    let charges_dirty = dirty.contains(BuildPhase::Devices)
                        || dirty.contains(BuildPhase::Charges);
                    let (ops, skipped) = if charges_dirty {
                        let m = ChargeModel::new(desc, geom);
                        batch.fill(&m);
                        (batch.op_externals(&desc.electrical), u64::from(!geometry_dirty))
                    } else {
                        // Geometry, devices and charges all clean: the
                        // base charge lanes re-convert at the new
                        // operating point.
                        (base_batch.op_externals(&desc.electrical), 3)
                    };
                    crate::model::rebuild_phases_skipped_total().add(skipped);
                    if skipped > 0 {
                        dram_obs::journal::note(
                            dram_obs::journal::EventKind::RebuildSkip,
                            skipped,
                        );
                    }
                    let command_energy: Joules = commands
                        .iter()
                        .map(|&c| match c {
                            Command::Activate => ops[0],
                            Command::Precharge => ops[1],
                            Command::Read => ops[2],
                            Command::Write => ops[3],
                            // Mixed workloads never schedule refresh, but
                            // price it like `Dram::refresh_command_energy`
                            // so the replay can never silently diverge.
                            Command::Refresh => {
                                (ops[0] + ops[1])
                                    * crate::lowpower::rows_per_refresh(
                                        u64::from(desc.spec.banks()) * desc.spec.rows_per_bank(),
                                    )
                            }
                            Command::Nop
                            | Command::PowerDownEnter
                            | Command::PowerDownExit
                            | Command::SelfRefreshEnter
                            | Command::SelfRefreshExit => Joules::ZERO,
                        })
                        .sum();
                    let e = &desc.electrical;
                    let background = ops[4] * f + static_power(e);
                    let power = background + command_energy * rate;
                    Ok(PowerSummary {
                        power,
                        current: power / e.vdd,
                        background,
                    })
                })
            })
        }))
    }

    /// Applies `f` to every item on the worker pool and returns results
    /// in input order.
    ///
    /// The reduction order is fixed per index — worker interleaving
    /// cannot reorder or regroup results, so for a pure `f` the output
    /// is bit-identical to `items.iter().map(f).collect()`.
    ///
    /// # Panics
    ///
    /// Re-raises any panic from `f` after all workers have stopped.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        let _s = dram_obs::span("engine.map")
            .arg("items", items.len())
            .arg("workers", workers.max(1));
        if workers <= 1 {
            return items.iter().map(f).collect();
        }

        // Chunked dynamic queue: fine-grained enough to balance uneven
        // item costs, coarse enough to keep the atomic off the hot path.
        let chunk = (items.len() / (workers * 8)).max(1);
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    // Named threads: a panic message or an obs thread
                    // attribution then identifies the failing worker.
                    std::thread::Builder::new()
                        .name(format!("engine-worker-{w}"))
                        .spawn_scoped(s, || {
                            let mut local = Vec::new();
                            loop {
                                let start = next.fetch_add(chunk, Ordering::Relaxed);
                                if start >= items.len() {
                                    break;
                                }
                                let end = (start + chunk).min(items.len());
                                for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                    local.push((i, f(item)));
                                }
                            }
                            local
                        })
                        .expect("spawn engine worker")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });

        // Deterministic reduction: place by original index.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None)
            .take(items.len())
            .collect();
        for (i, r) in parts.into_iter().flatten() {
            debug_assert!(slots[i].is_none(), "index {i} computed twice");
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    }

    /// A process-wide shared engine (default thread count).
    ///
    /// Free functions like `dram_sensitivity::sweep` route through this
    /// so repeated analyses in one process share the model cache. Code
    /// that needs an explicit thread count builds its own engine and
    /// calls the `*_with` variants.
    #[must_use]
    pub fn global() -> &'static EvalEngine {
        static GLOBAL: OnceLock<EvalEngine> = OnceLock::new();
        GLOBAL.get_or_init(EvalEngine::new)
    }
}

/// Runs `f`, converting a panic into [`ModelError::Panicked`] instead of
/// unwinding. `AssertUnwindSafe` is sound here because the only shared
/// state `f` touches is the model cache, whose locks are poison-tolerant
/// and whose fault trip sits outside them.
fn isolate<T>(
    f: impl FnOnce() -> Result<T, ModelError>,
) -> Result<T, ModelError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(ModelError::Panicked {
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    #[test]
    fn map_is_bit_identical_across_thread_counts() {
        let items: Vec<u64> = (0..100).collect();
        let f = |x: &u64| (*x as f64).sqrt().sin().to_bits();
        let serial = EvalEngine::new().threads(1).map(&items, f);
        for n in [2, 3, 4, 7, 128] {
            let parallel = EvalEngine::new().threads(n).map(&items, f);
            assert_eq!(serial, parallel, "threads={n}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        let engine = EvalEngine::new().threads(4);
        assert_eq!(engine.map(&[] as &[u32], |x| *x), Vec::<u32>::new());
        assert_eq!(engine.map(&[5u32], |x| x * 2), vec![10]);
        let big: Vec<usize> = (0..1000).collect();
        assert_eq!(engine.map(&big, |x| x + 1), (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn map_propagates_panics() {
        let engine = EvalEngine::new().threads(2);
        let items: Vec<u32> = (0..10).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.map(&items, |x| {
                assert!(*x != 7, "boom");
                *x
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cache_returns_shared_model_and_counts() {
        let cache = ModelCache::new();
        let desc = ddr3_1g_x16_55nm();
        let a = cache.get_or_build(&desc).expect("builds");
        let b = cache.get_or_build(&desc).expect("hits");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn second_evaluate_many_does_zero_rebuilds() {
        let engine = EvalEngine::new().threads(4);
        let mut descs = Vec::new();
        for i in 0..8 {
            let mut d = ddr3_1g_x16_55nm();
            d.technology.bitline_cap = d.technology.bitline_cap * (1.0 + 0.01 * i as f64);
            descs.push(d);
        }
        let first = engine.evaluate_many(&descs);
        assert!(first.iter().all(Result::is_ok));
        let misses_after_first = engine.cache_stats().misses;
        assert_eq!(misses_after_first, 8);
        let second = engine.evaluate_many(&descs);
        assert!(second.iter().all(Result::is_ok));
        assert_eq!(engine.cache_stats().misses, misses_after_first);
        assert_eq!(engine.cache_stats().hits, 8);
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(a.as_ref().unwrap(), b.as_ref().unwrap()));
        }
    }

    #[test]
    fn evaluate_many_preserves_order_and_errors() {
        let good = ddr3_1g_x16_55nm();
        let mut bad = ddr3_1g_x16_55nm();
        bad.spec.bank_address_bits = 5; // 32 banks: floorplan grid mismatch
        let engine = EvalEngine::new().threads(3);
        let out = engine.evaluate_many(&[good.clone(), bad, good]);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
        assert!(out[2].is_ok());
        assert!(Arc::ptr_eq(out[0].as_ref().unwrap(), out[2].as_ref().unwrap()));
    }

    #[test]
    fn content_hash_tracks_field_changes() {
        let base = ddr3_1g_x16_55nm();
        let h0 = content_hash(&base);
        assert_eq!(h0, content_hash(&base.clone()), "hash is deterministic");

        let mut d = base.clone();
        d.technology.bitline_cap = d.technology.bitline_cap * 1.0001;
        assert_ne!(h0, content_hash(&d), "technology float");

        let mut d = base.clone();
        d.electrical.vdd = d.electrical.vdd * 1.0001;
        assert_ne!(h0, content_hash(&d), "electrical float");

        let mut d = base.clone();
        d.timing.trc = d.timing.trc * 1.0001;
        assert_ne!(h0, content_hash(&d), "timing float");

        let mut d = base.clone();
        d.spec.prefetch = 4;
        assert_ne!(h0, content_hash(&d), "spec integer");

        let mut d = base.clone();
        d.floorplan.bits_per_bitline *= 2;
        assert_ne!(h0, content_hash(&d), "floorplan integer");

        let mut d = base.clone();
        d.name.push('!');
        assert_ne!(h0, content_hash(&d), "name");

        let mut d = base.clone();
        if let Some(sig) = d.signaling.signals.first_mut() {
            sig.toggle_rate *= 1.0001;
        }
        assert_ne!(h0, content_hash(&d), "signaling float");

        let mut d = base.clone();
        if let Some(block) = d.logic_blocks.first_mut() {
            block.gates += 1;
        }
        assert_ne!(h0, content_hash(&d), "logic block");
    }

    /// The content key is the shard-routing contract: `dram-route`
    /// places it on the consistent-hash ring, so a change to the
    /// algorithm or the field walk silently re-maps every node's cache
    /// slice. This golden value pins it; update it only with a deliberate
    /// ring-migration story (see docs/SHARDING.md).
    #[test]
    fn content_key_is_stable_across_refactors() {
        let key = content_key(&ddr3_1g_x16_55nm());
        assert_eq!(
            key, 0xc7ae_0617_96b3_bb24,
            "content_key for the ddr3_1g_x16_55nm reference changed: \
             this re-maps the whole shard ring (got {key:#018x})"
        );
        // The cache and the router must key identically, or routed
        // requests would warm the wrong node's cache.
        assert_eq!(key, content_hash(&ddr3_1g_x16_55nm()));
    }

    /// `StableHasher` must encode every integer width deterministically
    /// and identically across usize widths (usize/isize widen to 64).
    #[test]
    fn stable_hasher_is_deterministic_and_width_stable() {
        let digest = |f: &dyn Fn(&mut StableHasher)| {
            let mut h = StableHasher::new();
            f(&mut h);
            h.finish()
        };
        assert_eq!(
            digest(&|h| h.write(b"abc")),
            digest(&|h| {
                h.write_u8(b'a');
                h.write_u8(b'b');
                h.write_u8(b'c');
            }),
        );
        assert_eq!(
            digest(&|h| h.write_usize(7)),
            digest(&|h| h.write_u64(7)),
        );
        assert_eq!(
            digest(&|h| h.write_isize(-1)),
            digest(&|h| h.write_u64(u64::MAX)),
        );
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn traced_lookups_report_per_call_hits() {
        let engine = EvalEngine::new().threads(2);
        let desc = ddr3_1g_x16_55nm();
        let (first, hit) = engine.model_traced(&desc).expect("builds");
        assert!(!hit, "first sight must build");
        let (second, hit) = engine.model_traced(&desc).expect("cached");
        assert!(hit, "second lookup must hit");
        assert!(Arc::ptr_eq(&first, &second));

        let mut other = ddr3_1g_x16_55nm();
        other.technology.bitline_cap = other.technology.bitline_cap * 1.5;
        let out = engine.evaluate_many_traced(&[desc.clone(), other, desc]);
        let flags: Vec<bool> = out.iter().map(|r| r.as_ref().unwrap().1).collect();
        // desc was already cached; `other` is new; the second desc entry
        // hits whichever call cached it first.
        assert!(flags[0]);
        assert!(!flags[1]);
        assert!(flags[2]);
        // The traced and untraced paths share one set of counters.
        let stats = engine.cache_stats();
        assert_eq!(stats, CacheStats { hits: 3, misses: 2 });
    }

    #[test]
    fn known_bad_descriptions_fail_fast_from_the_negative_cache() {
        let cache = ModelCache::new();
        let mut bad = ddr3_1g_x16_55nm();
        bad.spec.bank_address_bits = 5; // floorplan grid mismatch
        let first = cache.get_or_build(&bad).expect_err("invalid");
        assert_eq!(cache.stats().misses, 1, "first sight runs validation");
        assert_eq!(cache.error_len(), 1);
        let second = cache.get_or_build(&bad).expect_err("still invalid");
        assert_eq!(first, second, "memoized error is the original error");
        assert_eq!(cache.stats().misses, 1, "no second validation run");
        assert_eq!(cache.error_hits(), 1);
        // Good descriptions are unaffected by the negative entries.
        assert!(cache.get_or_build(&ddr3_1g_x16_55nm()).is_ok());
        cache.clear();
        assert_eq!(cache.error_len(), 0);
        assert_eq!(cache.error_hits(), 0);
    }

    #[test]
    fn negative_cache_is_bounded_fifo() {
        let cache = ModelCache::new();
        // ERROR_CACHE_CAP + 1 distinct bad descriptions: the oldest must
        // be evicted, everything else stays memoized.
        let mut bads = Vec::new();
        for i in 0..=ERROR_CACHE_CAP {
            let mut bad = ddr3_1g_x16_55nm();
            bad.spec.bank_address_bits = 5;
            bad.name = format!("bad-{i}");
            assert!(cache.get_or_build(&bad).is_err());
            bads.push(bad);
        }
        assert_eq!(cache.error_len(), ERROR_CACHE_CAP);
        let misses = cache.stats().misses;
        // A survivor is served from the cache; the evicted (oldest)
        // entry revalidates (and re-enters, evicting the next-oldest).
        assert!(cache.get_or_build(&bads[1]).is_err());
        assert_eq!(cache.stats().misses, misses, "survivor served from cache");
        assert!(cache.get_or_build(&bads[0]).is_err());
        assert_eq!(cache.stats().misses, misses + 1, "evicted entry rebuilt");
    }

    #[test]
    fn evaluate_perturbations_matches_full_rebuild_bitwise() {
        let base = ddr3_1g_x16_55nm();
        let engine = EvalEngine::new().threads(1);
        let perts: Vec<Perturbation> = crate::perturb::ParamId::ALL
            .iter()
            .flat_map(|&p| [Perturbation::single(p, 1.2), Perturbation::single(p, 0.8)])
            .collect();
        let fast = engine
            .evaluate_perturbations(&base, &perts)
            .expect("base builds");
        for (pert, got) in perts.iter().zip(&fast) {
            let mut desc = base.clone();
            pert.apply(&mut desc);
            let want = Dram::new(desc).expect("perturbed builds").mixed_workload_power();
            let got = got.as_ref().expect("fast path builds");
            assert_eq!(
                got.power.watts().to_bits(),
                want.power.watts().to_bits(),
                "power differs for {:?}",
                pert.edits()
            );
            assert_eq!(got.current.amperes().to_bits(), want.current.amperes().to_bits());
            assert_eq!(
                got.background.watts().to_bits(),
                want.background.watts().to_bits()
            );
        }
    }

    #[test]
    fn evaluate_perturbations_is_bit_identical_across_thread_counts() {
        let base = ddr3_1g_x16_55nm();
        let perts: Vec<Perturbation> = crate::perturb::ParamId::ALL
            .iter()
            .map(|&p| Perturbation::single(p, 1.1))
            .collect();
        let serial = EvalEngine::new()
            .threads(1)
            .evaluate_perturbations(&base, &perts)
            .expect("base builds");
        let parallel = EvalEngine::new()
            .threads(8)
            .evaluate_perturbations(&base, &perts)
            .expect("base builds");
        for (a, b) in serial.iter().zip(&parallel) {
            let (a, b) = (a.as_ref().expect("ok"), b.as_ref().expect("ok"));
            assert_eq!(a.power.watts().to_bits(), b.power.watts().to_bits());
            assert_eq!(a.current.amperes().to_bits(), b.current.amperes().to_bits());
            assert_eq!(a.background.watts().to_bits(), b.background.watts().to_bits());
        }
    }

    #[test]
    fn evaluate_perturbations_isolates_invalid_items() {
        let base = ddr3_1g_x16_55nm();
        let engine = EvalEngine::new();
        // Collapsing Vpp below Vbl invalidates the description; the bad
        // item errors, its neighbors still evaluate.
        let perts = vec![
            Perturbation::single(crate::perturb::ParamId::Vint, 1.1),
            Perturbation::single(crate::perturb::ParamId::Vpp, 0.3),
            Perturbation::single(crate::perturb::ParamId::Vbl, 0.9),
        ];
        let out = engine
            .evaluate_perturbations(&base, &perts)
            .expect("base builds");
        assert!(out[0].is_ok());
        assert!(out[1].is_err(), "over-perturbed Vpp must fail validation");
        assert!(out[2].is_ok());
    }

    #[test]
    fn evaluate_perturbations_increments_rebuild_counters() {
        let base = ddr3_1g_x16_55nm();
        let engine = EvalEngine::new().threads(1);
        let rebuilds_before = crate::model::model_rebuilds_total().get();
        let skipped_before = crate::model::rebuild_phases_skipped_total().get();
        let perts = vec![
            Perturbation::single(crate::perturb::ParamId::Vdd, 1.1), // power-only: 3 skips
            Perturbation::single(crate::perturb::ParamId::BitlineCap, 1.1), // charges: 1 skip
        ];
        engine
            .evaluate_perturbations(&base, &perts)
            .expect("base builds");
        assert_eq!(crate::model::model_rebuilds_total().get() - rebuilds_before, 2);
        assert_eq!(
            crate::model::rebuild_phases_skipped_total().get() - skipped_before,
            4
        );
    }

    #[test]
    fn evaluate_many_isolates_panics_per_item() {
        // Panic on one item via the public API: a description that
        // panics is not constructible from safe inputs, so go through
        // `map`'s contract counterpart directly — evaluate_many wraps
        // the same closure in `isolate`. Exercise `isolate` here.
        let out: Result<(), ModelError> = super::isolate(|| panic!("boom {}", 7));
        match out {
            Err(ModelError::Panicked { message }) => {
                assert!(message.contains("boom 7"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // Display form used by the server's JSON error bodies.
        let err = ModelError::Panicked { message: "boom".into() };
        assert_eq!(err.to_string(), "evaluation panicked: boom");
    }

    #[test]
    fn map_workers_are_named() {
        let engine = EvalEngine::new().threads(2);
        let items: Vec<u32> = (0..32).collect();
        let names = engine.map(&items, |_| {
            std::thread::current().name().map(ToString::to_string)
        });
        for name in names.into_iter().flatten() {
            assert!(name.starts_with("engine-worker-"), "{name}");
        }
    }

    #[test]
    fn global_engine_is_shared() {
        let a = EvalEngine::global();
        let b = EvalEngine::global();
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn snapshot_reflects_cache_and_threads() {
        let engine = EvalEngine::new().threads(3);
        let empty = engine.snapshot();
        assert_eq!(
            empty,
            EngineSnapshot {
                hits: 0,
                misses: 0,
                entries: 0,
                threads: 3,
                error_hits: 0,
                error_entries: 0,
            }
        );
        assert_eq!(empty.hit_rate(), 0.0);

        let desc = ddr3_1g_x16_55nm();
        engine.model(&desc).expect("builds");
        engine.model(&desc).expect("hits");
        let snap = engine.snapshot();
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.entries, 1);
        assert_eq!(snap.threads, 3);
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
    }
}
