//! Low-power states: power-down and self-refresh.
//!
//! The §V systems work the paper discusses (Hur & Lin's power-down
//! scheduling \[11\], Zheng et al.'s mini-rank \[14\]) trades performance
//! against time spent in the CKE-low states, so the model must price
//! them: with CKE low the clock tree stops, the command/address input
//! stage is gated, and only a small keeper fraction of the background
//! logic keeps toggling; in self-refresh the device additionally runs
//! its own distributed refresh out of the internal oscillator.

use dram_units::Watts;

use crate::model::{Dram, REFRESH_COMMANDS_PER_WINDOW};
use crate::power::static_power;

/// Share of the background (clock + always-on logic) switching power
/// that survives in a CKE-low power-down state: the internal oscillator
/// and keeper circuits.
pub const POWER_DOWN_ACTIVITY: f64 = 0.05;

/// Share of the constant current sink that survives in power-down
/// (references stay biased; DLL bias is gated).
pub const POWER_DOWN_STATIC_SHARE: f64 = 0.5;

/// Rows covered by one auto-refresh command when `total_rows` are spread
/// over the [`REFRESH_COMMANDS_PER_WINDOW`] commands of a refresh window.
#[must_use]
pub fn rows_per_refresh(total_rows: u64) -> f64 {
    (total_rows / REFRESH_COMMANDS_PER_WINDOW).max(1) as f64
}

/// Operating temperature range, which sets the required refresh rate
/// (retention halves in the extended range; the refresh-power lever Emma
/// et al. \[12\] exploit in the other direction by refreshing less often
/// when retention allows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TemperatureRange {
    /// Up to 85 °C: the datasheet tREFI.
    #[default]
    Normal,
    /// 85–95 °C: refresh interval halves (2x refresh power).
    Extended,
}

impl TemperatureRange {
    /// Multiplier on the refresh rate relative to the datasheet tREFI.
    #[must_use]
    pub fn refresh_rate_factor(self) -> f64 {
        match self {
            TemperatureRange::Normal => 1.0,
            TemperatureRange::Extended => 2.0,
        }
    }
}

/// A CKE-controlled device power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerState {
    /// CKE high, all banks precharged, clock running (IDD2N).
    PrechargedStandby,
    /// CKE high, at least one bank open (IDD3N; the model books no DC
    /// difference to IDD2N).
    ActiveStandby,
    /// CKE low with all banks precharged (IDD2P).
    PrechargePowerDown,
    /// CKE low with a bank open (IDD3P).
    ActivePowerDown,
    /// Self-refresh: CKE low, device refreshes itself (IDD6).
    SelfRefresh,
}

impl PowerState {
    /// All power states.
    pub const ALL: [PowerState; 5] = [
        PowerState::PrechargedStandby,
        PowerState::ActiveStandby,
        PowerState::PrechargePowerDown,
        PowerState::ActivePowerDown,
        PowerState::SelfRefresh,
    ];

    /// The datasheet current symbol measuring this state.
    #[must_use]
    pub fn idd_symbol(self) -> &'static str {
        match self {
            PowerState::PrechargedStandby => "IDD2N",
            PowerState::ActiveStandby => "IDD3N",
            PowerState::PrechargePowerDown => "IDD2P",
            PowerState::ActivePowerDown => "IDD3P",
            PowerState::SelfRefresh => "IDD6",
        }
    }
}

impl core::fmt::Display for PowerState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.idd_symbol())
    }
}

impl Dram {
    /// Average external power of a held power state.
    #[must_use]
    pub fn state_power(&self, state: PowerState) -> Watts {
        let e = &self.description().electrical;
        let switching = self.background_power() - static_power(e);
        match state {
            PowerState::PrechargedStandby | PowerState::ActiveStandby => self.background_power(),
            PowerState::PrechargePowerDown | PowerState::ActivePowerDown => {
                switching * POWER_DOWN_ACTIVITY + static_power(e) * POWER_DOWN_STATIC_SHARE
            }
            PowerState::SelfRefresh => {
                let pd =
                    switching * POWER_DOWN_ACTIVITY + static_power(e) * POWER_DOWN_STATIC_SHARE;
                pd + self.distributed_refresh_power()
            }
        }
    }

    /// External energy of one auto-refresh command: the activate +
    /// precharge of every row the command refreshes
    /// ([`rows_per_refresh`] of them). This is what a
    /// [`crate::Command::Refresh`] in a trace costs.
    #[must_use]
    pub fn refresh_command_energy(&self) -> dram_units::Joules {
        let spec = &self.description().spec;
        let act = self.operation_energy(crate::Operation::Activate).external();
        let pre = self
            .operation_energy(crate::Operation::Precharge)
            .external();
        (act + pre) * rows_per_refresh(u64::from(spec.banks()) * spec.rows_per_bank())
    }

    /// Average power of refreshing the whole device once per refresh
    /// window with refreshes spread at tREFI (the self-refresh and
    /// auto-refresh background cost).
    #[must_use]
    pub fn distributed_refresh_power(&self) -> Watts {
        let timing = &self.description().timing;
        self.refresh_command_energy() * timing.trefi.to_hertz()
    }

    /// Distributed refresh power at a temperature range, and with an
    /// optional retention-aware refresh-rate scaling (Emma et al. \[12\]:
    /// `rate_factor < 1` models refreshing less often where retention
    /// allows; `> 1` models extended-temperature operation).
    #[must_use]
    pub fn refresh_power_at(&self, temperature: TemperatureRange, rate_factor: f64) -> Watts {
        self.distributed_refresh_power()
            * (temperature.refresh_rate_factor() * rate_factor.max(0.0))
    }

    /// Energy saved by spending `fraction` of idle time in precharge
    /// power-down instead of precharged standby — the §V quantity a
    /// memory controller's power-down policy trades against the exit
    /// latency.
    #[must_use]
    pub fn power_down_saving(&self, fraction: f64) -> Watts {
        let standby = self.state_power(PowerState::PrechargedStandby);
        let down = self.state_power(PowerState::PrechargePowerDown);
        (standby - down) * fraction.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    fn model() -> Dram {
        Dram::new(ddr3_1g_x16_55nm()).expect("valid")
    }

    #[test]
    fn power_state_ordering_matches_datasheets() {
        let m = model();
        let p = |s| m.state_power(s).milliwatts();
        // IDD2P < IDD6 < IDD2N, and IDD3N = IDD2N in this model.
        assert!(p(PowerState::PrechargePowerDown) < p(PowerState::SelfRefresh));
        assert!(p(PowerState::SelfRefresh) < p(PowerState::PrechargedStandby));
        assert_eq!(
            p(PowerState::PrechargedStandby),
            p(PowerState::ActiveStandby)
        );
        assert_eq!(
            p(PowerState::PrechargePowerDown),
            p(PowerState::ActivePowerDown)
        );
    }

    #[test]
    fn power_down_saves_most_of_standby() {
        let m = model();
        let standby = m.state_power(PowerState::PrechargedStandby);
        let down = m.state_power(PowerState::PrechargePowerDown);
        let ratio = down.watts() / standby.watts();
        // Datasheets put IDD2P at roughly 10–30 % of IDD2N.
        assert!((0.03..0.4).contains(&ratio), "IDD2P/IDD2N = {ratio}");
    }

    #[test]
    fn self_refresh_includes_refresh_energy() {
        let m = model();
        let pd = m.state_power(PowerState::PrechargePowerDown);
        let sr = m.state_power(PowerState::SelfRefresh);
        let refresh = m.distributed_refresh_power();
        assert!((sr.watts() - pd.watts() - refresh.watts()).abs() < 1e-12);
        // Distributed refresh of a 1 Gb device: a few mW.
        let mw = refresh.milliwatts();
        assert!(mw > 0.3 && mw < 20.0, "refresh power {mw} mW");
    }

    #[test]
    fn power_down_saving_is_linear_and_clamped() {
        let m = model();
        let half = m.power_down_saving(0.5);
        let full = m.power_down_saving(1.0);
        assert!((full.watts() - 2.0 * half.watts()).abs() < 1e-12);
        assert_eq!(m.power_down_saving(2.0), full);
        assert_eq!(m.power_down_saving(-1.0), Watts::ZERO);
    }

    #[test]
    fn refresh_power_scales_with_temperature_and_rate() {
        let m = model();
        let normal = m.refresh_power_at(TemperatureRange::Normal, 1.0);
        let hot = m.refresh_power_at(TemperatureRange::Extended, 1.0);
        assert!((hot.watts() - 2.0 * normal.watts()).abs() < 1e-15);
        // Emma-style retention-aware refresh at a quarter of the rate.
        let relaxed = m.refresh_power_at(TemperatureRange::Normal, 0.25);
        assert!((relaxed.watts() - normal.watts() / 4.0).abs() < 1e-15);
        assert_eq!(
            m.refresh_power_at(TemperatureRange::Normal, -1.0).watts(),
            0.0
        );
    }

    #[test]
    fn symbols_are_the_datasheet_names() {
        assert_eq!(PowerState::SelfRefresh.to_string(), "IDD6");
        assert_eq!(PowerState::PrechargePowerDown.idd_symbol(), "IDD2P");
    }
}
