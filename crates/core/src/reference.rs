//! A complete, calibrated reference description: the paper's running
//! example of a 1 Gb DDR3 x16 device in a 55 nm technology (Fig. 1).
//!
//! This description doubles as documentation of every model input and as
//! the canonical fixture for the crate's tests. The technology-roadmap
//! crate generates descriptions for all other generations by scaling from
//! descriptions like this one.

use std::collections::BTreeMap;

use dram_units::{Amperes, BitsPerSecond, Farads, FaradsPerMeter, Hertz, Meters, Seconds, Volts};

use crate::params::{
    ActiveDuring, Axis, BitlineArchitecture, BlockCoord, BufferDevice, DeviceGeometry,
    DramDescription, Electrical, LogicBlock, PhysicalFloorplan, SegmentSpec, SignalClass,
    SignalSpec, SignalingFloorplan, Specification, Technology, Timing, WireCount,
};

/// The center-stripe block of the canonical floorplan (paper notation
/// `3_2`: middle column, middle row).
pub const CENTER: BlockCoord = BlockCoord { x: 3, y: 2 };

/// A representative column-logic block (under a middle-distance bank) used
/// as the endpoint of data/address runs; averaging over the four bank
/// columns gives about this distance.
pub const COLUMN_LOGIC: BlockCoord = BlockCoord { x: 4, y: 1 };

/// A representative row-logic block next to a far bank.
pub const ROW_LOGIC: BlockCoord = BlockCoord { x: 5, y: 0 };

/// Builds the canonical signaling floorplan of Fig. 1: write and read data
/// buses with a 1:8 (de)serializer at the center pads and re-drivers along
/// the way, address and control buses from the center stripe, and the
/// clock distribution.
#[must_use]
pub fn canonical_signaling() -> SignalingFloorplan {
    let big_buffer = BufferDevice {
        nmos_width: Meters::from_um(9.6),
        pmos_width: Meters::from_um(19.2),
    };
    let small_buffer = BufferDevice {
        nmos_width: Meters::from_um(4.8),
        pmos_width: Meters::from_um(9.6),
    };
    let data_segments = vec![
        // Serializer/deserializer and pad-local routing in the center
        // stripe (the paper's `DataW0 inside=0_2 fraction=25% dir=h
        // mux=1:8`, transplanted to the center block of our grid).
        SegmentSpec::Inside {
            at: CENTER,
            fraction: 0.25,
            dir: Axis::Horizontal,
            buffer: Some(big_buffer),
            mux: Some(8),
        },
        // Run along the center stripe and turn into the column logic of
        // the target bank (average distance over the four bank columns).
        SegmentSpec::Between {
            from: CENTER,
            to: COLUMN_LOGIC,
            buffer: Some(big_buffer),
        },
        // Distribution inside the column logic stripe to the master array
        // dataline heads.
        SegmentSpec::Inside {
            at: COLUMN_LOGIC,
            fraction: 0.5,
            dir: Axis::Horizontal,
            buffer: Some(small_buffer),
            mux: None,
        },
    ];
    SignalingFloorplan {
        signals: vec![
            SignalSpec {
                name: "DataW".into(),
                class: SignalClass::WriteData,
                wires: WireCount::PerIo,
                toggle_rate: 0.5,
                segments: data_segments.clone(),
            },
            SignalSpec {
                name: "DataR".into(),
                class: SignalClass::ReadData,
                wires: WireCount::PerIo,
                toggle_rate: 0.5,
                segments: data_segments,
            },
            SignalSpec {
                name: "RowAddr".into(),
                class: SignalClass::RowAddress,
                wires: WireCount::RowAddressBits,
                toggle_rate: 0.5,
                segments: vec![
                    SegmentSpec::Inside {
                        at: CENTER,
                        fraction: 0.25,
                        dir: Axis::Horizontal,
                        buffer: Some(small_buffer),
                        mux: None,
                    },
                    SegmentSpec::Between {
                        from: CENTER,
                        to: ROW_LOGIC,
                        buffer: Some(small_buffer),
                    },
                ],
            },
            SignalSpec {
                name: "ColAddr".into(),
                class: SignalClass::ColumnAddress,
                wires: WireCount::ColumnAddressBits,
                toggle_rate: 0.5,
                segments: vec![
                    SegmentSpec::Inside {
                        at: CENTER,
                        fraction: 0.25,
                        dir: Axis::Horizontal,
                        buffer: Some(small_buffer),
                        mux: None,
                    },
                    SegmentSpec::Between {
                        from: CENTER,
                        to: COLUMN_LOGIC,
                        buffer: Some(small_buffer),
                    },
                ],
            },
            SignalSpec {
                name: "BankAddr".into(),
                class: SignalClass::BankAddress,
                wires: WireCount::BankAddressBits,
                toggle_rate: 0.5,
                segments: vec![SegmentSpec::Inside {
                    at: CENTER,
                    fraction: 0.3,
                    dir: Axis::Horizontal,
                    buffer: Some(small_buffer),
                    mux: None,
                }],
            },
            SignalSpec {
                name: "Control".into(),
                class: SignalClass::Control,
                wires: WireCount::ControlSignals,
                toggle_rate: 0.25,
                segments: vec![SegmentSpec::Inside {
                    at: CENTER,
                    fraction: 0.5,
                    dir: Axis::Horizontal,
                    buffer: Some(small_buffer),
                    mux: None,
                }],
            },
            SignalSpec {
                name: "Clock".into(),
                class: SignalClass::Clock,
                // A clock transitions twice per cycle.
                wires: WireCount::ClockWires,
                toggle_rate: 2.0,
                segments: vec![
                    SegmentSpec::Inside {
                        at: CENTER,
                        fraction: 1.0,
                        dir: Axis::Horizontal,
                        buffer: Some(big_buffer),
                        mux: None,
                    },
                    SegmentSpec::Between {
                        from: CENTER,
                        to: COLUMN_LOGIC,
                        buffer: Some(small_buffer),
                    },
                ],
            },
        ],
    }
}

/// Default miscellaneous logic blocks for a DDR3-class device. Gate counts
/// are the fit parameters of the model (§III.B.5), calibrated against the
/// DDR3 datasheet corpus (see `dram-datasheet`).
#[must_use]
pub fn canonical_logic_blocks() -> Vec<LogicBlock> {
    let block = |name: &str, gates: u32, active: ActiveDuring, toggle: f64| LogicBlock {
        name: name.into(),
        gates,
        avg_nmos_width: Meters::from_um(0.5),
        avg_pmos_width: Meters::from_um(0.8),
        transistors_per_gate: 4.0,
        gate_density: 0.20,
        wiring_density: 0.5,
        active_during: active,
        toggle_rate: toggle,
    };
    vec![
        block("clock tree and DLL", 4000, ActiveDuring::ALWAYS, 1.0),
        block("command/address input", 3000, ActiveDuring::ALWAYS, 0.15),
        block(
            "row control and redundancy match",
            6000,
            ActiveDuring::ROW_OPS,
            1.0,
        ),
        block(
            "column control and decode",
            9000,
            ActiveDuring::COLUMN_OPS,
            1.0,
        ),
        block(
            "data path, secondary sense-amplifiers and serializer",
            26000,
            ActiveDuring::COLUMN_OPS,
            1.0,
        ),
        // Interface FIFO stages and output pre-driver chains: large
        // devices toggling per transferred beat; gate count is the fit
        // knob that lands IDD4R/W in the vendor band.
        LogicBlock {
            name: "interface FIFO and output pre-drivers".into(),
            gates: 18000,
            avg_nmos_width: Meters::from_um(1.2),
            avg_pmos_width: Meters::from_um(2.0),
            transistors_per_gate: 4.0,
            gate_density: 0.20,
            wiring_density: 0.5,
            active_during: ActiveDuring::COLUMN_OPS,
            toggle_rate: 1.0,
        },
        block("test and housekeeping", 1500, ActiveDuring::ALWAYS, 0.05),
    ]
}

/// The reference device: 1 Gb DDR3 x16 in a 55 nm open-bitline (6F²)
/// technology, interface at DDR3-1600.
///
/// # Examples
///
/// ```
/// use dram_core::reference::ddr3_1g_x16_55nm;
/// let desc = ddr3_1g_x16_55nm();
/// assert_eq!(desc.spec.density_bits(), 1 << 30);
/// ```
#[must_use]
pub fn ddr3_1g_x16_55nm() -> DramDescription {
    DramDescription {
        name: "1Gb DDR3 x16 55nm".into(),
        floorplan: PhysicalFloorplan {
            bitline_direction: Axis::Vertical,
            bits_per_bitline: 512,
            bits_per_local_wordline: 512,
            bitline_architecture: BitlineArchitecture::Open,
            blocks_per_csl: 1,
            wordline_pitch: Meters::from_nm(165.0),
            bitline_pitch: Meters::from_nm(110.0),
            sa_stripe_width: Meters::from_um(10.0),
            lwd_stripe_width: Meters::from_um(6.0),
            horizontal_blocks: vec![
                "A1".into(),
                "P1".into(),
                "A1".into(),
                "P1".into(),
                "A1".into(),
                "P1".into(),
                "A1".into(),
            ],
            vertical_blocks: vec![
                "A1".into(),
                "P1".into(),
                "P2".into(),
                "P1".into(),
                "A1".into(),
            ],
            horizontal_sizes: BTreeMap::from([("P1".to_string(), Meters::from_um(200.0))]),
            vertical_sizes: BTreeMap::from([
                ("P1".to_string(), Meters::from_um(200.0)),
                ("P2".to_string(), Meters::from_um(530.0)),
            ]),
        },
        signaling: canonical_signaling(),
        technology: Technology {
            tox_logic: Meters::from_nm(5.0),
            tox_high_voltage: Meters::from_nm(7.0),
            tox_cell: Meters::from_nm(6.0),
            lmin_logic: Meters::from_nm(90.0),
            junction_cap_logic: FaradsPerMeter::from_ff_per_um(0.8),
            lmin_high_voltage: Meters::from_nm(150.0),
            junction_cap_high_voltage: FaradsPerMeter::from_ff_per_um(1.0),
            cell_access_length: Meters::from_nm(80.0),
            cell_access_width: Meters::from_nm(60.0),
            bitline_cap: Farads::from_ff(70.0),
            cell_cap: Farads::from_ff(24.0),
            bl_to_wl_cap_share: 0.15,
            bits_per_csl_per_subarray: 4,
            c_wire_mwl: FaradsPerMeter::from_ff_per_um(0.25),
            mwl_predecode_ratio: 0.5,
            mwl_decoder_nmos_width: Meters::from_um(0.6),
            mwl_decoder_pmos_width: Meters::from_um(0.9),
            mwl_decoder_switching: 4.0,
            wl_controller_nmos_width: Meters::from_um(2.0),
            wl_controller_pmos_width: Meters::from_um(4.0),
            swd_nmos_width: Meters::from_um(0.6),
            swd_pmos_width: Meters::from_um(0.8),
            swd_restore_nmos_width: Meters::from_um(0.3),
            c_wire_lwl: FaradsPerMeter::from_ff_per_um(1.2),
            sa_nmos_sense: DeviceGeometry::from_um(0.7, 0.10),
            sa_pmos_sense: DeviceGeometry::from_um(0.5, 0.10),
            sa_equalize: DeviceGeometry::from_um(0.2, 0.09),
            sa_bit_switch: DeviceGeometry::from_um(0.4, 0.09),
            sa_bitline_mux: DeviceGeometry::from_um(0.4, 0.09),
            sa_nset: DeviceGeometry::from_um(50.0, 0.15),
            sa_pset: DeviceGeometry::from_um(50.0, 0.15),
            c_wire_signal: FaradsPerMeter::from_ff_per_um(0.30),
        },
        electrical: Electrical {
            vdd: Volts::new(1.5),
            vint: Volts::new(1.3),
            vbl: Volts::new(1.2),
            vpp: Volts::new(2.9),
            eff_vint: 0.95,
            eff_vbl: 0.92,
            eff_vpp: 0.21,
            constant_current: Amperes::from_ma(10.0),
        },
        spec: Specification {
            io_width: 16,
            datarate_per_pin: BitsPerSecond::from_gbps(1.6),
            clock_wires: 2,
            data_clock: Hertz::from_mhz(800.0),
            control_clock: Hertz::from_mhz(800.0),
            bank_address_bits: 3,
            row_address_bits: 13,
            column_address_bits: 10,
            control_signals: 10,
            prefetch: 8,
            burst_length: 8,
        },
        timing: Timing {
            trc: Seconds::from_ns(49.0),
            tras: Seconds::from_ns(35.0),
            trp: Seconds::from_ns(14.0),
            trcd: Seconds::from_ns(14.0),
            trrd: Seconds::from_ns(7.5),
            tfaw: Seconds::from_ns(40.0),
            trfc: Seconds::from_ns(110.0),
            trefi: Seconds::from_ns(7800.0),
            tccd_cycles: 4,
        },
        logic_blocks: canonical_logic_blocks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_description_is_self_consistent() {
        let desc = ddr3_1g_x16_55nm();
        assert_eq!(desc.spec.banks(), 8);
        assert_eq!(desc.spec.page_bits(), 16384);
        assert_eq!(desc.spec.density_bits(), 1 << 30);
        // Floorplan grid matches the paper's 7 x 5 coordinate system.
        assert_eq!(desc.floorplan.horizontal_blocks.len(), 7);
        assert_eq!(desc.floorplan.vertical_blocks.len(), 5);
        // Geometry must validate.
        let g = crate::geometry::Geometry::new(&desc).expect("reference must be valid");
        assert_eq!(g.banks.len(), 8);
    }

    #[test]
    fn signaling_covers_all_classes() {
        let s = canonical_signaling();
        for class in SignalClass::ALL {
            assert!(
                s.of_class(class).count() > 0,
                "no signal of class {class:?} in canonical floorplan"
            );
        }
    }

    #[test]
    fn logic_blocks_cover_background_row_and_column() {
        let blocks = canonical_logic_blocks();
        assert!(blocks.iter().any(|b| b.active_during.always));
        assert!(blocks.iter().any(|b| b.active_during.activate));
        assert!(blocks.iter().any(|b| b.active_during.read));
        for b in &blocks {
            assert!(b.gates > 0);
            assert!(b.toggle_rate > 0.0 && b.toggle_rate <= 1.0);
            assert!(b.gate_density > 0.0 && b.gate_density < 1.0);
        }
    }
}
