//! Phase-level dirty tracking for differential model rebuilds, and the
//! perturbable-parameter registry of the §IV.B sensitivity analysis.
//!
//! [`crate::Dram::new`] runs five phases in a fixed dependency chain —
//! validate → geometry → devices → charges → power — and every scalar
//! model input of Table I feeds a known *earliest* phase. A perturbation
//! of one parameter therefore only dirties that phase and everything
//! downstream of it: changing a wire capacitance re-books charges and
//! re-converts power but reuses the resolved geometry and device loads;
//! changing a rail efficiency re-runs only the power conversion.
//!
//! [`ParamId`] names each perturbable parameter (moved here from the
//! sensitivity crate so the core engine can reason about dirty sets),
//! [`DirtySet`] is the downstream-closed set of phases a change invalidates,
//! and [`Perturbation`] is a small edit list (parameter × factor) that
//! [`crate::EvalEngine::evaluate_perturbations`] and
//! [`crate::Dram::rebuild_from`] consume.

use crate::params::{DramDescription, SegmentSpec};

/// One of the five build phases of [`crate::Dram::new`], in dependency
/// order. Each phase consumes the outputs of every phase before it, so
/// dirtying a phase transitively dirties all downstream phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuildPhase {
    /// Parameter-range and consistency validation.
    Validate,
    /// Floorplan resolution (sub-array grid, block extents, wire lengths).
    Geometry,
    /// Device-load extraction (sense-amplifier and wordline-driver loads).
    Devices,
    /// Per-operation charge booking.
    Charges,
    /// Charge-to-energy conversion at the rail voltages and efficiencies.
    Power,
}

impl BuildPhase {
    /// All phases, in dependency order.
    pub const ALL: [BuildPhase; 5] = [
        BuildPhase::Validate,
        BuildPhase::Geometry,
        BuildPhase::Devices,
        BuildPhase::Charges,
        BuildPhase::Power,
    ];

    /// Position in the dependency chain (0 = validate … 4 = power).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            BuildPhase::Validate => 0,
            BuildPhase::Geometry => 1,
            BuildPhase::Devices => 2,
            BuildPhase::Charges => 3,
            BuildPhase::Power => 4,
        }
    }

    /// The phase name as it appears in the obs span names
    /// (`model.validate` … `model.power`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BuildPhase::Validate => "validate",
            BuildPhase::Geometry => "geometry",
            BuildPhase::Devices => "devices",
            BuildPhase::Charges => "charges",
            BuildPhase::Power => "power",
        }
    }
}

impl core::fmt::Display for BuildPhase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A downstream-closed set of dirty build phases.
///
/// Closure is an invariant, not a convention: the only constructors are
/// [`DirtySet::EMPTY`], [`DirtySet::ALL`], [`DirtySet::from_phase`]
/// (a phase plus everything after it) and [`DirtySet::union`], all of
/// which preserve it. A rebuild can therefore find the work to redo by
/// locating the *earliest* dirty phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DirtySet(u8);

impl DirtySet {
    /// Nothing dirty: the rebuilt model is a clone of the base.
    pub const EMPTY: DirtySet = DirtySet(0);

    /// Everything dirty: equivalent to a full [`crate::Dram::new`].
    pub const ALL: DirtySet = DirtySet(0b1_1111);

    /// The set containing `phase` and every phase downstream of it (the
    /// dependency chain makes anything less inconsistent).
    #[must_use]
    pub fn from_phase(phase: BuildPhase) -> Self {
        DirtySet((Self::ALL.0 >> phase.index()) << phase.index())
    }

    /// Whether `phase` is dirty.
    #[must_use]
    pub fn contains(self, phase: BuildPhase) -> bool {
        self.0 & (1 << phase.index()) != 0
    }

    /// The union of two dirty sets (still downstream-closed).
    #[must_use]
    pub fn union(self, other: DirtySet) -> Self {
        DirtySet(self.0 | other.0)
    }

    /// Whether no phase is dirty.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of dirty phases.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The dirty phases, in dependency order.
    pub fn phases(self) -> impl Iterator<Item = BuildPhase> {
        BuildPhase::ALL.into_iter().filter(move |p| self.contains(*p))
    }

    /// The earliest dirty phase, if any.
    #[must_use]
    pub fn earliest(self) -> Option<BuildPhase> {
        self.phases().next()
    }
}

/// Input group of a perturbable parameter (the Table I grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamCategory {
    /// Voltage domains, efficiencies and static current.
    Electrical,
    /// Process technology parameters.
    Technology,
    /// Physical floorplan dimensions.
    Floorplan,
    /// Miscellaneous peripheral logic blocks.
    Logic,
    /// Signaling floorplan (toggle rates, re-drivers).
    Signaling,
}

impl core::fmt::Display for ParamCategory {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ParamCategory::Electrical => "electrical",
            ParamCategory::Technology => "technology",
            ParamCategory::Floorplan => "floorplan",
            ParamCategory::Logic => "logic",
            ParamCategory::Signaling => "signaling",
        };
        f.write_str(s)
    }
}

/// A perturbable model parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamId {
    // --- electrical -----------------------------------------------------
    /// External supply voltage (excluded from the Fig. 10 chart: power is
    /// directly proportional to it, as the paper notes).
    Vdd,
    /// Internal logic voltage Vint.
    Vint,
    /// Bitline voltage Vbl.
    Vbl,
    /// Wordline boost voltage Vpp.
    Vpp,
    /// Vint generator efficiency.
    EffVint,
    /// Vbl generator efficiency.
    EffVbl,
    /// Vpp pump efficiency.
    EffVpp,
    /// Constant current adder.
    ConstantCurrent,
    // --- technology -------------------------------------------------------
    /// Gate oxide thickness, logic.
    ToxLogic,
    /// Gate oxide thickness, high-voltage devices.
    ToxHighVoltage,
    /// Gate oxide thickness, cell access transistor.
    ToxCell,
    /// Minimum channel length, logic.
    LminLogic,
    /// Minimum channel length, high-voltage devices.
    LminHighVoltage,
    /// Junction capacitance per width, logic.
    JunctionCapLogic,
    /// Junction capacitance per width, high-voltage.
    JunctionCapHighVoltage,
    /// Cell access transistor width.
    CellAccessWidth,
    /// Cell access transistor length.
    CellAccessLength,
    /// Bitline capacitance.
    BitlineCap,
    /// Cell capacitance.
    CellCap,
    /// Bitline-to-wordline coupling share.
    BlToWlShare,
    /// Specific wire capacitance, master wordline.
    CWireMwl,
    /// Specific wire capacitance, local wordline.
    CWireLwl,
    /// Specific wire capacitance, signaling wires.
    CWireSignal,
    /// Master wordline pre-decode ratio.
    PredecodeRatio,
    /// Master wordline decoder switching activity.
    MwlDecoderSwitching,
    /// Master wordline decoder device widths.
    MwlDecoderWidth,
    /// Wordline controller load device widths.
    WlControllerWidth,
    /// Sub-wordline driver device widths.
    SwdWidth,
    /// Sense-amplifier device widths (sense pairs, equalize, switches,
    /// set drivers).
    SenseAmpDeviceWidth,
    // --- floorplan ---------------------------------------------------------
    /// Sense-amplifier stripe width.
    SaStripeWidth,
    /// Local wordline driver stripe width.
    LwdStripeWidth,
    // --- peripheral logic ----------------------------------------------------
    /// Number of logic gates (all miscellaneous blocks).
    LogicGates,
    /// Width of NFET logic devices.
    LogicNmosWidth,
    /// Width of PFET logic devices.
    LogicPmosWidth,
    /// Logic layout (gate) density.
    LogicGateDensity,
    /// Logic wiring density.
    LogicWiringDensity,
    // --- signaling -------------------------------------------------------------
    /// Toggle rates of the signaling buses.
    SignalToggleRate,
    /// Re-driver (buffer) device widths in the signaling floorplan.
    BufferWidth,
}

impl ParamId {
    /// Every perturbable parameter.
    pub const ALL: [ParamId; 38] = [
        ParamId::Vdd,
        ParamId::Vint,
        ParamId::Vbl,
        ParamId::Vpp,
        ParamId::EffVint,
        ParamId::EffVbl,
        ParamId::EffVpp,
        ParamId::ConstantCurrent,
        ParamId::ToxLogic,
        ParamId::ToxHighVoltage,
        ParamId::ToxCell,
        ParamId::LminLogic,
        ParamId::LminHighVoltage,
        ParamId::JunctionCapLogic,
        ParamId::JunctionCapHighVoltage,
        ParamId::CellAccessWidth,
        ParamId::CellAccessLength,
        ParamId::BitlineCap,
        ParamId::CellCap,
        ParamId::BlToWlShare,
        ParamId::CWireMwl,
        ParamId::CWireLwl,
        ParamId::CWireSignal,
        ParamId::PredecodeRatio,
        ParamId::MwlDecoderSwitching,
        ParamId::MwlDecoderWidth,
        ParamId::WlControllerWidth,
        ParamId::SwdWidth,
        ParamId::SenseAmpDeviceWidth,
        ParamId::SaStripeWidth,
        ParamId::LwdStripeWidth,
        ParamId::LogicGates,
        ParamId::LogicNmosWidth,
        ParamId::LogicPmosWidth,
        ParamId::LogicGateDensity,
        ParamId::LogicWiringDensity,
        ParamId::SignalToggleRate,
        ParamId::BufferWidth,
    ];

    /// Human-readable name matching the Table III row labels where the
    /// paper names the parameter.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ParamId::Vdd => "External voltage Vdd",
            ParamId::Vint => "Internal voltage Vint",
            ParamId::Vbl => "Bitline voltage",
            ParamId::Vpp => "Wordline voltage",
            ParamId::EffVint => "Generator efficiency Vint",
            ParamId::EffVbl => "Generator efficiency Vbl",
            ParamId::EffVpp => "Pump efficiency Vpp",
            ParamId::ConstantCurrent => "Constant current adder",
            ParamId::ToxLogic => "Gate oxide thickness",
            ParamId::ToxHighVoltage => "Gate oxide thickness HV",
            ParamId::ToxCell => "Gate oxide thickness cell",
            ParamId::LminLogic => "Min gate length logic",
            ParamId::LminHighVoltage => "Min gate length HV",
            ParamId::JunctionCapLogic => "Junction capacitance logic",
            ParamId::JunctionCapHighVoltage => "Junction capacitance HV",
            ParamId::CellAccessWidth => "Access transistor width",
            ParamId::CellAccessLength => "Access transistor length",
            ParamId::BitlineCap => "Bitline capacitance",
            ParamId::CellCap => "Cell capacitance",
            ParamId::BlToWlShare => "BL-to-WL coupling share",
            ParamId::CWireMwl => "Wire capacitance master wordline",
            ParamId::CWireLwl => "Wire capacitance sub-wordline",
            ParamId::CWireSignal => "Specific wire capacitance",
            ParamId::PredecodeRatio => "Pre-decode ratio",
            ParamId::MwlDecoderSwitching => "MWL decoder switching",
            ParamId::MwlDecoderWidth => "MWL decoder width",
            ParamId::WlControllerWidth => "WL controller width",
            ParamId::SwdWidth => "Sub-wordline driver width",
            ParamId::SenseAmpDeviceWidth => "Sense amplifier device width",
            ParamId::SaStripeWidth => "SA stripe width",
            ParamId::LwdStripeWidth => "LWD stripe width",
            ParamId::LogicGates => "Number of logic gates",
            ParamId::LogicNmosWidth => "Width NFET logic",
            ParamId::LogicPmosWidth => "Width PFET logic",
            ParamId::LogicGateDensity => "Logic device density",
            ParamId::LogicWiringDensity => "Logic wiring density",
            ParamId::SignalToggleRate => "Signal toggle rate",
            ParamId::BufferWidth => "Re-driver width",
        }
    }

    /// The Table I group this parameter belongs to.
    #[must_use]
    pub fn category(self) -> ParamCategory {
        match self {
            ParamId::Vdd
            | ParamId::Vint
            | ParamId::Vbl
            | ParamId::Vpp
            | ParamId::EffVint
            | ParamId::EffVbl
            | ParamId::EffVpp
            | ParamId::ConstantCurrent => ParamCategory::Electrical,
            ParamId::ToxLogic
            | ParamId::ToxHighVoltage
            | ParamId::ToxCell
            | ParamId::LminLogic
            | ParamId::LminHighVoltage
            | ParamId::JunctionCapLogic
            | ParamId::JunctionCapHighVoltage
            | ParamId::CellAccessWidth
            | ParamId::CellAccessLength
            | ParamId::BitlineCap
            | ParamId::CellCap
            | ParamId::BlToWlShare
            | ParamId::CWireMwl
            | ParamId::CWireLwl
            | ParamId::CWireSignal
            | ParamId::PredecodeRatio
            | ParamId::MwlDecoderSwitching
            | ParamId::MwlDecoderWidth
            | ParamId::WlControllerWidth
            | ParamId::SwdWidth
            | ParamId::SenseAmpDeviceWidth => ParamCategory::Technology,
            ParamId::SaStripeWidth | ParamId::LwdStripeWidth => ParamCategory::Floorplan,
            ParamId::LogicGates
            | ParamId::LogicNmosWidth
            | ParamId::LogicPmosWidth
            | ParamId::LogicGateDensity
            | ParamId::LogicWiringDensity => ParamCategory::Logic,
            ParamId::SignalToggleRate | ParamId::BufferWidth => ParamCategory::Signaling,
        }
    }

    /// Whether the Fig. 10 chart includes this parameter (the paper plots
    /// everything except the external supply, whose effect is exactly
    /// proportional).
    #[must_use]
    pub fn in_pareto_chart(self) -> bool {
        self != ParamId::Vdd
    }

    /// The build phases a change of this parameter invalidates: the
    /// earliest phase that reads the parameter, closed downstream.
    ///
    /// The mapping follows where each input is consumed: stripe widths
    /// enter the floorplan resolution; the device widths, oxides and
    /// junction capacitances that form the sense-amplifier and
    /// wordline-driver loads enter the devices phase; wire capacitances,
    /// toggle rates, logic blocks and the internal rail voltages (which
    /// set `Q = C·V`) enter the charge booking; Vdd and the generator
    /// efficiencies only scale charges into external energy. The constant
    /// current adder is read at query time, never during the build, so
    /// its dirty set is empty. Validation is *not* tracked here — every
    /// rebuild path re-validates unconditionally, because any edit can
    /// push a parameter out of range.
    #[must_use]
    pub fn dirty_set(self) -> DirtySet {
        match self {
            ParamId::Vdd | ParamId::EffVint | ParamId::EffVbl | ParamId::EffVpp => {
                DirtySet::from_phase(BuildPhase::Power)
            }
            ParamId::ConstantCurrent => DirtySet::EMPTY,
            ParamId::Vint
            | ParamId::Vbl
            | ParamId::Vpp
            | ParamId::ToxCell
            | ParamId::LminLogic
            | ParamId::CellAccessWidth
            | ParamId::CellAccessLength
            | ParamId::BitlineCap
            | ParamId::CellCap
            | ParamId::BlToWlShare
            | ParamId::CWireMwl
            | ParamId::CWireLwl
            | ParamId::CWireSignal
            | ParamId::PredecodeRatio
            | ParamId::MwlDecoderSwitching
            | ParamId::MwlDecoderWidth
            | ParamId::WlControllerWidth
            | ParamId::LogicGates
            | ParamId::LogicNmosWidth
            | ParamId::LogicPmosWidth
            | ParamId::LogicGateDensity
            | ParamId::LogicWiringDensity
            | ParamId::SignalToggleRate
            | ParamId::BufferWidth => DirtySet::from_phase(BuildPhase::Charges),
            ParamId::ToxLogic
            | ParamId::ToxHighVoltage
            | ParamId::LminHighVoltage
            | ParamId::JunctionCapLogic
            | ParamId::JunctionCapHighVoltage
            | ParamId::SwdWidth
            | ParamId::SenseAmpDeviceWidth => DirtySet::from_phase(BuildPhase::Devices),
            ParamId::SaStripeWidth | ParamId::LwdStripeWidth => {
                DirtySet::from_phase(BuildPhase::Geometry)
            }
        }
    }

    /// Applies a multiplicative factor to this parameter.
    pub fn apply(self, desc: &mut DramDescription, factor: f64) {
        let e = &mut desc.electrical;
        let t = &mut desc.technology;
        let fp = &mut desc.floorplan;
        match self {
            ParamId::Vdd => e.vdd = e.vdd * factor,
            ParamId::Vint => e.vint = e.vint * factor,
            ParamId::Vbl => e.vbl = e.vbl * factor,
            ParamId::Vpp => e.vpp = e.vpp * factor,
            ParamId::EffVint => e.eff_vint = (e.eff_vint * factor).min(1.0),
            ParamId::EffVbl => e.eff_vbl = (e.eff_vbl * factor).min(1.0),
            ParamId::EffVpp => e.eff_vpp = (e.eff_vpp * factor).min(1.0),
            ParamId::ConstantCurrent => e.constant_current = e.constant_current * factor,
            ParamId::ToxLogic => t.tox_logic = t.tox_logic * factor,
            ParamId::ToxHighVoltage => t.tox_high_voltage = t.tox_high_voltage * factor,
            ParamId::ToxCell => t.tox_cell = t.tox_cell * factor,
            ParamId::LminLogic => t.lmin_logic = t.lmin_logic * factor,
            ParamId::LminHighVoltage => t.lmin_high_voltage = t.lmin_high_voltage * factor,
            ParamId::JunctionCapLogic => {
                t.junction_cap_logic = t.junction_cap_logic * factor;
            }
            ParamId::JunctionCapHighVoltage => {
                t.junction_cap_high_voltage = t.junction_cap_high_voltage * factor;
            }
            ParamId::CellAccessWidth => t.cell_access_width = t.cell_access_width * factor,
            ParamId::CellAccessLength => t.cell_access_length = t.cell_access_length * factor,
            ParamId::BitlineCap => t.bitline_cap = t.bitline_cap * factor,
            ParamId::CellCap => t.cell_cap = t.cell_cap * factor,
            ParamId::BlToWlShare => {
                t.bl_to_wl_cap_share = (t.bl_to_wl_cap_share * factor).min(1.0);
            }
            ParamId::CWireMwl => t.c_wire_mwl = t.c_wire_mwl * factor,
            ParamId::CWireLwl => t.c_wire_lwl = t.c_wire_lwl * factor,
            ParamId::CWireSignal => t.c_wire_signal = t.c_wire_signal * factor,
            ParamId::PredecodeRatio => {
                t.mwl_predecode_ratio = (t.mwl_predecode_ratio * factor).min(1.0);
            }
            ParamId::MwlDecoderSwitching => t.mwl_decoder_switching *= factor,
            ParamId::MwlDecoderWidth => {
                t.mwl_decoder_nmos_width = t.mwl_decoder_nmos_width * factor;
                t.mwl_decoder_pmos_width = t.mwl_decoder_pmos_width * factor;
            }
            ParamId::WlControllerWidth => {
                t.wl_controller_nmos_width = t.wl_controller_nmos_width * factor;
                t.wl_controller_pmos_width = t.wl_controller_pmos_width * factor;
            }
            ParamId::SwdWidth => {
                t.swd_nmos_width = t.swd_nmos_width * factor;
                t.swd_pmos_width = t.swd_pmos_width * factor;
                t.swd_restore_nmos_width = t.swd_restore_nmos_width * factor;
            }
            ParamId::SenseAmpDeviceWidth => {
                for d in [
                    &mut t.sa_nmos_sense,
                    &mut t.sa_pmos_sense,
                    &mut t.sa_equalize,
                    &mut t.sa_bit_switch,
                    &mut t.sa_bitline_mux,
                    &mut t.sa_nset,
                    &mut t.sa_pset,
                ] {
                    d.width = d.width * factor;
                }
            }
            ParamId::SaStripeWidth => fp.sa_stripe_width = fp.sa_stripe_width * factor,
            ParamId::LwdStripeWidth => fp.lwd_stripe_width = fp.lwd_stripe_width * factor,
            ParamId::LogicGates => {
                for b in &mut desc.logic_blocks {
                    b.gates = ((f64::from(b.gates) * factor).round() as u32).max(1);
                }
            }
            ParamId::LogicNmosWidth => {
                for b in &mut desc.logic_blocks {
                    b.avg_nmos_width = b.avg_nmos_width * factor;
                }
            }
            ParamId::LogicPmosWidth => {
                for b in &mut desc.logic_blocks {
                    b.avg_pmos_width = b.avg_pmos_width * factor;
                }
            }
            ParamId::LogicGateDensity => {
                for b in &mut desc.logic_blocks {
                    b.gate_density = (b.gate_density * factor).min(1.0);
                }
            }
            ParamId::LogicWiringDensity => {
                for b in &mut desc.logic_blocks {
                    b.wiring_density = (b.wiring_density * factor).min(1.0);
                }
            }
            ParamId::SignalToggleRate => {
                for s in &mut desc.signaling.signals {
                    s.toggle_rate *= factor;
                }
            }
            ParamId::BufferWidth => {
                for s in &mut desc.signaling.signals {
                    for seg in &mut s.segments {
                        let buffer = match seg {
                            SegmentSpec::Between { buffer, .. }
                            | SegmentSpec::Inside { buffer, .. } => buffer,
                        };
                        if let Some(b) = buffer {
                            b.nmos_width = b.nmos_width * factor;
                            b.pmos_width = b.pmos_width * factor;
                        }
                    }
                }
            }
        }
    }
}

impl core::fmt::Display for ParamId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered list of multiplicative parameter edits applied to a base
/// description — the unit of work of
/// [`crate::EvalEngine::evaluate_perturbations`].
///
/// Edits apply in list order, which matters for repeated edits of the
/// same parameter and mirrors the call order of sequential
/// [`ParamId::apply`] invocations.
#[derive(Debug, Clone, PartialEq)]
pub struct Perturbation {
    edits: Vec<(ParamId, f64)>,
}

impl Perturbation {
    /// A perturbation from an explicit edit list.
    #[must_use]
    pub fn new(edits: Vec<(ParamId, f64)>) -> Self {
        Self { edits }
    }

    /// A single-parameter edit.
    #[must_use]
    pub fn single(param: ParamId, factor: f64) -> Self {
        Self {
            edits: vec![(param, factor)],
        }
    }

    /// A two-parameter edit (`a` applied before `b`).
    #[must_use]
    pub fn pair(a: ParamId, factor_a: f64, b: ParamId, factor_b: f64) -> Self {
        Self {
            edits: vec![(a, factor_a), (b, factor_b)],
        }
    }

    /// The edits, in application order.
    #[must_use]
    pub fn edits(&self) -> &[(ParamId, f64)] {
        &self.edits
    }

    /// Applies every edit to `desc`, in order.
    pub fn apply(&self, desc: &mut DramDescription) {
        for (param, factor) in &self.edits {
            param.apply(desc, *factor);
        }
    }

    /// The union of the edited parameters' dirty sets.
    #[must_use]
    pub fn dirty_set(&self) -> DirtySet {
        self.edits
            .iter()
            .fold(DirtySet::EMPTY, |acc, (p, _)| acc.union(p.dirty_set()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    #[test]
    fn all_list_is_deduplicated() {
        let mut seen = std::collections::HashSet::new();
        for p in ParamId::ALL {
            assert!(seen.insert(p), "{p} duplicated");
        }
    }

    #[test]
    fn every_parameter_changes_the_description() {
        let base = ddr3_1g_x16_55nm();
        for p in ParamId::ALL {
            let mut d = base.clone();
            p.apply(&mut d, 1.2);
            assert_ne!(d, base, "{p} had no effect");
        }
    }

    #[test]
    fn factor_one_is_identity_for_continuous_params() {
        let base = ddr3_1g_x16_55nm();
        for p in ParamId::ALL {
            if p == ParamId::LogicGates {
                continue; // rounding
            }
            let mut d = base.clone();
            p.apply(&mut d, 1.0);
            assert_eq!(d, base, "{p} not identity at factor 1");
        }
    }

    #[test]
    fn every_parameter_has_a_category() {
        use std::collections::HashMap;
        let mut counts: HashMap<ParamCategory, usize> = HashMap::new();
        for p in ParamId::ALL {
            *counts.entry(p.category()).or_default() += 1;
        }
        assert_eq!(counts.len(), 5, "all five Table I groups represented");
        assert_eq!(counts.values().sum::<usize>(), ParamId::ALL.len());
        assert_eq!(counts[&ParamCategory::Electrical], 8);
    }

    #[test]
    fn vdd_is_excluded_from_chart() {
        assert!(!ParamId::Vdd.in_pareto_chart());
        assert!(ParamId::Vint.in_pareto_chart());
        let plotted = ParamId::ALL.iter().filter(|p| p.in_pareto_chart()).count();
        assert_eq!(plotted, ParamId::ALL.len() - 1);
    }

    #[test]
    fn clamped_parameters_stay_in_range() {
        let mut d = ddr3_1g_x16_55nm();
        ParamId::EffVint.apply(&mut d, 2.0);
        assert!(d.electrical.eff_vint <= 1.0);
        ParamId::LogicGateDensity.apply(&mut d, 100.0);
        assert!(d.logic_blocks.iter().all(|b| b.gate_density <= 1.0));
    }

    #[test]
    fn dirty_sets_are_downstream_closed() {
        for p in ParamId::ALL {
            let d = p.dirty_set();
            if let Some(earliest) = d.earliest() {
                assert_eq!(d, DirtySet::from_phase(earliest), "{p} not closed");
            } else {
                assert_eq!(p, ParamId::ConstantCurrent, "only the adder is clean");
            }
        }
    }

    #[test]
    fn from_phase_contains_self_and_downstream() {
        let d = DirtySet::from_phase(BuildPhase::Devices);
        assert!(!d.contains(BuildPhase::Validate));
        assert!(!d.contains(BuildPhase::Geometry));
        assert!(d.contains(BuildPhase::Devices));
        assert!(d.contains(BuildPhase::Charges));
        assert!(d.contains(BuildPhase::Power));
        assert_eq!(d.len(), 3);
        assert_eq!(DirtySet::from_phase(BuildPhase::Validate), DirtySet::ALL);
        assert_eq!(
            DirtySet::from_phase(BuildPhase::Power).phases().collect::<Vec<_>>(),
            vec![BuildPhase::Power]
        );
        assert!(DirtySet::EMPTY.is_empty());
        assert_eq!(DirtySet::EMPTY.earliest(), None);
    }

    #[test]
    fn union_takes_the_earliest_phase() {
        let a = DirtySet::from_phase(BuildPhase::Power);
        let b = DirtySet::from_phase(BuildPhase::Geometry);
        assert_eq!(a.union(b), DirtySet::from_phase(BuildPhase::Geometry));
        assert_eq!(a.union(DirtySet::EMPTY), a);
    }

    #[test]
    fn dirty_phase_population_matches_the_build() {
        // Spot-check the mapping against where Dram::new actually reads
        // each parameter.
        use BuildPhase::{Charges, Devices, Geometry, Power};
        assert_eq!(ParamId::Vdd.dirty_set(), DirtySet::from_phase(Power));
        assert_eq!(ParamId::EffVpp.dirty_set(), DirtySet::from_phase(Power));
        assert_eq!(ParamId::Vint.dirty_set(), DirtySet::from_phase(Charges));
        assert_eq!(ParamId::BitlineCap.dirty_set(), DirtySet::from_phase(Charges));
        assert_eq!(
            ParamId::SenseAmpDeviceWidth.dirty_set(),
            DirtySet::from_phase(Devices)
        );
        assert_eq!(
            ParamId::SaStripeWidth.dirty_set(),
            DirtySet::from_phase(Geometry)
        );
        assert!(ParamId::ConstantCurrent.dirty_set().is_empty());
        // Every parameter that leaves geometry clean must not feed the
        // floorplan resolution (which reads floorplan + spec only).
        for p in ParamId::ALL {
            if !p.dirty_set().contains(Geometry) {
                assert_ne!(p.category(), ParamCategory::Floorplan, "{p}");
            }
        }
    }

    #[test]
    fn perturbation_applies_in_order_and_unions_dirt() {
        let base = ddr3_1g_x16_55nm();
        let pert = Perturbation::pair(ParamId::Vint, 1.2, ParamId::BitlineCap, 0.8);
        let mut d = base.clone();
        pert.apply(&mut d);
        let mut manual = base.clone();
        ParamId::Vint.apply(&mut manual, 1.2);
        ParamId::BitlineCap.apply(&mut manual, 0.8);
        assert_eq!(d, manual);
        assert_eq!(
            pert.dirty_set(),
            DirtySet::from_phase(BuildPhase::Charges)
        );
        assert_eq!(
            Perturbation::single(ParamId::Vdd, 1.1).dirty_set(),
            DirtySet::from_phase(BuildPhase::Power)
        );
        assert_eq!(pert.edits().len(), 2);
        assert_eq!(
            Perturbation::new(vec![(ParamId::Vdd, 1.1)]),
            Perturbation::single(ParamId::Vdd, 1.1)
        );
    }
}
