//! Conversion of per-operation charges into energies, currents and power
//! (Fig. 4, steps "Calculate currents of each operation" and "Calculate
//! power of each operation").
//!
//! Internal rail charge becomes external supply energy via the rail
//! voltage and the generator/pump efficiency; external power divided by
//! Vdd gives the currents that datasheets specify.

use dram_units::{Coulombs, Joules, Watts};

use crate::charges::{ContributorGroup, OperationCharges};
use crate::params::Electrical;
use crate::voltage::VoltageDomain;

/// The basic operations of the model (§III.B.4). `ClockCycle` is the
/// background unit: what one control-clock period costs with no command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Row activate.
    Activate,
    /// Row precharge.
    Precharge,
    /// Column read (one full prefetch burst).
    Read,
    /// Column write (one full prefetch burst).
    Write,
    /// One background clock cycle (no command).
    ClockCycle,
}

impl Operation {
    /// All operations, in display order.
    pub const ALL: [Operation; 5] = [
        Operation::Activate,
        Operation::Precharge,
        Operation::Read,
        Operation::Write,
        Operation::ClockCycle,
    ];
}

impl core::fmt::Display for Operation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Operation::Activate => "activate",
            Operation::Precharge => "precharge",
            Operation::Read => "read",
            Operation::Write => "write",
            Operation::ClockCycle => "clock cycle",
        };
        f.write_str(s)
    }
}

/// One contributor's energy within an operation.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyItem {
    /// Contributor name (matches the charge item).
    pub label: String,
    /// Functional group.
    pub group: ContributorGroup,
    /// Voltage domain the charge was drawn from.
    pub domain: VoltageDomain,
    /// Charge delivered by the rail.
    pub charge: Coulombs,
    /// Energy at the internal rail (`Q·V`).
    pub internal: Joules,
    /// Energy at the external supply (`Q·V/η`).
    pub external: Joules,
}

/// Energy of one occurrence of an operation, itemized.
#[derive(Debug, Clone, PartialEq)]
pub struct OperationEnergy {
    /// The operation.
    pub op: Operation,
    /// Itemized contributors.
    pub items: Vec<EnergyItem>,
}

impl OperationEnergy {
    /// Converts an operation's charges into energies.
    #[must_use]
    pub fn from_charges(op: Operation, charges: &OperationCharges, e: &Electrical) -> Self {
        let items = charges
            .items
            .iter()
            .map(|c| EnergyItem {
                label: c.label.clone(),
                group: c.group,
                domain: c.domain,
                charge: c.charge,
                internal: c.domain.internal_energy(c.charge, e),
                external: c.domain.external_energy(c.charge, e),
            })
            .collect();
        Self { op, items }
    }

    /// Re-runs the charge-to-energy conversion of the stored ledger at a
    /// different operating point — the power phase of a differential
    /// rebuild. Item order, labels, groups and charges are preserved, so
    /// the result is bit-identical to [`OperationEnergy::from_charges`]
    /// on the same charges.
    #[must_use]
    pub fn with_electrical(&self, e: &Electrical) -> Self {
        let items = self
            .items
            .iter()
            .map(|i| EnergyItem {
                label: i.label.clone(),
                group: i.group,
                domain: i.domain,
                charge: i.charge,
                internal: i.domain.internal_energy(i.charge, e),
                external: i.domain.external_energy(i.charge, e),
            })
            .collect();
        Self { op: self.op, items }
    }

    /// Total energy at the external supply for one occurrence.
    #[must_use]
    pub fn external(&self) -> Joules {
        self.items.iter().map(|i| i.external).sum()
    }

    /// Total energy at the internal rails (excluding generator losses).
    #[must_use]
    pub fn internal(&self) -> Joules {
        self.items.iter().map(|i| i.internal).sum()
    }

    /// External energy of one contributor group.
    #[must_use]
    pub fn group_external(&self, group: ContributorGroup) -> Joules {
        self.items
            .iter()
            .filter(|i| i.group == group)
            .map(|i| i.external)
            .sum()
    }

    /// External energy drawn through one voltage domain.
    #[must_use]
    pub fn domain_external(&self, domain: VoltageDomain) -> Joules {
        self.items
            .iter()
            .filter(|i| i.domain == domain)
            .map(|i| i.external)
            .sum()
    }

    /// Share of external energy spent in array-related groups (wordlines,
    /// bitlines, sense amps) — the quantity whose decline over generations
    /// §IV.B highlights.
    #[must_use]
    pub fn array_share(&self) -> f64 {
        let total = self.external();
        if total.joules() == 0.0 {
            return 0.0;
        }
        let array: Joules = self
            .items
            .iter()
            .filter(|i| i.group.is_array_related())
            .map(|i| i.external)
            .sum();
        array.joules() / total.joules()
    }
}

/// Static (command-independent) external power: the constant current sink
/// from Vdd.
#[must_use]
pub fn static_power(e: &Electrical) -> Watts {
    e.constant_current * e.vdd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charges::ChargeModel;
    use crate::geometry::Geometry;
    use crate::reference::ddr3_1g_x16_55nm;

    #[test]
    fn external_exceeds_internal_energy() {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let m = ChargeModel::new(&desc, &geom);
        let act =
            OperationEnergy::from_charges(Operation::Activate, &m.activate(), &desc.electrical);
        assert!(act.external() > act.internal());
        // Efficiency-weighted: the gap is bounded by the worst pump.
        assert!(act.external().joules() < act.internal().joules() / 0.4 + 1e-18);
    }

    #[test]
    fn activate_energy_is_nanojoule_scale() {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let m = ChargeModel::new(&desc, &geom);
        let act =
            OperationEnergy::from_charges(Operation::Activate, &m.activate(), &desc.electrical);
        let nj = act.external().joules() * 1e9;
        // A 16 Kb page activate in a 1 Gb DDR3 is on the order of a
        // nanojoule at the supply.
        assert!(nj > 0.3 && nj < 5.0, "activate energy {nj} nJ");
    }

    #[test]
    fn array_share_is_high_for_activate_low_for_read() {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let m = ChargeModel::new(&desc, &geom);
        let e = &desc.electrical;
        let act = OperationEnergy::from_charges(Operation::Activate, &m.activate(), e);
        let rd = OperationEnergy::from_charges(Operation::Read, &m.read(), e);
        assert!(
            act.array_share() > 0.5,
            "activate array share {}",
            act.array_share()
        );
        assert!(
            rd.array_share() < 0.4,
            "read array share {}",
            rd.array_share()
        );
    }

    #[test]
    fn group_and_domain_partitions_sum_to_total() {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let m = ChargeModel::new(&desc, &geom);
        let rd = OperationEnergy::from_charges(Operation::Read, &m.read(), &desc.electrical);
        let by_group: f64 = ContributorGroup::ALL
            .iter()
            .map(|&g| rd.group_external(g).joules())
            .sum();
        let by_domain: f64 = VoltageDomain::ALL
            .iter()
            .map(|&d| rd.domain_external(d).joules())
            .sum();
        let total = rd.external().joules();
        assert!((by_group - total).abs() < 1e-18);
        assert!((by_domain - total).abs() < 1e-18);
    }

    #[test]
    fn static_power_magnitude() {
        let desc = ddr3_1g_x16_55nm();
        let p = static_power(&desc.electrical);
        assert!((p.milliwatts() - 15.0).abs() < 1e-9); // 10 mA × 1.5 V
    }

    #[test]
    fn operation_display() {
        assert_eq!(Operation::Activate.to_string(), "activate");
        assert_eq!(Operation::ClockCycle.to_string(), "clock cycle");
    }
}
