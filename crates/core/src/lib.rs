//! # dram-core
//!
//! A description-driven DRAM power model, reproducing Thomas Vogelsang,
//! *"Understanding the Energy Consumption of Dynamic Random Access
//! Memories"*, MICRO-43, 2010.
//!
//! The model takes a complete [`DramDescription`] — physical floorplan,
//! signaling floorplan, technology, specification and miscellaneous logic
//! blocks (the paper's Table I) — and computes, from first principles
//! (`P = Σ ½·C·V²·f` over every wire and device):
//!
//! * per-operation charge and energy (activate, precharge, read, write,
//!   background clock cycle), itemized by contributor and voltage domain;
//! * datasheet currents (IDD0/2N/3N/4R/4W/5/7);
//! * arbitrary command-loop pattern power (§III.B.4);
//! * energy per bit for streaming and random-access workloads;
//! * die area, array efficiency and stripe-area shares.
//!
//! ## Quickstart
//!
//! ```
//! use dram_core::{Dram, Pattern};
//! use dram_core::reference::ddr3_1g_x16_55nm;
//!
//! # fn main() -> Result<(), dram_core::ModelError> {
//! let dram = Dram::new(ddr3_1g_x16_55nm())?;
//! let idd = dram.idd();
//! assert!(idd.idd4r > idd.idd0);
//!
//! // The paper's example pattern: act nop wrt nop rd nop pre nop.
//! let pattern = Pattern::parse("act nop wrt nop rd nop pre nop")?;
//! let summary = dram.pattern_power(&pattern);
//! assert!(summary.power > summary.background);
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

pub mod area;
pub mod batch;
pub mod charges;
pub mod devices;
mod error;
pub mod geometry;
pub mod lowpower;
mod model;
pub mod params;
pub mod pattern;
pub mod perturb;
pub mod power;
pub mod reference;
pub mod timing;
pub mod voltage;

pub use batch::{content_key, CacheStats, EngineSnapshot, EvalEngine, ModelCache, StableHasher};
pub use error::ModelError;
pub use lowpower::{PowerState, TemperatureRange};
pub use model::{
    CapacitanceReport, Dram, IddKind, IddReport, PowerSummary, REFRESH_COMMANDS_PER_WINDOW,
};
pub use params::DramDescription;
pub use pattern::{Command, Pattern};
pub use perturb::{BuildPhase, DirtySet, ParamCategory, ParamId, Perturbation};
pub use power::{Operation, OperationEnergy};
pub use voltage::VoltageDomain;
