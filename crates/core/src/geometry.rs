//! Floorplan geometry: the coordinate system of §III.B.1 and Fig. 1.
//!
//! The die is a grid formed by crossing a horizontal sequence of block
//! types with a vertical sequence. Array block extents are *computed* from
//! cell pitches, stripe widths and the address organization ("The model
//! calculates the size of the array blocks from the bitline pitch, wordline
//! pitch and the width of bitline sense-amplifier and local wordline driver
//! stripes"); peripheral block extents come from the description.
//!
//! All wire lengths used by the charge model — master wordlines, column
//! select lines, master array datalines, and the signaling-floorplan
//! segments — are resolved here.

use dram_units::Meters;

use crate::error::ModelError;
use crate::params::{Axis, BlockCoord, DramDescription, PhysicalFloorplan, SegmentSpec};

/// Resolved die geometry for one DRAM description.
#[derive(Debug, Clone, PartialEq)]
pub struct Geometry {
    /// Sub-array rows per bank (stacked along the bitline direction).
    pub sub_rows: u32,
    /// Sub-array columns per bank (side by side along the wordline; the
    /// span of one master wordline).
    pub sub_cols: u32,
    /// Sub-array extent along the wordline direction.
    pub subarray_along_wl: Meters,
    /// Sub-array extent along the bitline direction.
    pub subarray_along_bl: Meters,
    /// Array block (bank) extent along the wordline direction, including
    /// local wordline driver stripes.
    pub block_along_wl: Meters,
    /// Array block extent along the bitline direction, including
    /// sense-amplifier stripes.
    pub block_along_bl: Meters,
    /// Extent of each block column (x axis).
    pub h_extents: Vec<Meters>,
    /// Extent of each block row (y axis).
    pub v_extents: Vec<Meters>,
    /// Center x coordinate of each block column.
    pub h_centers: Vec<Meters>,
    /// Center y coordinate of each block row.
    pub v_centers: Vec<Meters>,
    /// Total die width.
    pub die_width: Meters,
    /// Total die height.
    pub die_height: Meters,
    /// Grid coordinates of the banks (array×array cells).
    pub banks: Vec<BlockCoord>,
    /// Direction bitlines run on the die.
    pub bitline_direction: Axis,
}

impl Geometry {
    /// Computes the geometry for a description.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the floorplan is inconsistent with the
    /// specification (bank count, capacity, divisibility) or a peripheral
    /// block size is missing.
    pub fn new(desc: &DramDescription) -> Result<Self, ModelError> {
        let fp = &desc.floorplan;
        let spec = &desc.spec;

        // --- sub-array organization -----------------------------------
        let page_bits = spec.page_bits();
        let bits_per_lwl = u64::from(fp.bits_per_local_wordline);
        if bits_per_lwl == 0 || !page_bits.is_multiple_of(bits_per_lwl) {
            return Err(ModelError::PageNotDivisible {
                page_bits,
                bits_per_lwl: fp.bits_per_local_wordline,
            });
        }
        let sub_cols =
            u32::try_from(page_bits / bits_per_lwl).map_err(|_| ModelError::PageNotDivisible {
                page_bits,
                bits_per_lwl: fp.bits_per_local_wordline,
            })?;

        let rows = spec.rows_per_bank();
        let bits_per_bl = u64::from(fp.bits_per_bitline);
        if bits_per_bl == 0 || !rows.is_multiple_of(bits_per_bl) {
            return Err(ModelError::RowsNotDivisible {
                rows,
                bits_per_bitline: fp.bits_per_bitline,
            });
        }
        let sub_rows =
            u32::try_from(rows / bits_per_bl).map_err(|_| ModelError::RowsNotDivisible {
                rows,
                bits_per_bitline: fp.bits_per_bitline,
            })?;

        // --- array block extents ---------------------------------------
        let pitches_per_cell = f64::from(fp.bitline_architecture.bitline_pitches_per_cell());
        let subarray_along_wl =
            fp.bitline_pitch * (f64::from(fp.bits_per_local_wordline) * pitches_per_cell);
        let subarray_along_bl = fp.wordline_pitch * f64::from(fp.bits_per_bitline);
        let block_along_wl =
            subarray_along_wl * f64::from(sub_cols) + fp.lwd_stripe_width * f64::from(sub_cols + 1);
        let block_along_bl =
            subarray_along_bl * f64::from(sub_rows) + fp.sa_stripe_width * f64::from(sub_rows + 1);

        // Map array extents onto die axes.
        let (array_w, array_h) = match fp.bitline_direction {
            // Bitlines vertical: wordlines run horizontally, so the
            // along-wordline extent is the block width.
            Axis::Vertical => (block_along_wl, block_along_bl),
            Axis::Horizontal => (block_along_bl, block_along_wl),
        };

        // --- grid ------------------------------------------------------
        let h_extents = resolve_extents(
            &fp.horizontal_blocks,
            &fp.horizontal_sizes,
            array_w,
            Axis::Horizontal,
        )?;
        let v_extents = resolve_extents(
            &fp.vertical_blocks,
            &fp.vertical_sizes,
            array_h,
            Axis::Vertical,
        )?;
        let h_centers = centers(&h_extents);
        let v_centers = centers(&v_extents);
        let die_width: Meters = h_extents.iter().copied().sum();
        let die_height: Meters = v_extents.iter().copied().sum();

        let mut banks = Vec::new();
        for (x, hname) in fp.horizontal_blocks.iter().enumerate() {
            if !PhysicalFloorplan::is_array_type(hname) {
                continue;
            }
            for (y, vname) in fp.vertical_blocks.iter().enumerate() {
                if PhysicalFloorplan::is_array_type(vname) {
                    banks.push(BlockCoord::new(x, y));
                }
            }
        }
        if banks.is_empty() {
            return Err(ModelError::NoArrayBlocks);
        }
        let n_banks = u32::try_from(banks.len()).unwrap_or(u32::MAX);
        if n_banks != spec.banks() {
            return Err(ModelError::BankCountMismatch {
                floorplan: n_banks,
                spec: spec.banks(),
            });
        }

        // --- capacity cross-check --------------------------------------
        let floorplan_bits = u64::from(n_banks)
            * u64::from(sub_rows)
            * u64::from(sub_cols)
            * bits_per_bl
            * bits_per_lwl;
        if floorplan_bits != spec.density_bits() {
            return Err(ModelError::CapacityMismatch {
                floorplan_bits,
                spec_bits: spec.density_bits(),
            });
        }

        let geom = Self {
            sub_rows,
            sub_cols,
            subarray_along_wl,
            subarray_along_bl,
            block_along_wl,
            block_along_bl,
            h_extents,
            v_extents,
            h_centers,
            v_centers,
            die_width,
            die_height,
            banks,
            bitline_direction: fp.bitline_direction,
        };

        // --- signaling floorplan coordinates must be on the grid --------
        for sig in &desc.signaling.signals {
            for seg in &sig.segments {
                match seg {
                    SegmentSpec::Between { from, to, .. } => {
                        geom.check_coord(*from)?;
                        geom.check_coord(*to)?;
                    }
                    SegmentSpec::Inside { at, fraction, .. } => {
                        geom.check_coord(*at)?;
                        if !(0.0..=1.0).contains(fraction) {
                            return Err(ModelError::BadParameter {
                                name: "signaling.fraction",
                                reason: format!(
                                    "segment fraction {fraction} of signal `{}` not in 0..=1",
                                    sig.name
                                ),
                            });
                        }
                    }
                }
            }
        }

        Ok(geom)
    }

    /// Grid extent as (columns, rows).
    #[must_use]
    pub fn grid(&self) -> (usize, usize) {
        (self.h_extents.len(), self.v_extents.len())
    }

    fn check_coord(&self, c: BlockCoord) -> Result<(), ModelError> {
        let (gx, gy) = self.grid();
        if c.x >= gx || c.y >= gy {
            return Err(ModelError::CoordOutOfRange {
                coord: c,
                grid: (gx, gy),
            });
        }
        Ok(())
    }

    /// Center position of a block, `(x, y)` from the die's lower-left
    /// corner.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid; coordinates coming
    /// from a validated description are always in range.
    #[must_use]
    pub fn block_center(&self, c: BlockCoord) -> (Meters, Meters) {
        (self.h_centers[c.x], self.v_centers[c.y])
    }

    /// Extent of a block along one axis.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is outside the grid.
    #[must_use]
    pub fn block_extent(&self, c: BlockCoord, axis: Axis) -> Meters {
        match axis {
            Axis::Horizontal => self.h_extents[c.x],
            Axis::Vertical => self.v_extents[c.y],
        }
    }

    /// Manhattan distance between two block centers — the length of a
    /// center-to-center signal segment ("Signal segments from one block to
    /// another are assumed to extend from block center to block center").
    #[must_use]
    pub fn center_to_center(&self, from: BlockCoord, to: BlockCoord) -> Meters {
        let (x0, y0) = self.block_center(from);
        let (x1, y1) = self.block_center(to);
        (x1 - x0).abs() + (y1 - y0).abs()
    }

    /// Resolved length of one signaling segment.
    #[must_use]
    pub fn segment_length(&self, seg: &SegmentSpec) -> Meters {
        match seg {
            SegmentSpec::Between { from, to, .. } => self.center_to_center(*from, *to),
            SegmentSpec::Inside {
                at, fraction, dir, ..
            } => self.block_extent(*at, *dir) * *fraction,
        }
    }

    /// Length of one master wordline: it spans the array block along the
    /// wordline direction.
    #[must_use]
    pub fn master_wordline_length(&self) -> Meters {
        self.block_along_wl
    }

    /// Length of one local wordline: it spans one sub-array along the
    /// wordline direction.
    #[must_use]
    pub fn local_wordline_length(&self) -> Meters {
        self.subarray_along_wl
    }

    /// Length of one bitline: it spans one sub-array along the bitline
    /// direction.
    #[must_use]
    pub fn bitline_length(&self) -> Meters {
        self.subarray_along_bl
    }

    /// Length of one column select line, possibly continuing across
    /// several array blocks (`blocks_per_csl`).
    #[must_use]
    pub fn column_select_length(&self, blocks_per_csl: u32) -> Meters {
        self.block_along_bl * f64::from(blocks_per_csl.max(1))
    }

    /// Average length of a master array dataline run: from the middle of
    /// the array block to its column-logic edge, i.e. half the block extent
    /// along the bitline direction on average over row positions.
    #[must_use]
    pub fn master_dataline_length(&self) -> Meters {
        self.block_along_bl * 0.5
    }

    /// Length of a local array dataline: it runs in the sense-amplifier
    /// stripe across one sub-array along the wordline direction.
    #[must_use]
    pub fn local_dataline_length(&self) -> Meters {
        self.subarray_along_wl
    }

    /// Die area.
    #[must_use]
    pub fn die_area(&self) -> dram_units::SquareMeters {
        self.die_width * self.die_height
    }
}

/// Resolves the per-column (or per-row) extents of the block grid.
fn resolve_extents(
    names: &[String],
    sizes: &std::collections::BTreeMap<String, Meters>,
    array_extent: Meters,
    axis: Axis,
) -> Result<Vec<Meters>, ModelError> {
    if !names.iter().any(|n| PhysicalFloorplan::is_array_type(n)) {
        return Err(ModelError::NoArrayBlocks);
    }
    names
        .iter()
        .map(|name| {
            if PhysicalFloorplan::is_array_type(name) {
                Ok(array_extent)
            } else {
                sizes
                    .get(name)
                    .copied()
                    .ok_or_else(|| ModelError::MissingBlockSize {
                        name: name.clone(),
                        axis,
                    })
            }
        })
        .collect()
}

/// Converts per-slot extents into center coordinates.
fn centers(extents: &[Meters]) -> Vec<Meters> {
    let mut out = Vec::with_capacity(extents.len());
    let mut cursor = Meters::ZERO;
    for &e in extents {
        out.push(cursor + e * 0.5);
        cursor += e;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm as test_ddr3_like;

    #[test]
    fn ddr3_geometry_is_consistent() {
        let desc = test_ddr3_like();
        let g = Geometry::new(&desc).expect("valid description");
        // 1 Gb x16: page 16 Kb over 512-cell LWLs -> 32 sub-array columns;
        // 8192 rows over 512-cell bitlines -> 16 sub-array rows.
        assert_eq!(g.sub_cols, 32);
        assert_eq!(g.sub_rows, 16);
        assert_eq!(g.banks.len(), 8);
        // Open bitline: sub-array width = 512 cells * 110 nm.
        assert!((g.subarray_along_wl.micrometers() - 512.0 * 0.110).abs() < 1e-6);
        assert!((g.subarray_along_bl.micrometers() - 512.0 * 0.165).abs() < 1e-6);
        // Die must be bigger than the 8 banks it contains.
        let bank_area = g.block_along_wl.meters() * g.block_along_bl.meters() * 8.0;
        assert!(g.die_area().square_meters() > bank_area);
        // Commodity die: tens of mm².
        let mm2 = g.die_area().square_millimeters();
        assert!(mm2 > 20.0 && mm2 < 200.0, "die area {mm2} mm² out of range");
    }

    #[test]
    fn centers_are_monotonic_and_inside_die() {
        let desc = test_ddr3_like();
        let g = Geometry::new(&desc).expect("valid description");
        for w in g.h_centers.windows(2) {
            assert!(w[1] > w[0]);
        }
        for &c in &g.h_centers {
            assert!(c > Meters::ZERO && c < g.die_width);
        }
        for &c in &g.v_centers {
            assert!(c > Meters::ZERO && c < g.die_height);
        }
    }

    #[test]
    fn center_to_center_is_symmetric() {
        let desc = test_ddr3_like();
        let g = Geometry::new(&desc).expect("valid description");
        let a = BlockCoord::new(0, 0);
        let b = BlockCoord::new(2, 2);
        assert_eq!(g.center_to_center(a, b), g.center_to_center(b, a));
        assert_eq!(g.center_to_center(a, a), Meters::ZERO);
    }

    #[test]
    fn wire_lengths_have_expected_relations() {
        let desc = test_ddr3_like();
        let g = Geometry::new(&desc).expect("valid description");
        // The master wordline spans all sub-array columns, so it is longer
        // than a local wordline.
        assert!(g.master_wordline_length() > g.local_wordline_length() * 31.9);
        // CSL spans the block along the bitline direction.
        assert!(g.column_select_length(1) > g.bitline_length() * 15.9);
        // Average MDQ run is half the CSL.
        assert!(
            (g.master_dataline_length().meters() - g.column_select_length(1).meters() / 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn bank_count_mismatch_is_detected() {
        let mut desc = test_ddr3_like();
        desc.spec.bank_address_bits = 2; // 4 banks, floorplan has 8
                                         // Density changes too; fix rows to keep capacity consistent so the
                                         // bank check fires first.
        let err = Geometry::new(&desc).unwrap_err();
        assert!(matches!(
            err,
            ModelError::BankCountMismatch {
                floorplan: 8,
                spec: 4
            }
        ));
    }

    #[test]
    fn missing_block_size_is_detected() {
        let mut desc = test_ddr3_like();
        desc.floorplan.horizontal_sizes.clear();
        let err = Geometry::new(&desc).unwrap_err();
        assert!(matches!(err, ModelError::MissingBlockSize { .. }));
    }

    #[test]
    fn page_divisibility_is_checked() {
        let mut desc = test_ddr3_like();
        desc.floorplan.bits_per_local_wordline = 500; // 16384 % 500 != 0
        let err = Geometry::new(&desc).unwrap_err();
        assert!(matches!(err, ModelError::PageNotDivisible { .. }));
    }

    #[test]
    fn rows_divisibility_is_checked() {
        let mut desc = test_ddr3_like();
        desc.floorplan.bits_per_bitline = 500;
        let err = Geometry::new(&desc).unwrap_err();
        assert!(matches!(err, ModelError::RowsNotDivisible { .. }));
    }

    #[test]
    fn out_of_range_signal_coord_is_detected() {
        use crate::params::{SegmentSpec, SignalClass, SignalSpec, WireCount};
        let mut desc = test_ddr3_like();
        desc.signaling.signals.push(SignalSpec {
            name: "bogus".into(),
            class: SignalClass::Control,
            wires: WireCount::Explicit(1),
            toggle_rate: 0.5,
            segments: vec![SegmentSpec::Between {
                from: BlockCoord::new(99, 0),
                to: BlockCoord::new(0, 0),
                buffer: None,
            }],
        });
        let err = Geometry::new(&desc).unwrap_err();
        assert!(matches!(err, ModelError::CoordOutOfRange { .. }));
    }

    #[test]
    fn folded_architecture_doubles_subarray_width() {
        let mut desc = test_ddr3_like();
        desc.floorplan.bitline_architecture = crate::params::BitlineArchitecture::Folded;
        let g = Geometry::new(&desc).expect("valid description");
        let open = Geometry::new(&test_ddr3_like()).expect("valid");
        assert!(
            (g.subarray_along_wl.meters() - 2.0 * open.subarray_along_wl.meters()).abs() < 1e-12
        );
    }
}
