//! Die area accounting: array efficiency and the area shares of the
//! on-pitch stripes.
//!
//! §II: "The share of bitline sense-amplifier area to total die area in a
//! typical commodity DRAM is between 8% and 15%, the share of local
//! wordline driver area is between 5% and 10%." The §V scheme evaluation
//! uses these shares to quantify the cost of proposals that widen or
//! multiply the stripes.

use dram_units::SquareMeters;

use crate::geometry::Geometry;
use crate::params::DramDescription;

/// Area breakdown of one die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Total die area.
    pub die: SquareMeters,
    /// Area of the storage cells proper.
    pub cells: SquareMeters,
    /// Area of all bitline sense-amplifier stripes.
    pub sa_stripes: SquareMeters,
    /// Area of all local wordline driver stripes.
    pub lwd_stripes: SquareMeters,
}

impl AreaReport {
    /// Computes the area report for a description with resolved geometry.
    #[must_use]
    pub fn new(desc: &DramDescription, geom: &Geometry) -> Self {
        let fp = &desc.floorplan;
        let die = geom.die_area();

        let cell_area = fp.wordline_pitch
            * (fp.bitline_pitch * f64::from(fp.bitline_architecture.bitline_pitches_per_cell()));
        let cells = cell_area * desc.spec.density_bits() as f64;

        let banks = geom.banks.len() as f64;
        let sa_stripes =
            (geom.block_along_wl * fp.sa_stripe_width) * (f64::from(geom.sub_rows + 1) * banks);
        let lwd_stripes =
            (geom.block_along_bl * fp.lwd_stripe_width) * (f64::from(geom.sub_cols + 1) * banks);

        Self {
            die,
            cells,
            sa_stripes,
            lwd_stripes,
        }
    }

    /// Array efficiency: cell area over die area (the quantity DRAM cost
    /// optimization maximizes, §II).
    #[must_use]
    pub fn array_efficiency(&self) -> f64 {
        self.cells.square_meters() / self.die.square_meters()
    }

    /// Sense-amplifier stripe share of the die.
    #[must_use]
    pub fn sa_share(&self) -> f64 {
        self.sa_stripes.square_meters() / self.die.square_meters()
    }

    /// Local wordline driver stripe share of the die.
    #[must_use]
    pub fn lwd_share(&self) -> f64 {
        self.lwd_stripes.square_meters() / self.die.square_meters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;
    use crate::reference::ddr3_1g_x16_55nm;

    #[test]
    fn reference_die_matches_commodity_ranges() {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let a = AreaReport::new(&desc, &geom);
        // §IV.C: commodity dies are chosen around 40–60 mm²; our 1 Gb 55 nm
        // reference lands in the broader commodity window.
        let mm2 = a.die.square_millimeters();
        assert!(mm2 > 25.0 && mm2 < 70.0, "die {mm2} mm²");
        // Array efficiency around 50-65 %.
        let eff = a.array_efficiency();
        assert!(eff > 0.45 && eff < 0.70, "array efficiency {eff}");
        // Paper stripe-share windows.
        let sa = a.sa_share();
        assert!(sa > 0.06 && sa < 0.16, "SA share {sa}");
        let lwd = a.lwd_share();
        assert!(lwd > 0.03 && lwd < 0.11, "LWD share {lwd}");
    }

    #[test]
    fn folded_cell_is_larger() {
        let open = ddr3_1g_x16_55nm();
        let mut folded = ddr3_1g_x16_55nm();
        folded.floorplan.bitline_architecture = crate::params::BitlineArchitecture::Folded;
        let go = Geometry::new(&open).expect("valid");
        let gf = Geometry::new(&folded).expect("valid");
        let ao = AreaReport::new(&open, &go);
        let af = AreaReport::new(&folded, &gf);
        assert!(af.cells > ao.cells);
        assert!(af.die > ao.die);
    }

    #[test]
    fn stripe_area_scales_with_stripe_width() {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let base = AreaReport::new(&desc, &geom);

        let mut wide = ddr3_1g_x16_55nm();
        wide.floorplan.sa_stripe_width = wide.floorplan.sa_stripe_width * 2.0;
        let geom2 = Geometry::new(&wide).expect("valid");
        let doubled = AreaReport::new(&wide, &geom2);
        // Stripe area doubles (same count, double width), die grows less.
        let ratio = doubled.sa_stripes.square_meters() / base.sa_stripes.square_meters();
        assert!((ratio - 2.0).abs() < 1e-9);
        assert!(doubled.die > base.die);
        assert!(doubled.die.square_meters() < base.die.square_meters() * 1.3);
    }

    #[test]
    fn cell_area_matches_f_squared() {
        // 1 Gb at 6F², F = 55 nm: 2^30 x 6 x 55² nm² = 19.5 mm².
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let a = AreaReport::new(&desc, &geom);
        let expected_mm2 = (1u64 << 30) as f64 * 6.0 * 55.0e-9 * 55.0e-9 * 1e6;
        assert!(
            (a.cells.square_millimeters() - expected_mm2).abs() / expected_mm2 < 1e-6,
            "{} vs {expected_mm2}",
            a.cells.square_millimeters()
        );
    }

    #[test]
    fn shares_are_disjoint_fractions() {
        let desc = ddr3_1g_x16_55nm();
        let geom = Geometry::new(&desc).expect("valid");
        let a = AreaReport::new(&desc, &geom);
        let total_share = a.array_efficiency() + a.sa_share() + a.lwd_share();
        assert!(
            total_share < 1.0,
            "cell+stripe shares {total_share} exceed die"
        );
    }
}
