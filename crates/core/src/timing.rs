//! Bank-level timing validation and standard datasheet patterns.
//!
//! "Concurrent operation of banks is ... limited to that portion of an
//! operation that takes place inside a bank" (§II): interleaved patterns
//! like IDD7 are only legal if the per-bank row timings (tRC, tRAS, tRP,
//! tRCD) and the shared-resource timings (tRRD on the row logic, tCCD on
//! the shared data bus) hold. This module provides a cycle-accurate
//! checker for bank-annotated command loops and constructors for the
//! standard datasheet loops (IDD0, IDD4R/W, IDD7).

use dram_units::Hertz;

use crate::error::ModelError;
use crate::params::Timing;
use crate::pattern::Command;

/// Converts a timing parameter to clock cycles, rounding up but tolerating
/// floating-point noise (35 ns at 800 MHz is 28 cycles, not 29).
fn to_cycles(s: dram_units::Seconds, clock: Hertz) -> u64 {
    (s.seconds() * clock.hertz() - 1e-6).ceil().max(0.0) as u64
}

/// A command scheduled at a clock cycle on a specific bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedCommand {
    /// Cycle within the loop (0-based, strictly less than the loop
    /// length).
    pub cycle: u64,
    /// Bank index.
    pub bank: u32,
    /// The command.
    pub command: Command,
}

/// Initial bank state assumed when checking a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitialBankState {
    /// All banks precharged (IDD0-style loops).
    AllClosed,
    /// All banks open (IDD4-style loops, rows activated beforehand).
    AllOpen,
}

/// A repeating, bank-annotated command loop at the control clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPattern {
    commands: Vec<TimedCommand>,
    loop_cycles: u64,
}

impl TimedPattern {
    /// Creates a timed pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyPattern`] if the loop has no cycles, and
    /// [`ModelError::BadParameter`] if a command lies outside the loop or
    /// the commands are not sorted by cycle.
    pub fn new(mut commands: Vec<TimedCommand>, loop_cycles: u64) -> Result<Self, ModelError> {
        if loop_cycles == 0 {
            return Err(ModelError::EmptyPattern);
        }
        commands.retain(|c| c.command != Command::Nop);
        for c in &commands {
            if c.cycle >= loop_cycles {
                return Err(ModelError::BadParameter {
                    name: "timed_pattern",
                    reason: format!(
                        "command {} at cycle {} outside loop of {loop_cycles} cycles",
                        c.command, c.cycle
                    ),
                });
            }
        }
        commands.sort_by_key(|c| c.cycle);
        Ok(Self {
            commands,
            loop_cycles,
        })
    }

    /// The scheduled commands (nops removed), sorted by cycle.
    #[must_use]
    pub fn commands(&self) -> &[TimedCommand] {
        &self.commands
    }

    /// Loop length in control-clock cycles.
    #[must_use]
    pub fn loop_cycles(&self) -> u64 {
        self.loop_cycles
    }

    /// Count of a given command per loop.
    #[must_use]
    pub fn count(&self, cmd: Command) -> usize {
        self.commands.iter().filter(|c| c.command == cmd).count()
    }

    /// Rate of a given command: occurrences per second at clock `f`.
    #[must_use]
    pub fn rate(&self, cmd: Command, clock: Hertz) -> Hertz {
        clock * (self.count(cmd) as f64 / self.loop_cycles as f64)
    }

    /// The IDD0 loop: one activate and one precharge on bank 0, repeating
    /// every tRC.
    ///
    /// # Errors
    ///
    /// Returns an error if the timing rounds to a zero-length loop.
    pub fn idd0(timing: &Timing, clock: Hertz) -> Result<Self, ModelError> {
        let cycles = |s: dram_units::Seconds| -> u64 { to_cycles(s, clock) };
        // Rounding tRAS and tRP up independently can exceed the rounded
        // tRC; the loop must cover both.
        let loop_cycles = cycles(timing.trc)
            .max(cycles(timing.tras) + cycles(timing.trp))
            .max(2);
        let pre_at = cycles(timing.tras).min(loop_cycles - 1).max(1);
        Self::new(
            vec![
                TimedCommand {
                    cycle: 0,
                    bank: 0,
                    command: Command::Activate,
                },
                TimedCommand {
                    cycle: pre_at,
                    bank: 0,
                    command: Command::Precharge,
                },
            ],
            loop_cycles,
        )
    }

    /// The IDD1 loop: one activate, one read and one precharge on bank
    /// 0, repeating every tRC.
    ///
    /// # Errors
    ///
    /// Returns an error if the timing rounds to a zero-length loop.
    pub fn idd1(timing: &Timing, clock: Hertz) -> Result<Self, ModelError> {
        let cycles = |s: dram_units::Seconds| -> u64 { to_cycles(s, clock) };
        let loop_cycles = cycles(timing.trc)
            .max(cycles(timing.tras) + cycles(timing.trp))
            .max(3);
        let rd_at = cycles(timing.trcd).clamp(1, loop_cycles - 2);
        let pre_at = cycles(timing.tras).clamp(rd_at + 1, loop_cycles - 1);
        Self::new(
            vec![
                TimedCommand {
                    cycle: 0,
                    bank: 0,
                    command: Command::Activate,
                },
                TimedCommand {
                    cycle: rd_at,
                    bank: 0,
                    command: Command::Read,
                },
                TimedCommand {
                    cycle: pre_at,
                    bank: 0,
                    command: Command::Precharge,
                },
            ],
            loop_cycles,
        )
    }

    /// The IDD4 loop: seamless column bursts every `tccd_cycles` on
    /// rotating banks (rows already open). `cmd` selects read (IDD4R) or
    /// write (IDD4W).
    ///
    /// # Errors
    ///
    /// Returns an error for a zero tCCD or bank count.
    pub fn idd4(cmd: Command, tccd_cycles: u32, banks: u32) -> Result<Self, ModelError> {
        if tccd_cycles == 0 || banks == 0 {
            return Err(ModelError::BadParameter {
                name: "idd4",
                reason: "tCCD and bank count must be positive".into(),
            });
        }
        let slots = banks.min(4);
        let commands = (0..slots)
            .map(|i| TimedCommand {
                cycle: u64::from(i * tccd_cycles),
                bank: i % banks,
                command: cmd,
            })
            .collect();
        Self::new(commands, u64::from(slots * tccd_cycles))
    }

    /// An IDD7-style loop: bank-interleaved activates at tRRD with a
    /// column burst per activate, precharging each bank before its next
    /// activate. With enough banks this saturates both the row and the
    /// column machinery.
    ///
    /// # Errors
    ///
    /// Returns an error if the timing produces an empty loop.
    pub fn idd7(
        timing: &Timing,
        clock: Hertz,
        banks: u32,
        tccd_cycles: u32,
    ) -> Result<Self, ModelError> {
        let cycles = |s: dram_units::Seconds| -> u64 { to_cycles(s, clock) };
        let banks = banks.max(1);
        // Activate spacing: limited by tRRD between banks, and by tRC/banks
        // for re-visiting the same bank; also cannot outrun the data bus.
        let spacing = cycles(timing.trrd)
            .max(
                (cycles(timing.trc).max(cycles(timing.tras) + cycles(timing.trp)))
                    .div_ceil(u64::from(banks)),
            )
            // At most four activates per tFAW window.
            .max(cycles(timing.tfaw).div_ceil(4))
            .max(u64::from(tccd_cycles))
            .max(1);
        let trcd = cycles(timing.trcd).max(1);
        let tras = cycles(timing.tras).max(trcd + 1);
        let loop_cycles = spacing * u64::from(banks);
        let mut commands = Vec::new();
        for b in 0..banks {
            let base = spacing * u64::from(b);
            commands.push(TimedCommand {
                cycle: base,
                bank: b,
                command: Command::Activate,
            });
            commands.push(TimedCommand {
                cycle: (base + trcd) % loop_cycles,
                bank: b,
                command: Command::Read,
            });
            commands.push(TimedCommand {
                cycle: (base + tras) % loop_cycles,
                bank: b,
                command: Command::Precharge,
            });
        }
        Self::new(commands, loop_cycles)
    }

    /// Validates the loop against the per-bank and shared-resource timing
    /// constraints, simulating three unrolled iterations.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::TimingViolation`] describing the first
    /// violated constraint.
    pub fn validate(
        &self,
        timing: &Timing,
        clock: Hertz,
        banks: u32,
        tccd_cycles: u32,
        initial: InitialBankState,
    ) -> Result<(), ModelError> {
        let cycles = |s: dram_units::Seconds| -> u64 { to_cycles(s, clock) };
        let trc = cycles(timing.trc);
        let tras = cycles(timing.tras);
        let trp = cycles(timing.trp);
        let trcd = cycles(timing.trcd);
        let trrd = cycles(timing.trrd);
        let tfaw = cycles(timing.tfaw);
        let tccd = u64::from(tccd_cycles);

        const FAR_PAST: i64 = -1_000_000;
        #[derive(Clone, Copy)]
        struct BankState {
            open: bool,
            last_act: i64,
            last_pre: i64,
        }
        let open0 = matches!(initial, InitialBankState::AllOpen);
        let mut state = vec![
            BankState {
                open: open0,
                last_act: FAR_PAST,
                last_pre: FAR_PAST
            };
            banks as usize
        ];
        let mut last_any_act: i64 = FAR_PAST;
        let mut last_column: i64 = FAR_PAST;
        // Issue times of the last four activates, oldest first.
        let mut recent_acts: std::collections::VecDeque<i64> = std::collections::VecDeque::new();

        let fail = |msg: String| Err(ModelError::TimingViolation { message: msg });

        // Iteration 0 is a warm-up: a loop may schedule a wrapped command
        // (e.g. the read of the last bank's activate) that only makes sense
        // in steady state. Constraints are enforced from iteration 1 on.
        for iteration in 0..3i64 {
            let strict = iteration >= 1;
            for c in &self.commands {
                let t = iteration * self.loop_cycles as i64 + c.cycle as i64;
                if c.bank >= banks {
                    return fail(format!("command addresses bank {} of {banks}", c.bank));
                }
                let b = &mut state[c.bank as usize];
                match c.command {
                    Command::Activate => {
                        if strict {
                            if b.open {
                                return fail(format!(
                                    "activate to open bank {} at cycle {t}",
                                    c.bank
                                ));
                            }
                            if t - b.last_act < trc as i64 {
                                return fail(format!(
                                    "tRC violated on bank {} at cycle {t}",
                                    c.bank
                                ));
                            }
                            if t - b.last_pre < trp as i64 {
                                return fail(format!(
                                    "tRP violated on bank {} at cycle {t}",
                                    c.bank
                                ));
                            }
                            if t - last_any_act < trrd as i64 {
                                return fail(format!("tRRD violated at cycle {t}"));
                            }
                            if recent_acts.len() == 4 && t - recent_acts[0] < tfaw as i64 {
                                return fail(format!("tFAW violated at cycle {t}"));
                            }
                        }
                        b.open = true;
                        b.last_act = t;
                        last_any_act = t;
                        recent_acts.push_back(t);
                        if recent_acts.len() > 4 {
                            recent_acts.pop_front();
                        }
                    }
                    Command::Precharge => {
                        // Precharging a precharged bank is a legal no-op.
                        if strict && b.open && t - b.last_act < tras as i64 {
                            return fail(format!("tRAS violated on bank {} at cycle {t}", c.bank));
                        }
                        b.open = false;
                        b.last_pre = t;
                    }
                    Command::Read | Command::Write => {
                        if strict {
                            if !b.open {
                                return fail(format!(
                                    "column access to closed bank {} at cycle {t}",
                                    c.bank
                                ));
                            }
                            if t - b.last_act < trcd as i64 && b.last_act != FAR_PAST {
                                return fail(format!(
                                    "tRCD violated on bank {} at cycle {t}",
                                    c.bank
                                ));
                            }
                            if t - last_column < tccd as i64 {
                                return fail(format!("tCCD violated at cycle {t}"));
                            }
                        }
                        last_column = t;
                    }
                    Command::Refresh => {
                        // Auto-refresh requires every bank precharged;
                        // tRFC is not modeled at pattern granularity.
                        if strict && state.iter().any(|b| b.open) {
                            return fail(format!("refresh with open banks at cycle {t}"));
                        }
                    }
                    // CKE transitions have no bank-timing footprint here;
                    // their legality (matched enter/exit, no commands
                    // while asleep) is enforced by the stream fold.
                    Command::Nop
                    | Command::PowerDownEnter
                    | Command::PowerDownExit
                    | Command::SelfRefreshEnter
                    | Command::SelfRefreshExit => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ddr3_1g_x16_55nm;

    fn fixture() -> (Timing, Hertz) {
        let d = ddr3_1g_x16_55nm();
        (d.timing, d.spec.control_clock)
    }

    #[test]
    fn idd0_loop_is_valid_and_trc_long() {
        let (t, f) = fixture();
        let p = TimedPattern::idd0(&t, f).expect("builds");
        // 49 ns at 800 MHz = 40 cycles.
        assert_eq!(p.loop_cycles(), 40);
        assert_eq!(p.count(Command::Activate), 1);
        assert_eq!(p.count(Command::Precharge), 1);
        p.validate(&t, f, 8, 4, InitialBankState::AllClosed)
            .expect("IDD0 loop is legal");
        // Activate rate is 1/tRC.
        let rate = p.rate(Command::Activate, f);
        assert!((rate.megahertz() - 20.0).abs() < 0.5);
    }

    #[test]
    fn idd4_loop_is_seamless_and_valid() {
        let (t, f) = fixture();
        let p = TimedPattern::idd4(Command::Read, 4, 8).expect("builds");
        assert_eq!(p.loop_cycles(), 16);
        assert_eq!(p.count(Command::Read), 4);
        p.validate(&t, f, 8, 4, InitialBankState::AllOpen)
            .expect("IDD4R loop is legal");
        // One read per tCCD: rate = clock/4.
        let rate = p.rate(Command::Read, f);
        assert!((rate.megahertz() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn idd4_on_closed_banks_is_rejected() {
        let (t, f) = fixture();
        let p = TimedPattern::idd4(Command::Read, 4, 8).expect("builds");
        let err = p
            .validate(&t, f, 8, 4, InitialBankState::AllClosed)
            .unwrap_err();
        assert!(err.to_string().contains("closed bank"));
    }

    #[test]
    fn idd7_loop_is_valid() {
        let (t, f) = fixture();
        let p = TimedPattern::idd7(&t, f, 8, 4).expect("builds");
        p.validate(&t, f, 8, 4, InitialBankState::AllClosed)
            .expect("IDD7 loop is legal");
        assert_eq!(p.count(Command::Activate), 8);
        assert_eq!(p.count(Command::Read), 8);
        assert_eq!(p.count(Command::Precharge), 8);
        // Activates are spaced at least tRC/8 apart, so all eight fit.
        assert!(p.loop_cycles() >= 40);
    }

    #[test]
    fn trc_violation_is_detected() {
        let (t, f) = fixture();
        // Activate + precharge squeezed into half a tRC.
        let p = TimedPattern::new(
            vec![
                TimedCommand {
                    cycle: 0,
                    bank: 0,
                    command: Command::Activate,
                },
                TimedCommand {
                    cycle: 28,
                    bank: 0,
                    command: Command::Precharge,
                },
            ],
            20, // loop shorter than tRC=40 cycles -> impossible
        );
        // cycle 28 outside loop of 20 -> construction error
        assert!(p.is_err());
        let p = TimedPattern::new(
            vec![
                TimedCommand {
                    cycle: 0,
                    bank: 0,
                    command: Command::Activate,
                },
                TimedCommand {
                    cycle: 15,
                    bank: 0,
                    command: Command::Precharge,
                },
            ],
            20,
        )
        .expect("builds");
        let err = p
            .validate(&t, f, 8, 4, InitialBankState::AllClosed)
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("tRC") || msg.contains("tRAS") || msg.contains("tRP"),
            "{msg}"
        );
    }

    #[test]
    fn tccd_violation_is_detected() {
        let (t, f) = fixture();
        let p = TimedPattern::new(
            vec![
                TimedCommand {
                    cycle: 0,
                    bank: 0,
                    command: Command::Read,
                },
                TimedCommand {
                    cycle: 1,
                    bank: 1,
                    command: Command::Read,
                },
            ],
            8,
        )
        .expect("builds");
        let err = p
            .validate(&t, f, 8, 4, InitialBankState::AllOpen)
            .unwrap_err();
        assert!(err.to_string().contains("tCCD"));
    }

    #[test]
    fn tfaw_violation_is_detected() {
        let (t, f) = fixture();
        // Five activates on different banks at tRRD spacing (6 cycles):
        // the fifth lands 24 cycles after the first, inside the 32-cycle
        // tFAW window. Each bank precharges after tRAS so the loop is
        // otherwise legal.
        let mut cmds: Vec<TimedCommand> = Vec::new();
        for i in 0..5u32 {
            let base = u64::from(i) * 6;
            cmds.push(TimedCommand {
                cycle: base,
                bank: i,
                command: Command::Activate,
            });
            cmds.push(TimedCommand {
                cycle: base + 30,
                bank: i,
                command: Command::Precharge,
            });
        }
        let p = TimedPattern::new(cmds, 128).expect("builds");
        let err = p
            .validate(&t, f, 8, 4, InitialBankState::AllClosed)
            .unwrap_err();
        assert!(err.to_string().contains("tFAW"), "{err}");
    }

    #[test]
    fn four_activates_within_the_window_are_legal() {
        let (t, f) = fixture();
        // Exactly four activates at tRRD spacing, next group a full tFAW
        // later: legal.
        let mut cmds = Vec::new();
        for group in 0..2u64 {
            for i in 0..4u64 {
                let base = group * 40 + i * 6;
                let bank = u32::try_from(group * 4 + i).expect("bank");
                cmds.push(TimedCommand {
                    cycle: base,
                    bank,
                    command: Command::Activate,
                });
                cmds.push(TimedCommand {
                    cycle: base + 30,
                    bank,
                    command: Command::Precharge,
                });
            }
        }
        let p = TimedPattern::new(cmds, 128).expect("builds");
        p.validate(&t, f, 8, 4, InitialBankState::AllClosed)
            .expect("four per window is legal");
    }

    #[test]
    fn activate_to_open_bank_is_detected() {
        let (t, f) = fixture();
        let p = TimedPattern::new(
            vec![TimedCommand {
                cycle: 0,
                bank: 0,
                command: Command::Activate,
            }],
            60,
        )
        .expect("builds");
        // Second iteration activates the still-open bank.
        let err = p
            .validate(&t, f, 8, 4, InitialBankState::AllClosed)
            .unwrap_err();
        assert!(err.to_string().contains("open bank"));
    }

    #[test]
    fn nops_are_dropped_and_commands_sorted() {
        let p = TimedPattern::new(
            vec![
                TimedCommand {
                    cycle: 5,
                    bank: 0,
                    command: Command::Precharge,
                },
                TimedCommand {
                    cycle: 2,
                    bank: 0,
                    command: Command::Nop,
                },
                TimedCommand {
                    cycle: 0,
                    bank: 0,
                    command: Command::Activate,
                },
            ],
            10,
        )
        .expect("builds");
        assert_eq!(p.commands().len(), 2);
        assert_eq!(p.commands()[0].command, Command::Activate);
    }

    #[test]
    fn zero_loop_is_rejected() {
        assert!(TimedPattern::new(vec![], 0).is_err());
    }
}
