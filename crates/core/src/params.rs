//! The DRAM description: every parameter of Table I of the paper, grouped
//! exactly as the paper groups them — physical floorplan, signaling
//! floorplan, specification, basic electrical information, technology, and
//! miscellaneous logic blocks.
//!
//! A [`DramDescription`] is pure data. Validation and all derived geometry
//! live in [`crate::geometry`] and [`crate::Dram`]; the description can
//! therefore be freely mutated (the sensitivity crate perturbs individual
//! fields) and only re-validated when a model is built from it.

use std::collections::BTreeMap;

use dram_units::{Amperes, BitsPerSecond, Farads, FaradsPerMeter, Hertz, Meters, Seconds, Volts};

/// Complete description of one DRAM device: the input of the power model
/// (the paper's §III.B input file, Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct DramDescription {
    /// Human-readable device name, e.g. `"1Gb DDR3 x16 55nm"`.
    pub name: String,
    /// Physical device floorplan (§III.B.1).
    pub floorplan: PhysicalFloorplan,
    /// Signaling floorplan: the long buses and their re-drivers (§III.B.2).
    pub signaling: SignalingFloorplan,
    /// Process technology parameters (§III.B.3).
    pub technology: Technology,
    /// Basic electrical information: voltage domains and generator
    /// efficiencies.
    pub electrical: Electrical,
    /// Interface specification (§III.B.4).
    pub spec: Specification,
    /// Row/column timing used to build operation patterns.
    pub timing: Timing,
    /// Miscellaneous peripheral logic blocks (§III.B.5) — the model's fit
    /// parameters.
    pub logic_blocks: Vec<LogicBlock>,
}

/// Axis of a wire or block arrangement on the die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Horizontal: parallel to the center pad row.
    Horizontal,
    /// Vertical: perpendicular to the center pad row.
    Vertical,
}

impl Axis {
    /// The other axis.
    #[must_use]
    pub fn perpendicular(self) -> Self {
        match self {
            Axis::Horizontal => Axis::Vertical,
            Axis::Vertical => Axis::Horizontal,
        }
    }
}

/// Bitline/cell architecture of the array (Table II transitions move
/// devices from folded 8F² to open 6F² and onward).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitlineArchitecture {
    /// Folded bitline, 8F² cell: true and complement bitline run side by
    /// side in the same sub-array; cells sit at every other
    /// bitline/wordline crossing; the sense-amplifier carries bitline
    /// multiplexer devices.
    Folded,
    /// Open bitline, 6F² cell: the complement (reference) bitline lies in
    /// the adjacent sub-array; cells sit at every crossing.
    Open,
    /// Vertical-access-transistor 4F² cell with open bitlines (the
    /// 40 nm → 36 nm disruption of Table II).
    Vertical4F2,
}

impl BitlineArchitecture {
    /// Cell area in units of F² (squared feature size).
    #[must_use]
    pub fn cell_area_f2(self) -> f64 {
        match self {
            BitlineArchitecture::Folded => 8.0,
            BitlineArchitecture::Open => 6.0,
            BitlineArchitecture::Vertical4F2 => 4.0,
        }
    }

    /// Number of bitline pitches occupied by one cell along the wordline.
    #[must_use]
    pub fn bitline_pitches_per_cell(self) -> u32 {
        match self {
            BitlineArchitecture::Folded => 2,
            BitlineArchitecture::Open | BitlineArchitecture::Vertical4F2 => 1,
        }
    }

    /// Whether the sense-amplifier stripe carries bitline multiplexer
    /// devices (folded-bitline only, see Table I).
    #[must_use]
    pub fn has_bitline_mux(self) -> bool {
        matches!(self, BitlineArchitecture::Folded)
    }
}

/// §III.B.1 — physical floorplan.
///
/// The die is a grid: a sequence of block columns (left→right) crossed with
/// a sequence of block rows (bottom→top), exactly the coordinate system the
/// paper establishes ("blocks are numbered 0 to 6 in horizontal direction
/// and 0 to 4 in vertical direction"). Block types whose name starts with
/// `A` are array blocks; grid cells that are array-typed on **both** axes
/// are banks. Array block dimensions are *computed* from the cell pitches,
/// stripe widths and the address organization; peripheral block dimensions
/// are given here.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalFloorplan {
    /// Direction in which bitlines run. `Vertical` matches Fig. 1 (pad row
    /// horizontal through the center stripe).
    pub bitline_direction: Axis,
    /// Cells per bitline (256–512 in commodity parts).
    pub bits_per_bitline: u32,
    /// Cells per local wordline (sub-wordline).
    pub bits_per_local_wordline: u32,
    /// Folded or open bitline architecture.
    pub bitline_architecture: BitlineArchitecture,
    /// Number of array blocks sharing one column select line (CSL wiring
    /// continues across this many blocks).
    pub blocks_per_csl: u32,
    /// Wordline pitch (spacing of adjacent wordlines, i.e. cell pitch along
    /// the bitline).
    pub wordline_pitch: Meters,
    /// Bitline pitch (spacing of adjacent bitlines).
    pub bitline_pitch: Meters,
    /// Width of the bitline sense-amplifier stripe.
    pub sa_stripe_width: Meters,
    /// Width of the local (sub-)wordline driver stripe.
    pub lwd_stripe_width: Meters,
    /// Block-type sequence along the horizontal axis, e.g.
    /// `["A1", "P1", "A1", "P1", "A1", "P1", "A1"]`.
    pub horizontal_blocks: Vec<String>,
    /// Block-type sequence along the vertical axis, e.g.
    /// `["A1", "P1", "P2", "P1", "A1"]`.
    pub vertical_blocks: Vec<String>,
    /// Widths of peripheral block types appearing in
    /// [`Self::horizontal_blocks`]. Array block widths are computed.
    pub horizontal_sizes: BTreeMap<String, Meters>,
    /// Heights of peripheral block types appearing in
    /// [`Self::vertical_blocks`]. Array block heights are computed.
    pub vertical_sizes: BTreeMap<String, Meters>,
}

impl PhysicalFloorplan {
    /// Returns `true` if the named block type is an array block.
    ///
    /// By convention (and matching the paper's `A1` notation) array block
    /// type names start with `A`.
    #[must_use]
    pub fn is_array_type(name: &str) -> bool {
        name.starts_with('A')
    }
}

/// Identifies one bus in the signaling floorplan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalClass {
    /// Write data from the interface to the banks.
    WriteData,
    /// Read data from the banks to the interface.
    ReadData,
    /// Row address from the control logic to the row decoders.
    RowAddress,
    /// Column address to the column decoders.
    ColumnAddress,
    /// Bank address.
    BankAddress,
    /// Miscellaneous control signals.
    Control,
    /// Clock distribution.
    Clock,
}

impl SignalClass {
    /// All signal classes, for iteration/coverage checks.
    pub const ALL: [SignalClass; 7] = [
        SignalClass::WriteData,
        SignalClass::ReadData,
        SignalClass::RowAddress,
        SignalClass::ColumnAddress,
        SignalClass::BankAddress,
        SignalClass::Control,
        SignalClass::Clock,
    ];
}

/// Grid coordinate of a block in the physical floorplan: `(x, y)` indices
/// into the horizontal and vertical block sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockCoord {
    /// Index into [`PhysicalFloorplan::horizontal_blocks`].
    pub x: usize,
    /// Index into [`PhysicalFloorplan::vertical_blocks`].
    pub y: usize,
}

impl BlockCoord {
    /// Creates a coordinate; mirrors the paper's `0_2` notation.
    #[must_use]
    pub fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }
}

impl core::fmt::Display for BlockCoord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}_{}", self.x, self.y)
    }
}

/// A re-driver (buffer) inserted into a signal wire segment, described by
/// the widths of its output devices (Table I: "Width of NMOS/PMOS of buffer
/// in signal wire segment").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferDevice {
    /// Gate width of the NMOS pull-down.
    pub nmos_width: Meters,
    /// Gate width of the PMOS pull-up.
    pub pmos_width: Meters,
}

/// One wire segment of a signal path (§III.B.2).
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentSpec {
    /// A segment running from the center of one block to the center of
    /// another ("Signal segments from one block to another are assumed to
    /// extend from block center to block center").
    Between {
        /// Source block.
        from: BlockCoord,
        /// Destination block.
        to: BlockCoord,
        /// Optional re-driver at the head of the segment.
        buffer: Option<BufferDevice>,
    },
    /// A segment inside a single block, with length given as a fraction of
    /// the block extent along `dir` ("segments inside one block need to
    /// have their relative length with respect to the block and their
    /// direction defined").
    Inside {
        /// The containing block.
        at: BlockCoord,
        /// Fraction (0..=1) of the block extent along `dir`.
        fraction: f64,
        /// Direction of the wire run.
        dir: Axis,
        /// Optional re-driver at the head of the segment.
        buffer: Option<BufferDevice>,
        /// Optional serialization/deserialization ratio realized at this
        /// segment (the `mux=1:8` of the paper's example). The wire count
        /// downstream of this segment is multiplied by the ratio.
        mux: Option<u32>,
    },
}

/// Number of parallel wires carried by a signal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireCount {
    /// Explicit wire count.
    Explicit(u32),
    /// One wire per DQ pin (resolved from the specification).
    PerIo,
    /// One wire per row address bit.
    RowAddressBits,
    /// One wire per column address bit.
    ColumnAddressBits,
    /// One wire per bank address bit.
    BankAddressBits,
    /// One wire per miscellaneous control signal.
    ControlSignals,
    /// One wire per clock wire on die.
    ClockWires,
}

/// A named signal path: an ordered run of wire segments from source to
/// destination, with a toggle rate relative to the path's base event rate
/// (Table I: "Rate of toggling of signal wire segment").
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSpec {
    /// Path name, e.g. `"DataW"` in the paper's example.
    pub name: String,
    /// Which bus this is; determines when it toggles and at what frequency.
    pub class: SignalClass,
    /// Number of parallel wires.
    pub wires: WireCount,
    /// Activity factor: average fraction of wires toggling per event.
    pub toggle_rate: f64,
    /// The wire segments, in signal-flow order.
    pub segments: Vec<SegmentSpec>,
}

/// §III.B.2 — the signaling floorplan: all modeled long-wire buses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SignalingFloorplan {
    /// The signal paths.
    pub signals: Vec<SignalSpec>,
}

impl SignalingFloorplan {
    /// Returns all paths of a given class.
    pub fn of_class(&self, class: SignalClass) -> impl Iterator<Item = &SignalSpec> {
        self.signals.iter().filter(move |s| s.class == class)
    }
}

/// A transistor described by gate width and length (the form every device
/// parameter of Table I takes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceGeometry {
    /// Gate width.
    pub width: Meters,
    /// Gate length.
    pub length: Meters,
}

impl DeviceGeometry {
    /// Creates a device geometry from width and length in micrometers.
    #[must_use]
    pub fn from_um(width_um: f64, length_um: f64) -> Self {
        Self {
            width: Meters::from_um(width_um),
            length: Meters::from_um(length_um),
        }
    }

    /// Gate area `W × L`.
    #[must_use]
    pub fn gate_area(&self) -> dram_units::SquareMeters {
        self.width * self.length
    }
}

/// §III.B.3 — the 39 technology parameters of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    // --- oxides ---
    /// Gate oxide thickness of general logic transistors (equivalent SiO₂).
    pub tox_logic: Meters,
    /// Gate oxide thickness of high-voltage (Vpp domain) transistors.
    pub tox_high_voltage: Meters,
    /// Gate oxide thickness of the cell access transistor.
    pub tox_cell: Meters,
    // --- logic devices ---
    /// Minimum gate length of general logic transistors.
    pub lmin_logic: Meters,
    /// Junction capacitance per gate width of general logic transistors.
    pub junction_cap_logic: FaradsPerMeter,
    /// Minimum gate length of high-voltage transistors.
    pub lmin_high_voltage: Meters,
    /// Junction capacitance per gate width of high-voltage transistors.
    pub junction_cap_high_voltage: FaradsPerMeter,
    // --- cell ---
    /// Gate length of the cell access transistor.
    pub cell_access_length: Meters,
    /// Gate width of the cell access transistor.
    pub cell_access_width: Meters,
    /// Total bitline capacitance.
    pub bitline_cap: Farads,
    /// Storage cell capacitance.
    pub cell_cap: Farads,
    /// Share of the bitline capacitance that couples to the wordline
    /// (charged to Vpp as the wordline rises).
    pub bl_to_wl_cap_share: f64,
    /// Bits (sense-amplifiers) connected per column select line in each
    /// sub-array.
    pub bits_per_csl_per_subarray: u32,
    // --- row path ---
    /// Specific wire capacitance of the master wordline.
    pub c_wire_mwl: FaradsPerMeter,
    /// Pre-decode ratio of the master wordline (fraction of decoder nodes
    /// toggling per row access; Table I "Pre-decode ratio master wordline").
    pub mwl_predecode_ratio: f64,
    /// Master wordline decoder pull-down NMOS width.
    pub mwl_decoder_nmos_width: Meters,
    /// Master wordline decoder PMOS width.
    pub mwl_decoder_pmos_width: Meters,
    /// Average amount of switching of the master wordline decoder per row
    /// operation (Table I).
    pub mwl_decoder_switching: f64,
    /// Wordline controller load NMOS gate width.
    pub wl_controller_nmos_width: Meters,
    /// Wordline controller load PMOS gate width.
    pub wl_controller_pmos_width: Meters,
    /// Sub-wordline (local wordline) driver NMOS width.
    pub swd_nmos_width: Meters,
    /// Sub-wordline driver PMOS width.
    pub swd_pmos_width: Meters,
    /// Sub-wordline driver restore (keeper) NMOS width.
    pub swd_restore_nmos_width: Meters,
    /// Specific wire capacitance of the sub-wordline (gate poly plus strap).
    pub c_wire_lwl: FaradsPerMeter,
    // --- sense amplifier devices (Fig. 2) ---
    /// NMOS sense pair device.
    pub sa_nmos_sense: DeviceGeometry,
    /// PMOS sense pair device.
    pub sa_pmos_sense: DeviceGeometry,
    /// Equalize devices (three per sense amplifier).
    pub sa_equalize: DeviceGeometry,
    /// Bit switch (column select) devices.
    pub sa_bit_switch: DeviceGeometry,
    /// Bitline multiplexer devices (folded bitline only).
    pub sa_bitline_mux: DeviceGeometry,
    /// NMOS set (NSET driver) devices, per stripe.
    pub sa_nset: DeviceGeometry,
    /// PMOS set (PSET driver) devices, per stripe.
    pub sa_pset: DeviceGeometry,
    // --- wiring ---
    /// Specific wire capacitance of general signaling wires.
    pub c_wire_signal: FaradsPerMeter,
}

/// Basic electrical information: the four voltage domains of §III.A and the
/// generator/pump efficiencies converting them to external supply power.
#[derive(Debug, Clone, PartialEq)]
pub struct Electrical {
    /// External supply voltage Vdd.
    pub vdd: Volts,
    /// Voltage used for general logic (Vint), regulated from or tied to Vdd.
    pub vint: Volts,
    /// Bitline (cell array) voltage Vbl.
    pub vbl: Volts,
    /// Boosted wordline voltage Vpp.
    pub vpp: Volts,
    /// Charge-transfer efficiency of the Vint regulator: output charge
    /// over input charge drawn from Vdd. `1.0` means Vint is directly
    /// connected to Vdd.
    pub eff_vint: f64,
    /// Charge-transfer efficiency of the Vbl supply.
    pub eff_vbl: f64,
    /// Charge-transfer efficiency of the Vpp charge pump (a lossless
    /// n-stage pump has 1/n; typical realized values are 0.15–0.25).
    pub eff_vpp: f64,
    /// Constant current sink from Vdd (reference currents, power system;
    /// Table I).
    pub constant_current: Amperes,
}

/// §III.B.4 — the interface specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Specification {
    /// Number of DQ pins (I/O width).
    pub io_width: u32,
    /// Data rate per DQ pin.
    pub datarate_per_pin: BitsPerSecond,
    /// Number of clock wires on die.
    pub clock_wires: u32,
    /// Data clock frequency.
    pub data_clock: Hertz,
    /// Control (command/address) clock frequency.
    pub control_clock: Hertz,
    /// Number of bank address bits.
    pub bank_address_bits: u32,
    /// Number of row address bits.
    pub row_address_bits: u32,
    /// Number of column address bits.
    pub column_address_bits: u32,
    /// Number of miscellaneous control signals.
    pub control_signals: u32,
    /// Prefetch: internal bits transferred per DQ per column access
    /// (1 for SDR, 2 for DDR, 4 for DDR2, 8 for DDR3, …).
    pub prefetch: u32,
    /// Burst length in beats on the interface.
    pub burst_length: u32,
}

impl Specification {
    /// Number of banks, `2^bank_address_bits`.
    #[must_use]
    pub fn banks(&self) -> u32 {
        1 << self.bank_address_bits
    }

    /// Rows per bank, `2^row_address_bits`.
    #[must_use]
    pub fn rows_per_bank(&self) -> u64 {
        1 << self.row_address_bits
    }

    /// Page size in bits: `2^column_address_bits × io_width`.
    #[must_use]
    pub fn page_bits(&self) -> u64 {
        (1u64 << self.column_address_bits) * u64::from(self.io_width)
    }

    /// Total device density in bits.
    #[must_use]
    pub fn density_bits(&self) -> u64 {
        u64::from(self.banks()) * self.rows_per_bank() * self.page_bits()
    }

    /// Bits moved through the core per column command (`io_width ×
    /// prefetch`).
    #[must_use]
    pub fn bits_per_column_access(&self) -> u32 {
        self.io_width * self.prefetch
    }

    /// Peak interface bandwidth, all DQ pins together.
    #[must_use]
    pub fn peak_bandwidth(&self) -> BitsPerSecond {
        self.datarate_per_pin * f64::from(self.io_width)
    }
}

/// Row/column timing parameters used to construct operation patterns and
/// refresh behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Timing {
    /// Row cycle time tRC (activate-to-activate, same bank).
    pub trc: Seconds,
    /// Activate-to-precharge tRAS.
    pub tras: Seconds,
    /// Precharge time tRP.
    pub trp: Seconds,
    /// Activate-to-column tRCD.
    pub trcd: Seconds,
    /// Activate-to-activate, different banks, tRRD.
    pub trrd: Seconds,
    /// Four-activate window tFAW: at most four activates within it
    /// (limits how hard interleaving can drive the shared row machinery
    /// and the Vpp pump).
    pub tfaw: Seconds,
    /// Refresh cycle time tRFC.
    pub trfc: Seconds,
    /// Average periodic refresh interval tREFI.
    pub trefi: Seconds,
    /// Column-to-column delay in control-clock cycles (tCCD).
    pub tccd_cycles: u32,
}

/// Operations during which a logic block is active (Table I: "Operation(s)
/// during which logic block is active").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActiveDuring {
    /// Toggles continuously whenever the clock runs (background power).
    pub always: bool,
    /// Toggles during an activate command.
    pub activate: bool,
    /// Toggles during a precharge command.
    pub precharge: bool,
    /// Toggles during a read command.
    pub read: bool,
    /// Toggles during a write command.
    pub write: bool,
}

impl ActiveDuring {
    /// Active only as continuous background.
    pub const ALWAYS: Self = Self {
        always: true,
        activate: false,
        precharge: false,
        read: false,
        write: false,
    };

    /// Active during row operations (activate and precharge).
    pub const ROW_OPS: Self = Self {
        always: false,
        activate: true,
        precharge: true,
        read: false,
        write: false,
    };

    /// Active during column operations (read and write).
    pub const COLUMN_OPS: Self = Self {
        always: false,
        activate: false,
        precharge: false,
        read: true,
        write: true,
    };
}

/// §III.B.5 — a miscellaneous peripheral logic block. The gate counts are
/// the model's fit parameters against datasheet power.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicBlock {
    /// Block name, e.g. `"command decode"`.
    pub name: String,
    /// Number of gates in the block.
    pub gates: u32,
    /// Average NMOS gate width in the block.
    pub avg_nmos_width: Meters,
    /// Average PMOS gate width in the block.
    pub avg_pmos_width: Meters,
    /// Average number of transistors per gate.
    pub transistors_per_gate: f64,
    /// Layout density: fraction of block area covered with transistor
    /// gates.
    pub gate_density: f64,
    /// Wiring density: fraction of block area covered with local wiring.
    pub wiring_density: f64,
    /// When the block is active.
    pub active_during: ActiveDuring,
    /// Rate of toggling relative to the control clock (activity factor).
    pub toggle_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specification_derived_quantities() {
        // 1 Gb DDR3 x16: 3 bank bits, 13 row bits, 10 column bits.
        let spec = Specification {
            io_width: 16,
            datarate_per_pin: BitsPerSecond::from_gbps(1.6),
            clock_wires: 1,
            data_clock: Hertz::from_mhz(800.0),
            control_clock: Hertz::from_mhz(800.0),
            bank_address_bits: 3,
            row_address_bits: 13,
            column_address_bits: 10,
            control_signals: 10,
            prefetch: 8,
            burst_length: 8,
        };
        assert_eq!(spec.banks(), 8);
        assert_eq!(spec.rows_per_bank(), 8192);
        assert_eq!(spec.page_bits(), 16 * 1024);
        assert_eq!(spec.density_bits(), 1 << 30);
        assert_eq!(spec.bits_per_column_access(), 128);
        assert!((spec.peak_bandwidth().gbps() - 25.6).abs() < 1e-9);
    }

    #[test]
    fn bitline_architecture_properties() {
        assert_eq!(BitlineArchitecture::Folded.cell_area_f2(), 8.0);
        assert_eq!(BitlineArchitecture::Open.cell_area_f2(), 6.0);
        assert_eq!(BitlineArchitecture::Vertical4F2.cell_area_f2(), 4.0);
        assert!(BitlineArchitecture::Folded.has_bitline_mux());
        assert!(!BitlineArchitecture::Open.has_bitline_mux());
        assert_eq!(BitlineArchitecture::Folded.bitline_pitches_per_cell(), 2);
        assert_eq!(BitlineArchitecture::Open.bitline_pitches_per_cell(), 1);
    }

    #[test]
    fn block_coord_display_matches_paper_notation() {
        assert_eq!(BlockCoord::new(0, 2).to_string(), "0_2");
        assert_eq!(BlockCoord::new(3, 2).to_string(), "3_2");
    }

    #[test]
    fn axis_perpendicular() {
        assert_eq!(Axis::Horizontal.perpendicular(), Axis::Vertical);
        assert_eq!(Axis::Vertical.perpendicular(), Axis::Horizontal);
    }

    #[test]
    fn array_type_naming_convention() {
        assert!(PhysicalFloorplan::is_array_type("A1"));
        assert!(PhysicalFloorplan::is_array_type("A2"));
        assert!(!PhysicalFloorplan::is_array_type("P1"));
    }

    #[test]
    fn device_geometry_area() {
        let d = DeviceGeometry::from_um(1.0, 0.1);
        assert!((d.gate_area().square_micrometers() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn active_during_presets() {
        assert!(ActiveDuring::ALWAYS.always);
        assert!(!ActiveDuring::ALWAYS.read);
        assert!(ActiveDuring::ROW_OPS.activate && ActiveDuring::ROW_OPS.precharge);
        assert!(ActiveDuring::COLUMN_OPS.read && ActiveDuring::COLUMN_OPS.write);
        assert!(!ActiveDuring::COLUMN_OPS.activate);
    }
}
