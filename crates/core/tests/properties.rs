//! Property tests of the core model: geometry invariants under random
//! organizations, timing-pattern legality, pattern parsing, and charge
//! accounting scaling laws.

use dram_core::geometry::Geometry;
use dram_core::reference::ddr3_1g_x16_55nm;
use dram_core::timing::{InitialBankState, TimedPattern};
use dram_core::{Command, Dram, Pattern};
use dram_units::{Meters, Seconds};
use proptest::prelude::*;

/// Random but self-consistent address organizations around the reference
/// density.
fn organization() -> impl Strategy<Value = (u32, u32, u32, u32)> {
    // (bits_per_bl exp, bits_per_lwl exp, col bits, row bits): density
    // fixed at 1 Gb x16 with 8 banks -> row + col = 23.
    (8u32..=10, 9u32..=10, 9u32..=11).prop_map(|(bl_exp, lwl_exp, col)| {
        let row = 23 - col;
        (1 << bl_exp, 1 << lwl_exp, col, row)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn geometry_invariants_hold_for_random_organizations(
        (bpb, bplwl, col, row) in organization(),
        wlp_nm in 100.0f64..300.0,
        blp_nm in 80.0f64..200.0,
        stripe_um in 3.0f64..20.0,
    ) {
        let mut desc = ddr3_1g_x16_55nm();
        desc.floorplan.bits_per_bitline = bpb;
        desc.floorplan.bits_per_local_wordline = bplwl;
        desc.spec.column_address_bits = col;
        desc.spec.row_address_bits = row;
        desc.floorplan.wordline_pitch = Meters::from_nm(wlp_nm);
        desc.floorplan.bitline_pitch = Meters::from_nm(blp_nm);
        desc.floorplan.sa_stripe_width = Meters::from_um(stripe_um);

        // Organizations that do not divide evenly must be rejected, the
        // rest must produce consistent geometry.
        let page = desc.spec.page_bits();
        let rows = desc.spec.rows_per_bank();
        let divisible =
            page.is_multiple_of(u64::from(bplwl)) && rows.is_multiple_of(u64::from(bpb));
        match Geometry::new(&desc) {
            Ok(g) => {
                prop_assert!(divisible);
                // Capacity conservation.
                let bits = g.banks.len() as u64
                    * u64::from(g.sub_rows)
                    * u64::from(g.sub_cols)
                    * u64::from(bpb)
                    * u64::from(bplwl);
                prop_assert_eq!(bits, desc.spec.density_bits());
                // The die contains its banks.
                prop_assert!(g.die_width.meters() > 0.0);
                prop_assert!(g.die_area().square_meters()
                    > g.block_along_wl.meters() * g.block_along_bl.meters() * 8.0 * 0.99);
                // Wire lengths are consistent with the grid.
                prop_assert!(
                    (g.master_wordline_length().meters()
                        - g.block_along_wl.meters()).abs() < 1e-12
                );
            }
            Err(_) => prop_assert!(!divisible),
        }
    }

    #[test]
    fn standard_loops_stay_legal_under_random_timing(
        trc_ns in 35.0f64..80.0,
        tras_frac in 0.55f64..0.8,
        trcd_ns in 10.0f64..20.0,
        trrd_ns in 4.0f64..12.0,
        clock_mhz in 200.0f64..1000.0,
    ) {
        let mut desc = ddr3_1g_x16_55nm();
        desc.timing.trc = Seconds::from_ns(trc_ns);
        desc.timing.tras = Seconds::from_ns(trc_ns * tras_frac);
        desc.timing.trp = Seconds::from_ns(trc_ns * (1.0 - tras_frac));
        desc.timing.trcd = Seconds::from_ns(trcd_ns.min(trc_ns * tras_frac * 0.8));
        desc.timing.trrd = Seconds::from_ns(trrd_ns);
        desc.spec.control_clock = dram_units::Hertz::from_mhz(clock_mhz);
        desc.spec.data_clock = desc.spec.control_clock;

        let timing = &desc.timing;
        let clock = desc.spec.control_clock;

        let idd0 = TimedPattern::idd0(timing, clock).expect("builds");
        prop_assert!(idd0
            .validate(timing, clock, 8, timing.tccd_cycles, InitialBankState::AllClosed)
            .is_ok());

        let idd1 = TimedPattern::idd1(timing, clock).expect("builds");
        prop_assert!(idd1
            .validate(timing, clock, 8, timing.tccd_cycles, InitialBankState::AllClosed)
            .is_ok(), "idd1 illegal at trc={trc_ns} clock={clock_mhz}");

        let idd7 = TimedPattern::idd7(timing, clock, 8, timing.tccd_cycles).expect("builds");
        prop_assert!(idd7
            .validate(timing, clock, 8, timing.tccd_cycles, InitialBankState::AllClosed)
            .is_ok(), "idd7 illegal at trc={trc_ns} trrd={trrd_ns} clock={clock_mhz}");
    }

    #[test]
    fn idd_report_is_finite_and_ordered_under_random_timing(
        trc_ns in 40.0f64..70.0,
        clock_mhz in 300.0f64..900.0,
    ) {
        let mut desc = ddr3_1g_x16_55nm();
        desc.timing.trc = Seconds::from_ns(trc_ns);
        desc.timing.tras = Seconds::from_ns(trc_ns * 0.7);
        desc.spec.control_clock = dram_units::Hertz::from_mhz(clock_mhz);
        desc.spec.data_clock = desc.spec.control_clock;
        let dram = Dram::new(desc).expect("valid");
        let idd = dram.idd();
        for i in [idd.idd0, idd.idd1, idd.idd2n, idd.idd2p, idd.idd4r, idd.idd4w, idd.idd5, idd.idd6, idd.idd7] {
            prop_assert!(i.amperes().is_finite() && i.amperes() > 0.0);
        }
        prop_assert!(idd.idd1 >= idd.idd0);
        prop_assert!(idd.idd0 > idd.idd2n);
        prop_assert!(idd.idd2n > idd.idd2p);
        prop_assert!(idd.idd6 > idd.idd2p);
    }

    #[test]
    fn pattern_parser_never_panics(tokens in prop::collection::vec("[a-z]{1,6}", 0..12)) {
        let text = tokens.join(" ");
        let _ = Pattern::parse(&text); // must not panic
    }

    #[test]
    fn pattern_roundtrip(cmds in prop::collection::vec(
        prop::sample::select(vec![
            Command::Activate, Command::Precharge, Command::Read,
            Command::Write, Command::Nop,
        ]), 1..32))
    {
        let p = Pattern::new(cmds).expect("nonempty");
        let text = p.to_string();
        let back = Pattern::parse(&text).expect("own output parses");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn activate_energy_scales_linearly_with_bitline_cap(scale in 0.5f64..2.0) {
        let base = Dram::new(ddr3_1g_x16_55nm()).expect("valid");
        let base_item = base
            .operation_energy(dram_core::Operation::Activate)
            .items
            .iter()
            .find(|i| i.label == "bitline sensing")
            .expect("item")
            .external
            .joules();
        let mut desc = ddr3_1g_x16_55nm();
        desc.technology.bitline_cap = desc.technology.bitline_cap * scale;
        let scaled = Dram::new(desc).expect("valid");
        let scaled_item = scaled
            .operation_energy(dram_core::Operation::Activate)
            .items
            .iter()
            .find(|i| i.label == "bitline sensing")
            .expect("item")
            .external
            .joules();
        prop_assert!((scaled_item / base_item - scale).abs() < 1e-9);
    }
}
