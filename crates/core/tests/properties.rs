//! Randomized tests of the core model: geometry invariants under random
//! organizations, timing-pattern legality, pattern parsing, and charge
//! accounting scaling laws.
//!
//! Driven by deterministic [`SplitMix64`] loops instead of `proptest` so
//! the workspace resolves offline; every assertion prints the drawn
//! inputs for reproduction.

use dram_core::geometry::Geometry;
use dram_core::reference::ddr3_1g_x16_55nm;
use dram_core::timing::{InitialBankState, TimedPattern};
use dram_core::{Command, Dram, Pattern};
use dram_units::rng::SplitMix64;
use dram_units::{Meters, Seconds};

/// Random but self-consistent address organization around the reference
/// density: (bits_per_bl, bits_per_lwl, col bits, row bits). Density is
/// fixed at 1 Gb x16 with 8 banks -> row + col = 23.
fn organization(r: &mut SplitMix64) -> (u32, u32, u32, u32) {
    let bl_exp = 8 + r.range_u32(3); // 8..=10
    let lwl_exp = 9 + r.range_u32(2); // 9..=10
    let col = 9 + r.range_u32(3); // 9..=11
    let row = 23 - col;
    (1 << bl_exp, 1 << lwl_exp, col, row)
}

#[test]
fn geometry_invariants_hold_for_random_organizations() {
    let mut r = SplitMix64::new(0xC001);
    for _ in 0..64 {
        let (bpb, bplwl, col, row) = organization(&mut r);
        let wlp_nm = r.range_f64(100.0, 300.0);
        let blp_nm = r.range_f64(80.0, 200.0);
        let stripe_um = r.range_f64(3.0, 20.0);

        let mut desc = ddr3_1g_x16_55nm();
        desc.floorplan.bits_per_bitline = bpb;
        desc.floorplan.bits_per_local_wordline = bplwl;
        desc.spec.column_address_bits = col;
        desc.spec.row_address_bits = row;
        desc.floorplan.wordline_pitch = Meters::from_nm(wlp_nm);
        desc.floorplan.bitline_pitch = Meters::from_nm(blp_nm);
        desc.floorplan.sa_stripe_width = Meters::from_um(stripe_um);

        // Organizations that do not divide evenly must be rejected, the
        // rest must produce consistent geometry.
        let page = desc.spec.page_bits();
        let rows = desc.spec.rows_per_bank();
        let divisible =
            page.is_multiple_of(u64::from(bplwl)) && rows.is_multiple_of(u64::from(bpb));
        let ctx = format!("bpb={bpb} bplwl={bplwl} col={col} row={row}");
        match Geometry::new(&desc) {
            Ok(g) => {
                assert!(divisible, "{ctx}");
                // Capacity conservation.
                let bits = g.banks.len() as u64
                    * u64::from(g.sub_rows)
                    * u64::from(g.sub_cols)
                    * u64::from(bpb)
                    * u64::from(bplwl);
                assert_eq!(bits, desc.spec.density_bits(), "{ctx}");
                // The die contains its banks.
                assert!(g.die_width.meters() > 0.0, "{ctx}");
                assert!(
                    g.die_area().square_meters()
                        > g.block_along_wl.meters() * g.block_along_bl.meters() * 8.0 * 0.99,
                    "{ctx}"
                );
                // Wire lengths are consistent with the grid.
                assert!(
                    (g.master_wordline_length().meters() - g.block_along_wl.meters()).abs()
                        < 1e-12,
                    "{ctx}"
                );
            }
            Err(_) => assert!(!divisible, "{ctx}"),
        }
    }
}

#[test]
fn standard_loops_stay_legal_under_random_timing() {
    let mut r = SplitMix64::new(0xC002);
    for _ in 0..64 {
        let trc_ns = r.range_f64(35.0, 80.0);
        let tras_frac = r.range_f64(0.55, 0.8);
        let trcd_ns = r.range_f64(10.0, 20.0);
        let trrd_ns = r.range_f64(4.0, 12.0);
        let clock_mhz = r.range_f64(200.0, 1000.0);

        let mut desc = ddr3_1g_x16_55nm();
        desc.timing.trc = Seconds::from_ns(trc_ns);
        desc.timing.tras = Seconds::from_ns(trc_ns * tras_frac);
        desc.timing.trp = Seconds::from_ns(trc_ns * (1.0 - tras_frac));
        desc.timing.trcd = Seconds::from_ns(trcd_ns.min(trc_ns * tras_frac * 0.8));
        desc.timing.trrd = Seconds::from_ns(trrd_ns);
        desc.spec.control_clock = dram_units::Hertz::from_mhz(clock_mhz);
        desc.spec.data_clock = desc.spec.control_clock;

        let timing = &desc.timing;
        let clock = desc.spec.control_clock;

        let idd0 = TimedPattern::idd0(timing, clock).expect("builds");
        assert!(idd0
            .validate(timing, clock, 8, timing.tccd_cycles, InitialBankState::AllClosed)
            .is_ok());

        let idd1 = TimedPattern::idd1(timing, clock).expect("builds");
        assert!(
            idd1.validate(timing, clock, 8, timing.tccd_cycles, InitialBankState::AllClosed)
                .is_ok(),
            "idd1 illegal at trc={trc_ns} clock={clock_mhz}"
        );

        let idd7 = TimedPattern::idd7(timing, clock, 8, timing.tccd_cycles).expect("builds");
        assert!(
            idd7.validate(timing, clock, 8, timing.tccd_cycles, InitialBankState::AllClosed)
                .is_ok(),
            "idd7 illegal at trc={trc_ns} trrd={trrd_ns} clock={clock_mhz}"
        );
    }
}

#[test]
fn idd_report_is_finite_and_ordered_under_random_timing() {
    let mut r = SplitMix64::new(0xC003);
    for _ in 0..64 {
        let trc_ns = r.range_f64(40.0, 70.0);
        let clock_mhz = r.range_f64(300.0, 900.0);
        let mut desc = ddr3_1g_x16_55nm();
        desc.timing.trc = Seconds::from_ns(trc_ns);
        desc.timing.tras = Seconds::from_ns(trc_ns * 0.7);
        desc.spec.control_clock = dram_units::Hertz::from_mhz(clock_mhz);
        desc.spec.data_clock = desc.spec.control_clock;
        let dram = Dram::new(desc).expect("valid");
        let idd = dram.idd();
        for i in [
            idd.idd0, idd.idd1, idd.idd2n, idd.idd2p, idd.idd4r, idd.idd4w, idd.idd5, idd.idd6,
            idd.idd7,
        ] {
            assert!(
                i.amperes().is_finite() && i.amperes() > 0.0,
                "trc={trc_ns} clock={clock_mhz}"
            );
        }
        assert!(idd.idd1 >= idd.idd0, "trc={trc_ns} clock={clock_mhz}");
        assert!(idd.idd0 > idd.idd2n, "trc={trc_ns} clock={clock_mhz}");
        assert!(idd.idd2n > idd.idd2p, "trc={trc_ns} clock={clock_mhz}");
        assert!(idd.idd6 > idd.idd2p, "trc={trc_ns} clock={clock_mhz}");
    }
}

#[test]
fn pattern_parser_never_panics() {
    let mut r = SplitMix64::new(0xC004);
    for _ in 0..256 {
        let n = r.range_usize(12);
        let tokens: Vec<String> = (0..n)
            .map(|_| {
                let len = 1 + r.range_usize(6);
                (0..len)
                    .map(|_| (b'a' + r.range_u32(26) as u8) as char)
                    .collect()
            })
            .collect();
        let text = tokens.join(" ");
        let _ = Pattern::parse(&text); // must not panic
    }
}

#[test]
fn pattern_roundtrip() {
    let mut r = SplitMix64::new(0xC005);
    let universe = [
        Command::Activate,
        Command::Precharge,
        Command::Read,
        Command::Write,
        Command::Nop,
    ];
    for _ in 0..64 {
        let n = 1 + r.range_usize(31);
        let cmds: Vec<Command> = (0..n).map(|_| *r.pick(&universe)).collect();
        let p = Pattern::new(cmds).expect("nonempty");
        let text = p.to_string();
        let back = Pattern::parse(&text).expect("own output parses");
        assert_eq!(back, p);
    }
}

#[test]
fn activate_energy_scales_linearly_with_bitline_cap() {
    let base = Dram::new(ddr3_1g_x16_55nm()).expect("valid");
    let base_item = base
        .operation_energy(dram_core::Operation::Activate)
        .items
        .iter()
        .find(|i| i.label == "bitline sensing")
        .expect("item")
        .external
        .joules();
    let mut r = SplitMix64::new(0xC006);
    for _ in 0..32 {
        let scale = r.range_f64(0.5, 2.0);
        let mut desc = ddr3_1g_x16_55nm();
        desc.technology.bitline_cap = desc.technology.bitline_cap * scale;
        let scaled = Dram::new(desc).expect("valid");
        let scaled_item = scaled
            .operation_energy(dram_core::Operation::Activate)
            .items
            .iter()
            .find(|i| i.label == "bitline sensing")
            .expect("item")
            .external
            .joules();
        assert!(
            (scaled_item / base_item - scale).abs() < 1e-9,
            "scale={scale}"
        );
    }
}
