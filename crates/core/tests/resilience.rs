//! Fault-armed resilience tests for the batch engine.
//!
//! Arming a fault plan is process-global, so these tests live in their
//! own integration-test binary (one process) and serialize on a local
//! mutex — they must not share a process with the fault-free identity
//! tests.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use dram_core::batch::{EvalEngine, ModelCache};
use dram_core::reference::ddr3_1g_x16_55nm;
use dram_core::ModelError;

fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    dram_faults::disarm();
    guard
}

#[test]
fn injected_build_panic_is_isolated_per_item() {
    let _x = exclusive();
    // Every build panics; evaluate_many must still return one result
    // per input, each carrying the panic as a per-item error.
    dram_faults::arm(&dram_faults::Plan::parse("seed=3;engine.build=panic").expect("spec"));
    let engine = EvalEngine::new().threads(2);
    let descs = vec![ddr3_1g_x16_55nm(); 4];
    let out = engine.evaluate_many(&descs);
    dram_faults::disarm();
    assert_eq!(out.len(), 4);
    for r in &out {
        match r {
            Err(ModelError::Panicked { message }) => {
                assert!(message.contains("engine.build"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }
    // Panics are transient: they must not be memoized, so the same
    // descriptions evaluate cleanly once the fault is gone.
    let healed = engine.evaluate_many(&descs);
    assert!(healed.iter().all(Result::is_ok));
    assert_eq!(engine.snapshot().error_entries, 0, "no panic memoized");
}

#[test]
fn injected_worker_panic_spares_the_other_items() {
    let _x = exclusive();
    // Exactly one worker visit panics; the other items complete.
    dram_faults::arm(
        &dram_faults::Plan::parse("seed=9;engine.worker=panic:times=1").expect("spec"),
    );
    let engine = EvalEngine::new().threads(3);
    let descs = vec![ddr3_1g_x16_55nm(); 8];
    let out = engine.evaluate_many(&descs);
    let injected = dram_faults::injected_total();
    dram_faults::disarm();
    let panicked = out
        .iter()
        .filter(|r| matches!(r, Err(ModelError::Panicked { .. })))
        .count();
    let ok = out.iter().filter(|r| r.is_ok()).count();
    assert_eq!(panicked, 1, "exactly the injected panic");
    assert_eq!(ok, 7, "every other item evaluated");
    assert_eq!(injected, 1);
}

#[test]
fn injected_build_panic_does_not_poison_the_cache() {
    let _x = exclusive();
    let cache = ModelCache::new();
    dram_faults::arm(
        &dram_faults::Plan::parse("seed=1;engine.build=panic:times=1").expect("spec"),
    );
    let desc = ddr3_1g_x16_55nm();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = cache.get_or_build(&desc);
    }));
    dram_faults::disarm();
    assert!(caught.is_err(), "the injected panic unwinds through the cache");
    // The cache stays fully usable afterwards.
    assert!(cache.get_or_build(&desc).is_ok());
    assert_eq!(cache.len(), 1);
}

#[test]
fn disarmed_runs_are_bit_identical_to_an_unfaulted_engine() {
    let _x = exclusive();
    let descs = vec![ddr3_1g_x16_55nm(); 3];
    let engine = EvalEngine::new().threads(2);
    let baseline: Vec<u64> = engine
        .evaluate_many(&descs)
        .into_iter()
        .map(|r| r.expect("builds").energy_per_bit_random().joules().to_bits())
        .collect();

    // Arm, run under a delay fault (values must be unaffected), disarm,
    // run again (must match the baseline bit for bit).
    dram_faults::arm(
        &dram_faults::Plan::parse("seed=5;engine.worker=delay:ms=1:times=2").expect("spec"),
    );
    let faulted = EvalEngine::new().threads(2);
    let under_delay: Vec<u64> = faulted
        .evaluate_many(&descs)
        .into_iter()
        .map(|r| r.expect("builds").energy_per_bit_random().joules().to_bits())
        .collect();
    dram_faults::disarm();
    assert_eq!(baseline, under_delay, "delay faults never change values");

    let clean = EvalEngine::new().threads(2);
    let after: Vec<u64> = clean
        .evaluate_many(&descs)
        .into_iter()
        .map(|r| r.expect("builds").energy_per_bit_random().joules().to_bits())
        .collect();
    assert_eq!(baseline, after);
}
