//! The engine's span instrumentation, observed end to end: one profiled
//! model build must produce the full named phase tree that `repro
//! --profile` promises in its Chrome trace.
//!
//! Own integration binary: these tests flip the process-global profiling
//! switch, which must not race the rest of the core test suite.

use dram_core::batch::EvalEngine;
use dram_core::reference::ddr3_1g_x16_55nm;

#[test]
fn profiled_build_records_every_model_phase() {
    let engine = EvalEngine::new().threads(1);
    dram_obs::set_enabled(true);
    let results = engine.evaluate_many(&[ddr3_1g_x16_55nm()]);
    dram_obs::set_enabled(false);
    assert!(results[0].is_ok());
    let profile = dram_obs::drain();

    let expected = [
        "engine.evaluate_many",
        "engine.map",
        "engine.cache_lookup",
        "model.build",
        "model.validate",
        "model.geometry",
        "model.devices",
        "model.charges",
        "model.power",
    ];
    for name in expected {
        assert!(
            profile.spans.iter().any(|s| s.name == name),
            "missing span `{name}` in {:?}",
            profile.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }

    // The phase spans parent onto model.build, and model.build is a
    // child of nothing *outside* the engine spans on this thread.
    let build = profile
        .spans
        .iter()
        .find(|s| s.name == "model.build")
        .unwrap();
    for phase in ["model.validate", "model.geometry", "model.devices", "model.charges", "model.power"] {
        let s = profile.spans.iter().find(|s| s.name == phase).unwrap();
        assert_eq!(s.parent, build.id, "{phase} must nest under model.build");
        assert!(s.start_us >= build.start_us);
        assert!(s.start_us + s.dur_us <= build.start_us + build.dur_us + 1);
    }

    // A second evaluation of the same description is a pure cache hit:
    // lookup span, no build span.
    dram_obs::set_enabled(true);
    let again = engine.evaluate_many(&[ddr3_1g_x16_55nm()]);
    dram_obs::set_enabled(false);
    assert!(again[0].is_ok());
    let profile = dram_obs::drain();
    assert!(profile.spans.iter().any(|s| s.name == "engine.cache_lookup"));
    assert!(
        !profile.spans.iter().any(|s| s.name == "model.build"),
        "cache hit must not rebuild"
    );

    // The build counter registered itself process-wide.
    let builds = dram_obs::Registry::global()
        .counter("dram_model_builds_total", "")
        .get();
    assert!(builds >= 1);
}
